//! Failover walkthrough: one [`Scenario`] with a mid-run worker failure is
//! replayed through **both** implementations — the discrete-event simulator
//! and the thread-based cluster testbed — from the same value, then the
//! adaptive DiffServe policy is compared against the peak-provisioned
//! static baseline under the identical churn. A final section drives the
//! degradation-aware fault engine: a seeded load-correlated hazard fires
//! faults into the run's incident log, and replaying that log reproduces
//! the run bit-exactly.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use diffserve::prelude::*;
use diffserve_simkit::time::{SimDuration, SimTime};

fn main() {
    println!("preparing cascade 1 (SD-Turbo -> SDv1.5)...");
    let runtime = CascadeRuntime::prepare(
        cascade1(FeatureSpec::default()),
        1500,
        2024,
        DiscriminatorConfig {
            train_prompts: 500,
            epochs: 10,
            ..Default::default()
        },
    );
    let system = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };

    // 6 QPS for 150 s; two of eight workers fail-stop at t=50s and rejoin
    // at t=125s after reloading their model.
    let base = Trace::constant(6.0, SimDuration::from_secs(150)).expect("valid trace");
    let scenario = Scenario::new("worker-failure", base)
        .worker_fail(SimTime::from_secs(50), 2)
        .worker_recover(SimTime::from_secs(125), 2);
    scenario
        .validate(system.num_workers)
        .expect("scenario fits the pool");

    println!(
        "scenario '{}': {} perturbations, ~{:.0} queries offered\n",
        scenario.name(),
        scenario.perturbations().len(),
        scenario.effective_trace().expected_queries()
    );

    // --- Same scenario, both implementations (DiffServe policy) -----------
    let settings = RunSettings::new(Policy::DiffServe, 6.0);
    let sim = run_scenario(&runtime, &system, &settings, &scenario);
    println!("simulator      : {}", sim.summary());

    let testbed = run_cluster_scenario(
        &runtime,
        &ClusterConfig {
            system: system.clone(),
            time_scale: 0.02,
        },
        &settings,
        &scenario,
    );
    println!("cluster testbed: {}", testbed.summary());

    // --- Adaptive vs static under the identical churn ----------------------
    let static_report = run_scenario(
        &runtime,
        &system,
        &RunSettings::new(Policy::DiffServeStatic, 6.0),
        &scenario,
    );
    println!("static baseline: {}", static_report.summary());

    let onset = scenario.perturbation_onsets()[0];
    let fmt_recovery = |r: &RunReport| match r.recovery_time_after(onset, 0.10) {
        Some(s) => format!("{s:.0}s"),
        None => "never".into(),
    };
    println!(
        "\nafter the failure at t={onset:.0}s: DiffServe back under 10% violations in {}, \
         static baseline in {}",
        fmt_recovery(&sim),
        fmt_recovery(&static_report),
    );
    println!(
        "violation ratio: DiffServe {:.3} vs static {:.3} — re-solving against the \
         degraded pool sheds deferrals instead of deadlines",
        sim.violation_ratio, static_report.violation_ratio
    );

    // --- Load-correlated hazards + incident record/replay ------------------
    let hazardous = Scenario::new(
        "hazardous",
        Trace::constant(7.0, SimDuration::from_secs(100)).expect("valid trace"),
    )
    .with_hazard(Hazard {
        seed: 7,
        fail_rate: 0.01,
        degrade_rate: 0.05,
        load_coupling: 6.0,
        ..Hazard::default()
    });
    let original = run_scenario(&runtime, &system, &settings, &hazardous);
    println!(
        "\nhazard run     : {} ({} incidents drawn from load-correlated hazards)",
        original.summary(),
        original.incident_log.len()
    );
    for incident in &original.incident_log {
        println!(
            "  t={:>6.1}s {:?}",
            incident.at.as_secs_f64(),
            incident.event
        );
    }
    let replay = run_scenario(
        &runtime,
        &system,
        &settings,
        &hazardous.replay(&original.incident_log),
    );
    assert_eq!(original.total_queries, replay.total_queries);
    assert_eq!(
        original.fid.to_bits(),
        replay.fid.to_bits(),
        "incident replay must be bit-exact on the simulator"
    );
    println!(
        "incident replay: {} — bit-identical to the recorded run",
        replay.summary()
    );
}
