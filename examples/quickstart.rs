//! Quickstart: prepare Cascade 1, serve a short Poisson workload with the
//! full DiffServe policy through a `ServingSession`, and print the paper's
//! two headline metrics. (See `streaming_session.rs` for the incremental
//! submit/poll/observe side of the session API.)
//!
//! Run with: `cargo run --release --example quickstart`

use diffserve::prelude::*;

fn main() {
    println!("Preparing Cascade 1 (SD-Turbo -> SDv1.5): dataset + discriminator...");
    let runtime = CascadeRuntime::prepare(
        cascade1(FeatureSpec::default()),
        2000,
        42,
        DiscriminatorConfig::default(),
    );
    println!(
        "  discriminator: {} ({} params-class), train accuracy {:.3}",
        runtime.discriminator.config().arch.name(),
        runtime.discriminator.latency(),
        runtime.discriminator.train_accuracy()
    );

    let trace = Trace::constant(10.0, SimDuration::from_secs(120)).expect("valid trace");
    println!(
        "Serving {:.0} QPS for {:.0}s on {} workers (SLO {})...",
        trace.mean_qps(),
        trace.duration().as_secs_f64(),
        SystemConfig::default().num_workers,
        SystemConfig::default().slo,
    );

    let mut session = ServingSession::builder()
        .runtime(&runtime)
        .config(SystemConfig::default())
        .policy(Policy::DiffServe)
        .peak_demand(trace.max_qps())
        .backend(Backend::Sim)
        .build()
        .expect("configuration validated at build time");
    session.replay_trace(&trace);
    session.run_until(SimTime::ZERO + trace.duration() + SystemConfig::default().slo * 4);
    let report = session.finish();

    println!("\n{}", report.summary());
    println!(
        "  responses: {} light / {} heavy ({}% deferred)",
        ((1.0 - report.heavy_fraction) * report.completed as f64) as u64,
        (report.heavy_fraction * report.completed as f64) as u64,
        (report.heavy_fraction * 100.0) as u64,
    );
    println!("  FID (quality, lower = better): {:.2}", report.fid);
    println!(
        "  SLO violation ratio:           {:.3}",
        report.violation_ratio
    );
    println!(
        "  mean latency:                  {:.2}s",
        report.mean_latency
    );
}
