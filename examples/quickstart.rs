//! Quickstart: prepare Cascade 1, serve a short Poisson workload with the
//! full DiffServe policy, and print the paper's two headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use diffserve::prelude::*;

fn main() {
    println!("Preparing Cascade 1 (SD-Turbo -> SDv1.5): dataset + discriminator...");
    let runtime = CascadeRuntime::prepare(
        cascade1(FeatureSpec::default()),
        2000,
        42,
        DiscriminatorConfig::default(),
    );
    println!(
        "  discriminator: {} ({} params-class), train accuracy {:.3}",
        runtime.discriminator.config().arch.name(),
        runtime.discriminator.latency(),
        runtime.discriminator.train_accuracy()
    );

    let trace = Trace::constant(10.0, SimDuration::from_secs(120)).expect("valid trace");
    println!(
        "Serving {:.0} QPS for {:.0}s on {} workers (SLO {})...",
        trace.mean_qps(),
        trace.duration().as_secs_f64(),
        SystemConfig::default().num_workers,
        SystemConfig::default().slo,
    );

    let report = run_trace(
        &runtime,
        &SystemConfig::default(),
        &RunSettings::new(Policy::DiffServe, trace.max_qps()),
        &trace,
    );

    println!("\n{}", report.summary());
    println!(
        "  responses: {} light / {} heavy ({}% deferred)",
        ((1.0 - report.heavy_fraction) * report.completed as f64) as u64,
        (report.heavy_fraction * report.completed as f64) as u64,
        (report.heavy_fraction * 100.0) as u64,
    );
    println!("  FID (quality, lower = better): {:.2}", report.fid);
    println!(
        "  SLO violation ratio:           {:.3}",
        report.violation_ratio
    );
    println!(
        "  mean latency:                  {:.2}s",
        report.mean_latency
    );
}
