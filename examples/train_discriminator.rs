//! Trains the cascade discriminator from scratch and inspects what the
//! serving system will rely on: real-vs-fake accuracy, quality-ranking
//! power over lightweight outputs, and the deferral profile f(t) the MILP
//! consumes.
//!
//! Run with: `cargo run --release --example train_discriminator`

use diffserve::imagegen::{
    cascade1, DatasetKind, DiscArch, Discriminator, DiscriminatorConfig, FeatureSpec,
    PromptDataset, RealClass,
};
use diffserve::nn::auc;

fn main() {
    let spec = FeatureSpec::default();
    let cascade = cascade1(spec);
    let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 4000, 3, spec);

    for arch in [
        DiscArch::EfficientNetV2,
        DiscArch::ResNet34,
        DiscArch::ViTB16,
    ] {
        let config = DiscriminatorConfig {
            arch,
            real_class: RealClass::GroundTruth,
            train_prompts: 1000,
            epochs: 20,
            seed: 0xD15C,
        };
        let disc = Discriminator::train(&dataset, &cascade.light, &cascade.heavy, config);

        // Quality-ranking AUC over held-out lightweight outputs.
        let eval = &dataset.prompts()[1000..2000];
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        let mut qualities: Vec<f64> = Vec::new();
        for p in eval {
            let img = cascade.light.generate(p);
            scores.push(disc.confidence(&img.features));
            qualities.push(img.quality);
        }
        let mut sorted_q = qualities.clone();
        sorted_q.sort_by(|a, b| a.partial_cmp(b).expect("finite quality"));
        let median = sorted_q[sorted_q.len() / 2];
        for &q in &qualities {
            labels.push(q >= median);
        }
        let rank_auc = auc(&scores, &labels);

        println!(
            "{:<16} latency={:<6} train_acc={:.3} quality-ranking AUC={:.3}",
            arch.name(),
            format!("{}", disc.latency()),
            disc.train_accuracy(),
            rank_auc
        );

        if arch == DiscArch::EfficientNetV2 {
            println!("\n  deferral profile f(t) for the production EfficientNet:");
            for i in 0..=10 {
                let t = i as f64 / 10.0;
                let f = scores.iter().filter(|&&c| c < t).count() as f64 / scores.len() as f64;
                let bar = "#".repeat((f * 40.0) as usize);
                println!("    f({t:.1}) = {f:.2} {bar}");
            }
            println!();
        }
    }
    println!("\nThe EfficientNet configuration (paper's choice) should show the best");
    println!("ranking AUC — that ranking is exactly what makes the cascade query-aware.");
}
