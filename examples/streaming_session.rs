//! Streaming session: drive the serving system incrementally through the
//! unified `ServingSession` API — submit queries as they "arrive", watch
//! live metrics from an observer tap, inject a worker failure mid-run, and
//! poll outcomes as they stream out.
//!
//! Run with: `cargo run --release --example streaming_session`

use std::cell::RefCell;
use std::rc::Rc;

use diffserve::prelude::*;

fn main() {
    println!("Preparing Cascade 1 (SD-Turbo -> SDv1.5)...");
    let runtime = CascadeRuntime::prepare(
        cascade1(FeatureSpec::default()),
        2000,
        42,
        DiscriminatorConfig::default(),
    );

    let config = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    let mut session = ServingSession::builder()
        .runtime(&runtime)
        .config(config)
        .policy(Policy::DiffServe)
        .backend(Backend::Sim)
        .build()
        .expect("configuration validated at build time");

    // Live metric tap: fires after every control interval of run_until.
    let taps = Rc::new(RefCell::new(0u32));
    let tap_count = taps.clone();
    session.observer(move |snap| {
        *tap_count.borrow_mut() += 1;
        if tap_count.borrow().is_multiple_of(10) {
            println!(
                "  t={:>6} thr={:.2} light {} (q={}, {:.0}% busy) heavy {} (q={}) \
                 done={} dropped={} fid~{:.1}",
                format!("{}", snap.now),
                snap.threshold,
                snap.light_workers,
                snap.light_queue,
                snap.utilization(ModelTier::Light) * 100.0,
                snap.heavy_workers,
                snap.heavy_queue,
                snap.completed,
                snap.dropped,
                snap.fid_estimate,
            );
        }
    });

    // Phase 1: a steady stream of queries, submitted incrementally with
    // explicit per-query deadlines (what a real frontend would do).
    println!("Phase 1: streaming 6 QPS for 60s...");
    let mut escalated = 0u64;
    let mut completed = 0u64;
    for second in 0..60u64 {
        for k in 0..6 {
            let qid = second * 6 + k;
            let arrival = SimTime::from_secs(second) + SimDuration::from_millis(k * 160);
            let deadline = arrival + SimDuration::from_secs(5);
            session.submit_spec(
                QuerySpec::new()
                    .at(arrival)
                    .prompt(*runtime.dataset.prompt_cyclic(qid))
                    .deadline(deadline),
            );
        }
        session.run_until(SimTime::from_secs(second + 1));
        for outcome in session.poll() {
            if let QueryOutcome::Completed(r) = outcome {
                completed += 1;
                if r.tier == ModelTier::Heavy {
                    escalated += 1;
                }
            }
        }
    }
    println!("  after 60s: {completed} completed, {escalated} escalated to the heavy model");

    // Phase 2: fail 3 of 8 workers mid-run and keep serving.
    println!("Phase 2: injecting a 3-worker failure at t=60s...");
    session
        .inject(ScenarioEvent::Capacity(CapacityEvent::Fail(3)))
        .expect("pool survives losing 3 of 8");
    for second in 60..90u64 {
        for k in 0..6 {
            let at = SimTime::from_secs(second) + SimDuration::from_millis(k * 160);
            session.submit_spec(QuerySpec::new().at(at));
        }
        session.run_until(SimTime::from_secs(second + 1));
    }
    let snap = session.snapshot();
    println!(
        "  under churn: {} alive workers ({} failed), queues {}/{}",
        snap.light_workers + snap.heavy_workers,
        snap.failed_workers,
        snap.light_queue,
        snap.heavy_queue,
    );

    // Phase 3: recover, drain, and close the session.
    session
        .inject(ScenarioEvent::Capacity(CapacityEvent::Recover(3)))
        .expect("recover the failed workers");
    session.run_until(SimTime::from_secs(120));
    let report = session.finish();

    println!("\n{}", report.summary());
    println!(
        "  observer fired {} times; every submitted query accounted: {} + {} = {}",
        taps.borrow(),
        report.completed,
        report.dropped,
        report.total_queries,
    );
    assert_eq!(report.completed + report.dropped, report.total_queries);
}
