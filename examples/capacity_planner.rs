//! Capacity planning: sweep cluster size × SLO and print the provisioning
//! table an operator would use to size a DiffServe deployment for a target
//! demand — which cluster sizes hold violations under 5% and what quality
//! each buys.
//!
//! Run with: `cargo run --release --example capacity_planner`

use diffserve::prelude::*;

fn main() {
    let runtime = CascadeRuntime::prepare(
        cascade1(FeatureSpec::default()),
        2000,
        11,
        DiscriminatorConfig::default(),
    );
    let demand_qps = 14.0;
    let trace = Trace::constant(demand_qps, SimDuration::from_secs(90)).expect("valid trace");
    println!("Capacity plan for a steady {demand_qps} QPS workload (Cascade 1)\n");
    println!(
        "{:<9} {:<7} {:>8} {:>10} {:>9} {:>8}",
        "workers", "slo_s", "FID", "SLO-viol", "heavy%", "verdict"
    );

    for workers in [4usize, 8, 12, 16, 24] {
        for slo_s in [3u64, 5, 8] {
            let config = SystemConfig {
                num_workers: workers,
                slo: SimDuration::from_secs(slo_s),
                ..Default::default()
            };
            let report = run_trace(
                &runtime,
                &config,
                &RunSettings::new(Policy::DiffServe, demand_qps),
                &trace,
            );
            let verdict = if report.violation_ratio < 0.05 {
                "OK"
            } else {
                "undersized"
            };
            println!(
                "{:<9} {:<7} {:>8.2} {:>10.3} {:>8.1}% {:>10}",
                workers,
                slo_s,
                report.fid,
                report.violation_ratio,
                report.heavy_fraction * 100.0,
                verdict
            );
        }
    }
    println!("\nReading: more workers buy lower FID (more heavy capacity raises the");
    println!("threshold); tighter SLOs force smaller batches and lower thresholds.");
}
