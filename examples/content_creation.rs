//! The paper's motivating scenario: an interactive content-creation
//! platform (think Firefly/Midjourney) facing a daily demand swell. Compares
//! DiffServe against static single-model provisioning on the same diurnal
//! trace and prints the daily operations summary an SRE would read.
//!
//! Run with: `cargo run --release --example content_creation`

use diffserve::prelude::*;

fn main() {
    println!("Content-creation platform: diurnal demand 4 -> 32 QPS over 350s (scaled day)");
    let runtime = CascadeRuntime::prepare(
        cascade1(FeatureSpec::default()),
        3000,
        7,
        DiscriminatorConfig::default(),
    );
    let trace = synthesize_azure_trace(&AzureTraceConfig::default()).expect("valid config");
    let config = SystemConfig::default();

    let mut rows = Vec::new();
    for policy in [
        Policy::ClipperLight,
        Policy::ClipperHeavy,
        Policy::DiffServe,
    ] {
        let report = run_trace(
            &runtime,
            &config,
            &RunSettings::new(policy, trace.max_qps()),
            &trace,
        );
        rows.push(report);
    }

    println!(
        "\n{:<16} {:>8} {:>10} {:>10} {:>9}",
        "policy", "FID", "SLO-viol", "dropped", "heavy%"
    );
    for r in &rows {
        println!(
            "{:<16} {:>8.2} {:>10.3} {:>10} {:>8.1}%",
            r.policy.name(),
            r.fid,
            r.violation_ratio,
            r.dropped,
            r.heavy_fraction * 100.0
        );
    }

    let light = &rows[0];
    let heavy = &rows[1];
    let ds = &rows[2];
    println!(
        "\nDiffServe vs always-light: {:.1}% better quality at {:+.1}pp violations",
        100.0 * (light.fid - ds.fid) / light.fid,
        100.0 * (ds.violation_ratio - light.violation_ratio),
    );
    println!(
        "DiffServe vs always-heavy: {:.1}% better quality and {:.0}x fewer violations",
        100.0 * (heavy.fid - ds.fid) / heavy.fid,
        heavy.violation_ratio / ds.violation_ratio.max(1e-6),
    );
    println!("\nThreshold trajectory (controller raising quality off-peak):");
    for (t, thr) in ds.threshold_series.iter().step_by(2) {
        let bar = "#".repeat((thr * 40.0) as usize);
        println!("  t={t:>5.0}s  threshold={thr:.2} {bar}");
    }
}
