//! Runs the thread-based testbed runtime (real threads + channels + wall
//! clock at 1/50 time scale) on a short diurnal trace and compares it with
//! the discrete-event simulator on the same workload — the paper's §4.3
//! validation in miniature.
//!
//! Run with: `cargo run --release --example live_cluster`

use diffserve::prelude::*;
use diffserve_simkit::time::SimDuration;

fn main() {
    let runtime = CascadeRuntime::prepare(
        cascade1(FeatureSpec::default()),
        2000,
        5,
        DiscriminatorConfig::default(),
    );
    let trace = synthesize_azure_trace(&AzureTraceConfig {
        min_qps: 4.0,
        max_qps: 18.0,
        duration: SimDuration::from_secs(120),
        ..Default::default()
    })
    .expect("valid trace");

    let system = SystemConfig::default();
    let settings = RunSettings::new(Policy::DiffServe, trace.max_qps());

    println!(
        "Replaying a {:.0}s trace ({:.0}->{:.0} QPS) on the thread-based cluster",
        trace.duration().as_secs_f64(),
        trace.min_qps(),
        trace.max_qps()
    );
    let scale = 0.05;
    println!(
        "time scale {scale}: this takes ~{:.0}s of wall clock...\n",
        trace.duration().as_secs_f64() * scale + 4.0 * system.slo.as_secs_f64() * scale
    );

    let cluster_cfg = ClusterConfig {
        system: system.clone(),
        time_scale: scale,
    };
    let testbed = run_cluster(&runtime, &cluster_cfg, &settings, &trace);
    println!("testbed:   {}", testbed.summary());

    let sim = run_trace(&runtime, &system, &settings, &trace);
    println!("simulator: {}", sim.summary());

    println!(
        "\nsim-vs-testbed gap: FID {:.2}% | SLO violations {:.3} absolute",
        100.0 * (testbed.fid - sim.fid).abs() / sim.fid,
        (testbed.violation_ratio - sim.violation_ratio).abs()
    );
    println!("(paper reports 0.56% FID and 1.1% SLO-violation average gap, §4.3)");
}
