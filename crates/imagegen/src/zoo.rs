//! The model zoo: the diffusion-model variants evaluated in the paper, with
//! latency numbers taken from §4.1 and quality profiles calibrated so that
//! FID orderings and easy-query fractions reproduce Figs. 1a/1b.

use diffserve_simkit::time::SimDuration;

use crate::features::FeatureSpec;
use crate::model::{DiffusionModel, LatencyProfile, QualityProfile};
use crate::prompt::DatasetKind;

/// Builds SD-Turbo: 1-step distilled model, ~0.10 s per image on A100.
pub fn sd_turbo(spec: FeatureSpec) -> DiffusionModel {
    DiffusionModel::new(
        "sd-turbo",
        1,
        LatencyProfile::new(0.10, 0.55),
        QualityProfile {
            base_error: 0.18,
            difficulty_slope: 0.35,
            noise_std: 0.22,
            diversity_sigma: 1.25,
        },
        spec,
    )
}

/// Builds SDv1.5 with 50 denoising steps, ~1.78 s per image on A100.
pub fn sd_v15(spec: FeatureSpec) -> DiffusionModel {
    DiffusionModel::new(
        "sd-v1.5",
        50,
        LatencyProfile::new(1.78, 0.12),
        QualityProfile {
            base_error: 0.08,
            difficulty_slope: 0.12,
            noise_std: 0.12,
            diversity_sigma: 0.75,
        },
        spec,
    )
}

/// Builds SDv1.5 with the DPM-Solver++ scheduler (fewer steps, faster).
pub fn sd_v15_dpms(spec: FeatureSpec) -> DiffusionModel {
    DiffusionModel::new(
        "sd-v1.5-dpms++",
        20,
        LatencyProfile::new(0.85, 0.15),
        QualityProfile {
            base_error: 0.15,
            difficulty_slope: 0.24,
            noise_std: 0.14,
            diversity_sigma: 0.9,
        },
        spec,
    )
}

/// Builds SDXS-512-0.9: the fastest variant, ~0.05 s per image.
pub fn sdxs(spec: FeatureSpec) -> DiffusionModel {
    DiffusionModel::new(
        "sdxs",
        1,
        LatencyProfile::new(0.05, 0.60),
        QualityProfile {
            base_error: 0.25,
            difficulty_slope: 0.42,
            noise_std: 0.28,
            diversity_sigma: 1.35,
        },
        spec,
    )
}

/// Builds SDXL-Turbo, a distilled SDXL variant.
pub fn sdxl_turbo(spec: FeatureSpec) -> DiffusionModel {
    DiffusionModel::new(
        "sdxl-turbo",
        1,
        LatencyProfile::new(0.25, 0.45),
        QualityProfile {
            base_error: 0.15,
            difficulty_slope: 0.3,
            noise_std: 0.18,
            diversity_sigma: 1.2,
        },
        spec,
    )
}

/// Builds TinySD with the DPM-Solver++ scheduler.
pub fn tiny_sd_dpms(spec: FeatureSpec) -> DiffusionModel {
    DiffusionModel::new(
        "tiny-sd-dpms++",
        20,
        LatencyProfile::new(0.55, 0.25),
        QualityProfile {
            base_error: 0.22,
            difficulty_slope: 0.38,
            noise_std: 0.2,
            diversity_sigma: 1.3,
        },
        spec,
    )
}

/// Builds SDXL-Lightning with 2 steps, ~0.5 s per 1024×1024 image.
pub fn sdxl_lightning(spec: FeatureSpec) -> DiffusionModel {
    DiffusionModel::new(
        "sdxl-lightning",
        2,
        LatencyProfile::new(0.50, 0.40),
        QualityProfile {
            base_error: 0.19,
            difficulty_slope: 0.34,
            noise_std: 0.21,
            diversity_sigma: 1.28,
        },
        spec,
    )
}

/// Builds SDXL with 50 steps, ~6 s per 1024×1024 image.
pub fn sdxl(spec: FeatureSpec) -> DiffusionModel {
    DiffusionModel::new(
        "sdxl",
        50,
        LatencyProfile::new(6.0, 0.08),
        QualityProfile {
            base_error: 0.07,
            difficulty_slope: 0.1,
            noise_std: 0.11,
            diversity_sigma: 0.75,
        },
        spec,
    )
}

/// All independent variants plotted in Fig. 1a.
pub fn fig1a_variants(spec: FeatureSpec) -> Vec<DiffusionModel> {
    vec![
        sdxs(spec),
        sd_turbo(spec),
        sdxl_turbo(spec),
        tiny_sd_dpms(spec),
        sd_v15_dpms(spec),
        sd_v15(spec),
    ]
}

/// A light/heavy cascade pairing with its dataset and SLO (paper §4.1).
#[derive(Debug, Clone)]
pub struct CascadeSpec {
    /// Artifact-style short name (`sdturbo`, `sdxs`, `sdxlltn`).
    pub name: &'static str,
    /// The lightweight model.
    pub light: DiffusionModel,
    /// The heavyweight model.
    pub heavy: DiffusionModel,
    /// Prompt dataset family used for this cascade's evaluation.
    pub dataset: DatasetKind,
    /// Latency SLO for this cascade.
    pub slo: SimDuration,
}

/// Cascade 1: SD-Turbo → SDv1.5 on MS-COCO, SLO 5 s.
pub fn cascade1(spec: FeatureSpec) -> CascadeSpec {
    CascadeSpec {
        name: "sdturbo",
        light: sd_turbo(spec),
        heavy: sd_v15(spec),
        dataset: DatasetKind::MsCoco,
        slo: SimDuration::from_secs(5),
    }
}

/// Cascade 2: SDXS → SDv1.5 on MS-COCO, SLO 5 s.
pub fn cascade2(spec: FeatureSpec) -> CascadeSpec {
    CascadeSpec {
        name: "sdxs",
        light: sdxs(spec),
        heavy: sd_v15(spec),
        dataset: DatasetKind::MsCoco,
        slo: SimDuration::from_secs(5),
    }
}

/// Cascade 3: SDXL-Lightning → SDXL on DiffusionDB, SLO 15 s.
pub fn cascade3(spec: FeatureSpec) -> CascadeSpec {
    CascadeSpec {
        name: "sdxlltn",
        light: sdxl_lightning(spec),
        heavy: sdxl(spec),
        dataset: DatasetKind::DiffusionDb,
        slo: SimDuration::from_secs(15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_batch1_latencies() {
        let spec = FeatureSpec::default();
        let close = |m: &DiffusionModel, s: f64| {
            (m.latency().exec_latency(1).as_secs_f64() - s).abs() < 1e-9
        };
        assert!(close(&sd_turbo(spec), 0.10));
        assert!(close(&sd_v15(spec), 1.78));
        assert!(close(&sdxs(spec), 0.05));
        assert!(close(&sdxl_lightning(spec), 0.50));
        assert!(close(&sdxl(spec), 6.0));
    }

    #[test]
    fn heavy_models_beat_light_models_on_hard_prompts() {
        let spec = FeatureSpec::default();
        for (light, heavy) in [
            (sd_turbo(spec), sd_v15(spec)),
            (sdxs(spec), sd_v15(spec)),
            (sdxl_lightning(spec), sdxl(spec)),
        ] {
            let hard = 0.8;
            assert!(
                heavy.quality_profile().expected_quality(hard)
                    > light.quality_profile().expected_quality(hard) + 0.1,
                "{} should dominate {} on hard prompts",
                heavy.name(),
                light.name()
            );
        }
    }

    #[test]
    fn cascades_match_paper_slos() {
        let spec = FeatureSpec::default();
        assert_eq!(cascade1(spec).slo, SimDuration::from_secs(5));
        assert_eq!(cascade2(spec).slo, SimDuration::from_secs(5));
        assert_eq!(cascade3(spec).slo, SimDuration::from_secs(15));
        assert_eq!(cascade3(spec).dataset, DatasetKind::DiffusionDb);
    }

    #[test]
    fn fig1a_zoo_quality_ordering() {
        // Expected FID ordering along the latency axis: heavier models have
        // lower expected error on a mean-difficulty prompt.
        let spec = FeatureSpec::default();
        let variants = fig1a_variants(spec);
        let err = |m: &DiffusionModel| 1.0 - m.quality_profile().expected_quality(0.33);
        // SDXS is the worst, SDv1.5 the best of the 512px family.
        let sdxs_err = err(&variants[0]);
        let sdv15_err = err(&variants[5]);
        for v in &variants {
            let e = err(v);
            assert!(e <= sdxs_err + 1e-9, "{} worse than SDXS", v.name());
            assert!(e >= sdv15_err - 1e-9, "{} better than SDv1.5", v.name());
        }
    }

    #[test]
    fn cascade_throughput_gap_is_large() {
        // The whole point of the cascade: the light model serves far more
        // QPS per worker.
        let spec = FeatureSpec::default();
        let c = cascade1(spec);
        assert!(c.light.latency().throughput(8) > 10.0 * c.heavy.latency().throughput(8));
    }
}
