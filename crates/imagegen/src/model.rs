//! Synthetic diffusion models: latency profiles and quality models.

use diffserve_simkit::rng::{derive_seed, seeded_rng, Normal, Sampler};
use diffserve_simkit::time::SimDuration;

use crate::features::{FeatureSpec, ARTIFACT_AXIS, DIM, DIVERSITY_AXES, SHARED_AXES};
use crate::prompt::Prompt;

/// Execution-latency profile of a model, `e(b) = e1·(ovh + (1 − ovh)·b)`.
///
/// Big diffusion models are compute-bound, so batching buys little
/// (`batch_overhead` small); tiny ones are launch-overhead-bound and batch
/// well (`batch_overhead` large). The paper profiles `e(b)` offline per
/// batch size (§3.3); this affine model plays that role.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Batch-1 execution latency in seconds.
    pub base_latency: f64,
    /// Fraction of `e(1)` that is fixed overhead amortized across a batch.
    pub batch_overhead: f64,
}

impl LatencyProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics unless `base_latency > 0` and `batch_overhead ∈ [0, 1)`.
    pub fn new(base_latency: f64, batch_overhead: f64) -> Self {
        assert!(
            base_latency > 0.0 && base_latency.is_finite(),
            "base latency must be positive"
        );
        assert!(
            (0.0..1.0).contains(&batch_overhead),
            "batch overhead must lie in [0, 1)"
        );
        LatencyProfile {
            base_latency,
            batch_overhead,
        }
    }

    /// Execution latency for a batch of `b` queries.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn exec_latency(&self, b: usize) -> SimDuration {
        assert!(b > 0, "batch size must be positive");
        let secs =
            self.base_latency * (self.batch_overhead + (1.0 - self.batch_overhead) * b as f64);
        SimDuration::from_secs_f64(secs)
    }

    /// Steady-state throughput (queries per second) at batch size `b`.
    pub fn throughput(&self, b: usize) -> f64 {
        b as f64 / self.exec_latency(b).as_secs_f64()
    }
}

/// Quality model: how well this model renders a prompt of given difficulty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityProfile {
    /// Error floor even on trivial prompts.
    pub base_error: f64,
    /// Additional error per unit difficulty.
    pub difficulty_slope: f64,
    /// Per-query quality noise std.
    pub noise_std: f64,
    /// Output dispersion on the diversity axes (real images have 1.0;
    /// >1 = noisy/over-diverse, <1 = polished/under-diverse).
    pub diversity_sigma: f64,
}

impl QualityProfile {
    /// Expected quality (no noise) for a prompt of the given difficulty.
    pub fn expected_quality(&self, difficulty: f64) -> f64 {
        (1.0 - self.base_error - self.difficulty_slope * difficulty).clamp(0.0, 1.0)
    }
}

/// A synthetic text-to-image diffusion model.
///
/// Generation is **deterministic per (model, prompt)**: the same prompt
/// always yields the same image, so escalating a query to the heavyweight
/// model reproduces exactly what the real system would have computed.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffusionModel {
    name: String,
    steps: u32,
    latency: LatencyProfile,
    quality: QualityProfile,
    spec: FeatureSpec,
    seed_tag: u64,
}

/// One generated image: its feature vector and latent quality.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedImage {
    /// Feature-space representation (consumed by the discriminator and FID).
    pub features: Vec<f64>,
    /// Latent ground-truth quality in `[0, 1]` (not observable by the
    /// serving system; used by oracles and calibration tests).
    pub quality: f64,
}

impl DiffusionModel {
    /// Creates a model.
    pub fn new(
        name: impl Into<String>,
        steps: u32,
        latency: LatencyProfile,
        quality: QualityProfile,
        spec: FeatureSpec,
    ) -> Self {
        let name = name.into();
        // Stable per-model stream tag derived from the name bytes.
        let seed_tag = name
            .bytes()
            .fold(0xCAFE_F00Du64, |acc, b| {
                acc.wrapping_mul(131).wrapping_add(b as u64)
            })
            .wrapping_add(steps as u64);
        DiffusionModel {
            name,
            steps,
            latency,
            quality,
            spec,
            seed_tag,
        }
    }

    /// Model name (e.g. `"sd-turbo"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of denoising steps this variant runs.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// The latency profile.
    pub fn latency(&self) -> &LatencyProfile {
        &self.latency
    }

    /// The quality profile.
    pub fn quality_profile(&self) -> &QualityProfile {
        &self.quality
    }

    /// The feature-space geometry.
    pub fn spec(&self) -> &FeatureSpec {
        &self.spec
    }

    /// Generates the image for `prompt`.
    ///
    /// Deterministic: repeated calls return identical results.
    pub fn generate(&self, prompt: &Prompt) -> GeneratedImage {
        self.generate_with_quality_shift(prompt, 0.0)
    }

    /// Generates with an additive quality adjustment, used by the reuse
    /// experiment (§5) where heavy generation warm-started from light
    /// latents can lose quality on incompatible pairs.
    pub fn generate_with_quality_shift(&self, prompt: &Prompt, shift: f64) -> GeneratedImage {
        let mut rng = seeded_rng(derive_seed(prompt.seed, self.seed_tag));
        let normal = Normal::standard();
        let q_noise = normal.draw(&mut rng) * self.quality.noise_std;
        let quality =
            (self.quality.expected_quality(prompt.difficulty) + q_noise + shift).clamp(0.0, 1.0);

        let mut features = vec![0.0; DIM];
        let scale = self.spec.feature_scale;
        features[ARTIFACT_AXIS] = scale
            * (self.spec.artifact_gain * (1.0 - quality)
                + normal.draw(&mut rng) * self.spec.artifact_noise);
        for f in &mut features[DIVERSITY_AXES] {
            *f = scale * normal.draw(&mut rng) * self.quality.diversity_sigma;
        }
        for f in &mut features[SHARED_AXES] {
            *f = scale * normal.draw(&mut rng) * self.spec.shared_sigma;
        }
        GeneratedImage { features, quality }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{DatasetKind, PromptDataset};

    fn test_model(base_error: f64, slope: f64, diversity: f64) -> DiffusionModel {
        DiffusionModel::new(
            "test",
            10,
            LatencyProfile::new(0.5, 0.3),
            QualityProfile {
                base_error,
                difficulty_slope: slope,
                noise_std: 0.1,
                diversity_sigma: diversity,
            },
            FeatureSpec::default(),
        )
    }

    #[test]
    fn latency_scales_affinely() {
        let p = LatencyProfile::new(1.0, 0.4);
        assert!((p.exec_latency(1).as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((p.exec_latency(4).as_secs_f64() - (0.4 + 0.6 * 4.0)).abs() < 1e-9);
        // Throughput improves with batching.
        assert!(p.throughput(8) > p.throughput(1));
    }

    #[test]
    fn heavier_batching_overhead_means_more_gain() {
        let overhead_bound = LatencyProfile::new(0.1, 0.8);
        let compute_bound = LatencyProfile::new(1.78, 0.1);
        let gain_light = overhead_bound.throughput(16) / overhead_bound.throughput(1);
        let gain_heavy = compute_bound.throughput(16) / compute_bound.throughput(1);
        assert!(gain_light > gain_heavy);
    }

    #[test]
    fn quality_decreases_with_difficulty() {
        let q = QualityProfile {
            base_error: 0.2,
            difficulty_slope: 0.4,
            noise_std: 0.0,
            diversity_sigma: 1.0,
        };
        assert!((q.expected_quality(0.0) - 0.8).abs() < 1e-12);
        assert!((q.expected_quality(1.0) - 0.4).abs() < 1e-12);
        assert!(q.expected_quality(0.2) > q.expected_quality(0.8));
    }

    #[test]
    fn generation_is_deterministic() {
        let m = test_model(0.2, 0.4, 1.3);
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 5, 1, FeatureSpec::default());
        let p = &d.prompts()[0];
        assert_eq!(m.generate(p), m.generate(p));
    }

    #[test]
    fn different_prompts_yield_different_images() {
        let m = test_model(0.2, 0.4, 1.3);
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 5, 1, FeatureSpec::default());
        let a = m.generate(&d.prompts()[0]);
        let b = m.generate(&d.prompts()[1]);
        assert_ne!(a.features, b.features);
    }

    #[test]
    fn different_models_yield_different_images_for_same_prompt() {
        let m1 = test_model(0.2, 0.4, 1.3);
        let m2 = DiffusionModel::new(
            "other",
            50,
            LatencyProfile::new(1.78, 0.1),
            *m1.quality_profile(),
            FeatureSpec::default(),
        );
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 5, 1, FeatureSpec::default());
        let a = m1.generate(&d.prompts()[0]);
        let b = m2.generate(&d.prompts()[0]);
        assert_ne!(a.features, b.features);
    }

    #[test]
    fn artifact_axis_tracks_quality() {
        // Averaged over many prompts, low-quality generations sit farther
        // along the artifact axis.
        let weak = test_model(0.5, 0.3, 1.0);
        let strong = test_model(0.05, 0.05, 1.0);
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 400, 2, FeatureSpec::default());
        let mean_axis = |m: &DiffusionModel| {
            d.prompts()
                .iter()
                .map(|p| m.generate(p).features[ARTIFACT_AXIS])
                .sum::<f64>()
                / d.len() as f64
        };
        assert!(mean_axis(&weak) > mean_axis(&strong) + 1.0);
    }

    #[test]
    fn quality_shift_raises_quality() {
        let m = test_model(0.3, 0.3, 1.0);
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 50, 3, FeatureSpec::default());
        let mean_q = |shift: f64| {
            d.prompts()
                .iter()
                .map(|p| m.generate_with_quality_shift(p, shift).quality)
                .sum::<f64>()
                / d.len() as f64
        };
        assert!(mean_q(0.2) > mean_q(0.0) + 0.1);
        assert!(mean_q(-0.2) < mean_q(0.0) - 0.1);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        let p = LatencyProfile::new(1.0, 0.2);
        let _ = p.exec_latency(0);
    }
}
