//! Multi-stage cascades (paper §5, "Scalability of DiffServe").
//!
//! The paper sketches the extension to longer pipelines: "applying a
//! discriminator after each model, with adjustments to the MILP formulation
//! to include multiple confidence thresholds as optimization variables."
//! This module implements the offline evaluation of an N-stage cascade:
//! every query starts at stage 0 (the lightest model); after each stage the
//! discriminator scores the output and the query either returns or
//! escalates to the next, heavier stage.

use diffserve_linalg::Mat;
use diffserve_metrics::fid_score;

use crate::discriminator::Discriminator;
use crate::model::DiffusionModel;
use crate::prompt::PromptDataset;

/// An N-stage cascade: models ordered light → heavy, with a shared
/// discriminator gating every stage but the last.
#[derive(Debug, Clone)]
pub struct Pipeline<'a> {
    stages: Vec<&'a DiffusionModel>,
    discriminator: &'a Discriminator,
}

/// Result of evaluating a pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineEval {
    /// FID of the blended responses against the dataset reference.
    pub fid: f64,
    /// Fraction of queries resolved at each stage (sums to 1).
    pub stage_fractions: Vec<f64>,
    /// Mean per-query generation latency (batch 1, discriminator included
    /// for every gated stage the query visited).
    pub mean_latency: f64,
}

impl<'a> Pipeline<'a> {
    /// Creates a pipeline from models ordered lightest to heaviest.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two stages (use the plain model evaluation
    /// for a single stage).
    pub fn new(stages: Vec<&'a DiffusionModel>, discriminator: &'a Discriminator) -> Self {
        assert!(stages.len() >= 2, "a pipeline needs at least two stages");
        Pipeline {
            stages,
            discriminator,
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Evaluates the pipeline at per-gate thresholds (`thresholds.len()`
    /// must be `num_stages() - 1`; gate `i` keeps stage-`i` outputs whose
    /// confidence is at least `thresholds[i]`).
    ///
    /// # Panics
    ///
    /// Panics on a threshold-count mismatch.
    pub fn evaluate(&self, dataset: &PromptDataset, thresholds: &[f64]) -> PipelineEval {
        assert_eq!(
            thresholds.len(),
            self.stages.len() - 1,
            "need one threshold per gated stage"
        );
        let disc_lat = self.discriminator.latency().as_secs_f64();
        let mut features: Vec<Vec<f64>> = Vec::with_capacity(dataset.len());
        let mut stage_counts = vec![0usize; self.stages.len()];
        let mut latency_sum = 0.0;

        for prompt in dataset.prompts() {
            let mut resolved = None;
            for (i, model) in self.stages.iter().enumerate() {
                let img = model.generate(prompt);
                latency_sum += model.latency().exec_latency(1).as_secs_f64();
                let last = i + 1 == self.stages.len();
                if last {
                    resolved = Some((i, img));
                    break;
                }
                latency_sum += disc_lat;
                let conf = self.discriminator.confidence(&img.features);
                if conf >= thresholds[i] {
                    resolved = Some((i, img));
                    break;
                }
            }
            let (stage, img) = resolved.expect("last stage always resolves");
            stage_counts[stage] += 1;
            features.push(img.features);
        }

        let refs: Vec<&[f64]> = features.iter().map(|f| f.as_slice()).collect();
        let fid = fid_score(&Mat::from_rows(&refs), dataset.real_features(), 1e-6)
            .expect("well-conditioned features");
        let n = dataset.len() as f64;
        PipelineEval {
            fid,
            stage_fractions: stage_counts.iter().map(|&c| c as f64 / n).collect(),
            mean_latency: latency_sum / n,
        }
    }

    /// Sweeps a grid of thresholds per gate and returns the configurations
    /// on the FID/latency Pareto frontier, each as
    /// `(thresholds, PipelineEval)`.
    pub fn pareto_frontier(
        &self,
        dataset: &PromptDataset,
        grid: &[f64],
    ) -> Vec<(Vec<f64>, PipelineEval)> {
        let gates = self.stages.len() - 1;
        let mut all: Vec<(Vec<f64>, PipelineEval)> = Vec::new();
        let mut idx = vec![0usize; gates];
        loop {
            let thresholds: Vec<f64> = idx.iter().map(|&i| grid[i]).collect();
            let eval = self.evaluate(dataset, &thresholds);
            all.push((thresholds, eval));
            // Odometer increment.
            let mut g = 0;
            loop {
                if g == gates {
                    break;
                }
                idx[g] += 1;
                if idx[g] < grid.len() {
                    break;
                }
                idx[g] = 0;
                g += 1;
            }
            if g == gates {
                break;
            }
        }
        // Pareto: minimize (latency, fid).
        all.sort_by(|a, b| {
            a.1.mean_latency
                .partial_cmp(&b.1.mean_latency)
                .expect("finite latency")
        });
        let mut frontier: Vec<(Vec<f64>, PipelineEval)> = Vec::new();
        let mut best_fid = f64::INFINITY;
        for (t, e) in all {
            if e.fid < best_fid - 1e-9 {
                best_fid = e.fid;
                frontier.push((t, e));
            }
        }
        frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discriminator::{Discriminator, DiscriminatorConfig};
    use crate::features::FeatureSpec;
    use crate::prompt::{DatasetKind, PromptDataset};
    use crate::zoo::{sd_turbo, sd_v15, sdxs};
    use std::sync::OnceLock;

    struct Fixture {
        dataset: PromptDataset,
        light: crate::model::DiffusionModel,
        mid: crate::model::DiffusionModel,
        heavy: crate::model::DiffusionModel,
        disc: Discriminator,
    }

    fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let spec = FeatureSpec::default();
            let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 1200, 31, spec);
            let light = sdxs(spec);
            let mid = sd_turbo(spec);
            let heavy = sd_v15(spec);
            let disc = Discriminator::train(
                &dataset,
                &light,
                &heavy,
                DiscriminatorConfig {
                    train_prompts: 400,
                    epochs: 10,
                    ..Default::default()
                },
            );
            Fixture {
                dataset,
                light,
                mid,
                heavy,
                disc,
            }
        })
    }

    #[test]
    fn stage_fractions_sum_to_one() {
        let f = fixture();
        let p = Pipeline::new(vec![&f.light, &f.mid, &f.heavy], &f.disc);
        let e = p.evaluate(&f.dataset, &[0.5, 0.5]);
        let total: f64 = e.stage_fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(e.stage_fractions.len(), 3);
    }

    #[test]
    fn zero_thresholds_resolve_everything_at_stage_zero() {
        let f = fixture();
        let p = Pipeline::new(vec![&f.light, &f.mid, &f.heavy], &f.disc);
        let e = p.evaluate(&f.dataset, &[0.0, 0.0]);
        assert_eq!(e.stage_fractions[0], 1.0);
        // Latency = lightest model + one discriminator pass.
        let expected =
            f.light.latency().exec_latency(1).as_secs_f64() + f.disc.latency().as_secs_f64();
        assert!((e.mean_latency - expected).abs() < 1e-9);
    }

    #[test]
    fn max_thresholds_push_everything_to_the_last_stage() {
        let f = fixture();
        let p = Pipeline::new(vec![&f.light, &f.mid, &f.heavy], &f.disc);
        let e = p.evaluate(&f.dataset, &[1.01, 1.01]);
        assert_eq!(*e.stage_fractions.last().unwrap(), 1.0);
    }

    #[test]
    fn three_stage_beats_all_heavy_and_all_light() {
        let f = fixture();
        let p = Pipeline::new(vec![&f.light, &f.mid, &f.heavy], &f.disc);
        let all_light = p.evaluate(&f.dataset, &[0.0, 0.0]);
        let all_heavy = p.evaluate(&f.dataset, &[1.01, 1.01]);
        let blended = p.evaluate(&f.dataset, &[0.6, 0.6]);
        assert!(
            blended.fid < all_light.fid,
            "{} vs {}",
            blended.fid,
            all_light.fid
        );
        assert!(
            blended.fid < all_heavy.fid,
            "{} vs {}",
            blended.fid,
            all_heavy.fid
        );
        assert!(blended.mean_latency < all_heavy.mean_latency);
    }

    #[test]
    fn frontier_is_monotone() {
        let f = fixture();
        let p = Pipeline::new(vec![&f.light, &f.mid, &f.heavy], &f.disc);
        let grid = [0.0, 0.3, 0.6, 0.9];
        let frontier = p.pareto_frontier(&f.dataset, &grid);
        assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            assert!(w[0].1.mean_latency <= w[1].1.mean_latency);
            assert!(w[0].1.fid >= w[1].1.fid);
        }
    }

    #[test]
    #[should_panic(expected = "one threshold per gated stage")]
    fn wrong_threshold_count_panics() {
        let f = fixture();
        let p = Pipeline::new(vec![&f.light, &f.heavy], &f.disc);
        let _ = p.evaluate(&f.dataset, &[0.5, 0.5]);
    }
}
