//! The cascade discriminator (paper §3.2).
//!
//! A binary classifier is trained to distinguish *real* images from
//! diffusion-model outputs; its softmax confidence that an image is real
//! then serves as the quality score gating the light→heavy cascade. The
//! paper's production choice is EfficientNet-V2 trained with ground-truth
//! images as the "real" class; Fig. 7 ablates ResNet-34, ViT-B16, and an
//! EfficientNet trained with *heavy-model outputs* as the "real" class.
//!
//! This reproduction maps the architectures to MLP capacities over the
//! synthetic feature space, keeping the paper's measured per-image scoring
//! latencies (EfficientNet 10 ms, ResNet 2 ms, ViT 5 ms on A100).

use diffserve_linalg::Mat;
use diffserve_nn::{Adam, Mlp, TrainConfig};
use diffserve_simkit::rng::{derive_seed, seeded_rng};
use diffserve_simkit::time::SimDuration;

use diffserve_simkit::rng::{Normal, Sampler};

use crate::features::DIM;
use crate::model::DiffusionModel;
use crate::prompt::PromptDataset;

/// Discriminator backbone (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiscArch {
    /// EfficientNet-V2 — the paper's production choice (10 ms / image).
    EfficientNetV2,
    /// ResNet-34 — fastest but least discriminative (2 ms / image).
    ResNet34,
    /// ViT-B16 — strong backbone, data-hungry (5 ms / image).
    ViTB16,
}

impl DiscArch {
    /// Hidden-layer widths standing in for backbone capacity.
    fn hidden_widths(self) -> Vec<usize> {
        match self {
            DiscArch::EfficientNetV2 => vec![32, 16],
            DiscArch::ResNet34 => vec![4],
            DiscArch::ViTB16 => vec![64, 32],
        }
    }

    /// Fraction of the training set the backbone can exploit. ViT's
    /// data-hunger is modelled as training on a subsample, which yields the
    /// overfit-ish middle-of-the-pack behaviour in Fig. 7.
    fn data_fraction(self) -> f64 {
        match self {
            DiscArch::EfficientNetV2 => 1.0,
            DiscArch::ResNet34 => 1.0,
            DiscArch::ViTB16 => 0.15,
        }
    }

    /// Std of the backbone's extraction noise on the *artifact axis* — the
    /// axis carrying the quality signal. EfficientNet-V2 extracts the
    /// cleanest quality features (the paper attributes its win to
    /// "architectural efficiency ... capturing complex quality features
    /// more effectively"); weaker backbones blur exactly that signal, which
    /// degrades ranking (and therefore routing) while leaving coarse
    /// real-vs-fake separation mostly intact.
    fn feature_noise(self) -> f64 {
        match self {
            DiscArch::EfficientNetV2 => 0.0,
            DiscArch::ResNet34 => 3.0,
            DiscArch::ViTB16 => 0.9,
        }
    }

    /// Per-image scoring latency (paper §4.4).
    pub fn latency(self) -> SimDuration {
        match self {
            DiscArch::EfficientNetV2 => SimDuration::from_millis(10),
            DiscArch::ResNet34 => SimDuration::from_millis(2),
            DiscArch::ViTB16 => SimDuration::from_millis(5),
        }
    }

    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            DiscArch::EfficientNetV2 => "EfficientNet-V2",
            DiscArch::ResNet34 => "ResNet-34",
            DiscArch::ViTB16 => "ViT-B16",
        }
    }
}

/// What populates the "real" class during training (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealClass {
    /// Ground-truth dataset images — the paper's final configuration.
    GroundTruth,
    /// Heavyweight-model outputs — the "EfficientNet w Fake" ablation.
    HeavyOutputs,
}

/// Discriminator training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscriminatorConfig {
    /// Backbone stand-in.
    pub arch: DiscArch,
    /// Source of "real" training samples.
    pub real_class: RealClass,
    /// Number of prompts sampled for generated (and real) training images.
    pub train_prompts: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed for init/shuffling.
    pub seed: u64,
}

impl Default for DiscriminatorConfig {
    fn default() -> Self {
        DiscriminatorConfig {
            arch: DiscArch::EfficientNetV2,
            real_class: RealClass::GroundTruth,
            train_prompts: 1000,
            epochs: 20,
            seed: 0xD15C,
        }
    }
}

/// A trained discriminator producing confidence-that-real scores.
///
/// Raw softmax outputs of a near-separable classifier saturate at 0/1,
/// which would leave the cascade threshold without dynamic range. Following
/// standard practice for cascade gating (CascadeBERT and the paper's related
/// work use *calibrated* confidences), the discriminator equalizes its raw
/// scores against the empirical distribution of lightweight-model outputs on
/// the training prompts: a calibrated confidence of `t` means the image
/// looks more real than a fraction `t` of typical lightweight outputs. This
/// is a monotone reparameterization — rankings, and therefore routing
/// quality, are untouched — and it makes the deferral profile `f(t)` smooth
/// across the whole `[0, 1]` threshold range.
#[derive(Debug, Clone)]
pub struct Discriminator {
    config: DiscriminatorConfig,
    classifier: Mlp,
    train_accuracy: f64,
    /// Sorted raw confidences of light-model outputs (calibration set).
    calibration: Vec<f64>,
}

impl Discriminator {
    /// Trains a discriminator for a light/heavy pair on a dataset.
    ///
    /// The training set follows the paper (Fig. 3): "real" samples come from
    /// the dataset's ground-truth images (or from heavy-model outputs for
    /// the `HeavyOutputs` ablation); "fake" samples are generated by both
    /// cascade members over a prompt subsample.
    ///
    /// # Panics
    ///
    /// Panics if `config.train_prompts` is zero or exceeds the dataset size.
    pub fn train(
        dataset: &PromptDataset,
        light: &DiffusionModel,
        heavy: &DiffusionModel,
        config: DiscriminatorConfig,
    ) -> Self {
        assert!(
            config.train_prompts > 0,
            "need at least one training prompt"
        );
        assert!(
            config.train_prompts <= dataset.len(),
            "train_prompts {} exceeds dataset size {}",
            config.train_prompts,
            dataset.len()
        );
        let n = ((config.train_prompts as f64) * config.arch.data_fraction()).ceil() as usize;
        let n = n.clamp(8, dataset.len());
        let prompts = &dataset.prompts()[..n];

        // Fake class: half light, half heavy outputs, as in the paper's
        // training diagram (GLM + GHM).
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(3 * n);
        let mut labels: Vec<usize> = Vec::with_capacity(3 * n);
        for (i, p) in prompts.iter().enumerate() {
            let img = if i % 2 == 0 {
                light.generate(p)
            } else {
                heavy.generate(p)
            };
            rows.push(img.features);
            labels.push(0); // fake
        }
        match config.real_class {
            RealClass::GroundTruth => {
                let real = dataset.training_real_features();
                for i in 0..n {
                    rows.push(real.row(i % real.rows()).to_vec());
                    labels.push(1); // real
                }
            }
            RealClass::HeavyOutputs => {
                for p in prompts.iter() {
                    rows.push(heavy.generate(p).features);
                    labels.push(1); // "real" = heavy output
                }
            }
        }
        // The backbone sees its own (noisy) feature extraction at train time.
        let sigma = config.arch.feature_noise();
        if sigma > 0.0 {
            let mut noise_rng = seeded_rng(derive_seed(config.seed, 0xFEA7));
            let normal = Normal::standard();
            for row in &mut rows {
                row[crate::features::ARTIFACT_AXIS] += sigma * normal.draw(&mut noise_rng);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Mat::from_rows(&refs);

        let mut widths = vec![DIM];
        widths.extend(config.arch.hidden_widths());
        widths.push(2);
        let mut rng = seeded_rng(derive_seed(config.seed, 0xA11C));
        let mut classifier = Mlp::new(&widths, &mut rng);
        let mut opt = Adam::new(0.01);
        let history = classifier.fit(
            &x,
            &labels,
            &mut opt,
            &TrainConfig {
                epochs: config.epochs,
                batch_size: 64,
                shuffle: true,
            },
            &mut rng,
        );
        let train_accuracy = history.last().map(|h| h.accuracy).unwrap_or(0.0);

        // Calibration set: raw scores of light-model outputs on the training
        // prompts (these are exactly the images the cascade will gate).
        let mut disc = Discriminator {
            config,
            classifier,
            train_accuracy,
            calibration: Vec::new(),
        };
        let mut raw: Vec<f64> = prompts
            .iter()
            .map(|p| disc.raw_confidence(&light.generate(p).features))
            .collect();
        raw.sort_by(|a, b| a.partial_cmp(b).expect("softmax outputs are finite"));
        disc.calibration = raw;
        disc
    }

    /// Uncalibrated softmax probability that `features` belong to a real
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if the feature vector has the wrong dimensionality.
    pub fn raw_confidence(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), DIM, "feature dimensionality mismatch");
        let extracted = self.extract(features);
        let x = Mat::from_rows(&[&extracted]);
        self.classifier.predict_proba(&x)[(0, 1)]
    }

    /// Applies the backbone's feature-extraction noise, deterministically
    /// per image (seeded from the feature bits) so repeated scoring of the
    /// same image is stable.
    fn extract(&self, features: &[f64]) -> Vec<f64> {
        let sigma = self.config.arch.feature_noise();
        if sigma == 0.0 {
            return features.to_vec();
        }
        let tag = features
            .iter()
            .fold(0u64, |acc, f| acc.rotate_left(7) ^ f.to_bits());
        let mut rng = seeded_rng(derive_seed(self.config.seed, tag));
        let normal = Normal::standard();
        let mut out = features.to_vec();
        out[crate::features::ARTIFACT_AXIS] += sigma * normal.draw(&mut rng);
        out
    }

    /// Calibrated confidence in `[0, 1]` — the cascade's quality score.
    ///
    /// See the type documentation for the calibration scheme.
    ///
    /// # Panics
    ///
    /// Panics if the feature vector has the wrong dimensionality.
    pub fn confidence(&self, features: &[f64]) -> f64 {
        self.equalize(self.raw_confidence(features))
    }

    /// Batched calibrated confidence scoring.
    pub fn confidences(&self, features: &Mat) -> Vec<f64> {
        (0..features.rows())
            .map(|i| self.confidence(features.row(i)))
            .collect()
    }

    /// Maps a raw score through the empirical CDF of the calibration set
    /// with linear interpolation between order statistics.
    fn equalize(&self, raw: f64) -> f64 {
        let cal = &self.calibration;
        if cal.is_empty() {
            return raw;
        }
        let n = cal.len();
        let idx = cal.partition_point(|&v| v < raw);
        if idx == 0 {
            // Below the calibration range: scale into [0, 1/n).
            let lo = cal[0].max(1e-12);
            return (raw / lo).clamp(0.0, 1.0) / n as f64;
        }
        if idx == n {
            return 1.0;
        }
        let (a, b) = (cal[idx - 1], cal[idx]);
        let frac = if b > a { (raw - a) / (b - a) } else { 0.0 };
        ((idx - 1) as f64 + frac + 0.5) / n as f64
    }

    /// Per-image scoring latency of the backbone.
    pub fn latency(&self) -> SimDuration {
        self.config.arch.latency()
    }

    /// Final training accuracy on the real-vs-fake task.
    pub fn train_accuracy(&self) -> f64 {
        self.train_accuracy
    }

    /// The configuration this discriminator was trained with.
    pub fn config(&self) -> &DiscriminatorConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSpec;
    use crate::prompt::DatasetKind;
    use crate::zoo::{sd_turbo, sd_v15};
    use diffserve_nn::auc;

    fn small_setup() -> (PromptDataset, DiffusionModel, DiffusionModel) {
        let spec = FeatureSpec::default();
        let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 600, 11, spec);
        (dataset, sd_turbo(spec), sd_v15(spec))
    }

    fn quick_config() -> DiscriminatorConfig {
        DiscriminatorConfig {
            train_prompts: 400,
            epochs: 12,
            ..Default::default()
        }
    }

    #[test]
    fn learns_real_vs_fake() {
        let (dataset, light, heavy) = small_setup();
        let disc = Discriminator::train(&dataset, &light, &heavy, quick_config());
        assert!(
            disc.train_accuracy() > 0.80,
            "train accuracy {}",
            disc.train_accuracy()
        );
    }

    #[test]
    fn confidence_ranks_light_image_quality() {
        // The load-bearing property: among lightweight outputs, confidence
        // must correlate with latent quality (AUC of top-half vs bottom-half
        // quality well above chance).
        let (dataset, light, heavy) = small_setup();
        let disc = Discriminator::train(&dataset, &light, &heavy, quick_config());
        let eval = &dataset.prompts()[400..];
        let mut scored: Vec<(f64, f64)> = eval
            .iter()
            .map(|p| {
                let img = light.generate(p);
                (disc.confidence(&img.features), img.quality)
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let median_q = scored[scored.len() / 2].1;
        let scores: Vec<f64> = scored.iter().map(|s| s.0).collect();
        let labels: Vec<bool> = scored.iter().map(|s| s.1 >= median_q).collect();
        let a = auc(&scores, &labels);
        assert!(a > 0.70, "quality-ranking AUC {a}");
    }

    #[test]
    fn heavy_outputs_score_higher_than_light_on_average() {
        let (dataset, light, heavy) = small_setup();
        let disc = Discriminator::train(&dataset, &light, &heavy, quick_config());
        let eval = &dataset.prompts()[400..500];
        let mean_conf = |m: &DiffusionModel| {
            eval.iter()
                .map(|p| disc.confidence(&m.generate(p).features))
                .sum::<f64>()
                / eval.len() as f64
        };
        assert!(mean_conf(&heavy) > mean_conf(&light) + 0.05);
    }

    #[test]
    fn confidences_batch_matches_single() {
        let (dataset, light, heavy) = small_setup();
        let disc = Discriminator::train(&dataset, &light, &heavy, quick_config());
        let imgs: Vec<Vec<f64>> = dataset.prompts()[..5]
            .iter()
            .map(|p| light.generate(p).features)
            .collect();
        let refs: Vec<&[f64]> = imgs.iter().map(|r| r.as_slice()).collect();
        let batch = disc.confidences(&Mat::from_rows(&refs));
        for (i, img) in imgs.iter().enumerate() {
            assert!((batch[i] - disc.confidence(img)).abs() < 1e-12);
        }
    }

    #[test]
    fn architectures_have_paper_latencies() {
        assert_eq!(
            DiscArch::EfficientNetV2.latency(),
            SimDuration::from_millis(10)
        );
        assert_eq!(DiscArch::ResNet34.latency(), SimDuration::from_millis(2));
        assert_eq!(DiscArch::ViTB16.latency(), SimDuration::from_millis(5));
        assert!(!DiscArch::EfficientNetV2.name().is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let (dataset, light, heavy) = small_setup();
        let a = Discriminator::train(&dataset, &light, &heavy, quick_config());
        let b = Discriminator::train(&dataset, &light, &heavy, quick_config());
        let img = light.generate(&dataset.prompts()[450]);
        assert_eq!(
            a.confidence(&img.features).to_bits(),
            b.confidence(&img.features).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "exceeds dataset size")]
    fn oversized_training_request_panics() {
        let (dataset, light, heavy) = small_setup();
        let cfg = DiscriminatorConfig {
            train_prompts: 10_000,
            ..Default::default()
        };
        let _ = Discriminator::train(&dataset, &light, &heavy, cfg);
    }
}
