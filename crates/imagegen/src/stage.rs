//! Stage-level decomposition of the diffusion pipeline.
//!
//! The paper's models are monolithic: one `generate` call covers the whole
//! encode → denoise → decode workflow, and an escalation to the heavy tier
//! restarts that workflow from scratch. LegoDiffusion-style stage-level
//! micro-serving splits the workflow into explicit stages so the heavy tier
//! can *resume* denoising from the light tier's intermediate latents,
//! turning escalation into an incremental top-up instead of a full rerun.
//!
//! This module carries the stage model shared by both serving engines:
//!
//! * [`StageState`] — how far a query's denoising has progressed on some
//!   tier, attached to escalated queries so the next tier can resume.
//! * [`reused_steps`] / [`resume_savings`] — the latency discount a
//!   resume-aware dispatch path subtracts from the heavy model's service
//!   time, covering only the residual steps.
//! * [`StageLatencyBreakdown`] — the fixed encode/denoise/decode split of a
//!   model's end-to-end latency, exposed in session snapshots.
//!
//! # Invariants
//!
//! * With resume disabled, or with a step credit of zero, the computed
//!   savings is exactly `0.0`, and `exec - 0.0` is bitwise `exec`: the
//!   staged path is provably a no-op until the knob is turned (the
//!   zero-reuse equivalence property in `tests/stage_resume.rs`).
//! * At least one heavy denoise step always remains
//!   (`reused_steps <= heavy_steps - 1`), so a resumed query still passes
//!   through the heavy model.
//! * Degradation slowdowns multiply *after* the savings subtraction, so a
//!   degraded worker stretches only the residual steps.

use crate::model::LatencyProfile;

/// Fraction of a model's end-to-end latency spent in the prompt/latent
/// encode stage. Encode is prompt-conditioned and tier-specific, so it is
/// never reused across tiers.
pub const ENCODE_FRAC: f64 = 0.05;

/// Fraction of a model's end-to-end latency spent in the iterative denoise
/// stage — the only stage whose steps can be resumed from another tier's
/// latents.
pub const DENOISE_FRAC: f64 = 0.85;

/// Fraction of a model's end-to-end latency spent in the VAE decode stage.
/// Decode consumes the final latent, so it always runs on the serving tier.
pub const DECODE_FRAC: f64 = 0.10;

/// Progress of a query through a model's denoise schedule, carried across
/// an escalation so the next tier can resume instead of restarting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageState {
    /// Denoise steps the originating tier completed.
    pub steps_completed: u32,
    /// The originating tier's total denoise step count.
    pub of_steps: u32,
}

impl StageState {
    /// State of a query that ran the full denoise schedule of a model with
    /// `steps` steps — the state a cascade escalation carries, since the
    /// light tier always runs to completion before the discriminator votes.
    pub fn completed(steps: u32) -> StageState {
        StageState {
            steps_completed: steps,
            of_steps: steps,
        }
    }

    /// Fraction of the originating schedule completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.of_steps == 0 {
            return 0.0;
        }
        (self.steps_completed.min(self.of_steps)) as f64 / self.of_steps as f64
    }
}

/// Denoise steps of a `heavy_steps`-step schedule that a resuming tier can
/// skip, given the escalated query's [`StageState`] and the configured
/// `step_credit` (how much of the light tier's denoising transfers across
/// the tier boundary; latent spaces differ, so credit < 1).
///
/// At least one heavy step always remains.
pub fn reused_steps(heavy_steps: u32, state: StageState, step_credit: f64) -> u32 {
    if heavy_steps == 0 {
        return 0;
    }
    let credit = step_credit.clamp(0.0, 1.0);
    let raw = (heavy_steps as f64 * credit * state.progress()).round() as u32;
    raw.min(heavy_steps - 1)
}

/// Per-query service-time discount for resuming `reused` of `total` denoise
/// steps on a model with latency `profile`.
///
/// The affine batch model `exec_latency(b) = base · (ovh + (1-ovh)·b)`
/// attributes `base · (1-ovh)` of marginal work to each query in a batch;
/// of that, only the denoise fraction is resumable. With `reused == 0`
/// this is exactly `0.0`.
pub fn resume_savings(profile: &LatencyProfile, reused: u32, total: u32) -> f64 {
    if reused == 0 || total == 0 {
        return 0.0;
    }
    profile.base_latency * (1.0 - profile.batch_overhead) * DENOISE_FRAC * (reused as f64)
        / (total as f64)
}

/// Fixed encode/denoise/decode split of a latency value, for per-stage
/// queue/latency breakdowns in session snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageLatencyBreakdown {
    /// Seconds attributed to the encode stage.
    pub encode: f64,
    /// Seconds attributed to the denoise stage.
    pub denoise: f64,
    /// Seconds attributed to the decode stage.
    pub decode: f64,
}

impl StageLatencyBreakdown {
    /// Splits `total_latency` seconds across the three stages by the fixed
    /// stage fractions.
    pub fn of_latency(total_latency: f64) -> StageLatencyBreakdown {
        StageLatencyBreakdown {
            encode: total_latency * ENCODE_FRAC,
            denoise: total_latency * DENOISE_FRAC,
            decode: total_latency * DECODE_FRAC,
        }
    }

    /// Sum of the three stage components.
    pub fn total(&self) -> f64 {
        self.encode + self.denoise + self.decode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        assert!((ENCODE_FRAC + DENOISE_FRAC + DECODE_FRAC - 1.0).abs() < 1e-12);
    }

    #[test]
    fn completed_state_has_full_progress() {
        let s = StageState::completed(4);
        assert_eq!(s.progress(), 1.0);
        assert_eq!(StageState::completed(0).progress(), 0.0);
    }

    #[test]
    fn reused_steps_leaves_residual_work() {
        let full = StageState::completed(4);
        // Full credit can never skip every heavy step.
        assert_eq!(reused_steps(50, full, 1.0), 49);
        assert_eq!(reused_steps(1, full, 1.0), 0);
        assert_eq!(reused_steps(0, full, 1.0), 0);
        // Half credit of full light progress reuses half the heavy steps.
        assert_eq!(reused_steps(50, full, 0.5), 25);
        // Zero credit reuses nothing.
        assert_eq!(reused_steps(50, full, 0.0), 0);
    }

    #[test]
    fn zero_reuse_savings_is_exactly_zero() {
        let p = LatencyProfile::new(1.78, 0.12);
        assert_eq!(resume_savings(&p, 0, 50), 0.0);
        assert_eq!(resume_savings(&p, 0, 0), 0.0);
    }

    #[test]
    fn savings_scale_with_reused_fraction() {
        let p = LatencyProfile::new(2.0, 0.5);
        // base·(1-ovh)·DENOISE_FRAC·(25/50) = 2.0·0.5·0.85·0.5
        let s = resume_savings(&p, 25, 50);
        assert!((s - 0.425).abs() < 1e-12);
        // Savings never exceed the per-query denoise share.
        let max = resume_savings(&p, 49, 50);
        assert!(max < p.base_latency * (1.0 - p.batch_overhead) * DENOISE_FRAC);
    }

    #[test]
    fn breakdown_splits_and_sums() {
        let b = StageLatencyBreakdown::of_latency(2.0);
        assert!((b.encode - 0.1).abs() < 1e-12);
        assert!((b.denoise - 1.7).abs() < 1e-12);
        assert!((b.decode - 0.2).abs() < 1e-12);
        assert!((b.total() - 2.0).abs() < 1e-12);
    }
}
