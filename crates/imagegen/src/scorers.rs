//! Simulated quality scorers: PickScore and CLIPScore.
//!
//! The paper (§2.1, Fig. 1a) shows that cascades routed by PickScore or
//! CLIPScore thresholds perform *no better than random*, because:
//!
//! * **PickScore** compares images *for the same prompt*; its absolute value
//!   carries a strong prompt-level component, so one global threshold
//!   conflates prompt style with image quality.
//! * **CLIPScore** measures text–image alignment, which is nearly identical
//!   across model variants and "does not consistently reflect the image's
//!   perceptual quality".
//!
//! These scorers reproduce exactly those failure modes over the synthetic
//! substrate: both carry the prompt's `style_bias`, PickScore adds heavy
//! per-image noise, and CLIPScore's dependence on true quality is weak.

use diffserve_simkit::rng::{derive_seed, seeded_rng, Normal, Sampler};

use crate::model::GeneratedImage;
use crate::prompt::Prompt;

/// Simulated PickScore: prompt-relative preference score.
///
/// Within one prompt, differences of PickScores still rank the two models'
/// outputs reasonably (used in Fig. 1b); across prompts, the style component
/// dominates, defeating a global routing threshold (Fig. 1a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PickScorer {
    /// Weight of the latent image quality.
    pub quality_weight: f64,
    /// Weight of the prompt's style bias (shared by both models).
    pub style_weight: f64,
    /// Weight of prompt difficulty: elaborate/artistic prompts attract
    /// higher preference scores regardless of rendering quality, so a
    /// global threshold *adversely* keeps exactly the hard prompts on the
    /// light model — this is what pushes PickScore routing below random in
    /// Fig. 1a.
    pub difficulty_weight: f64,
    /// Per-image noise std.
    pub noise_std: f64,
}

impl Default for PickScorer {
    fn default() -> Self {
        PickScorer {
            quality_weight: 0.45,
            style_weight: 0.6,
            difficulty_weight: 3.0,
            noise_std: 0.18,
        }
    }
}

impl PickScorer {
    /// Scores an image for a prompt. Deterministic per (prompt, image).
    pub fn score(&self, prompt: &Prompt, image: &GeneratedImage) -> f64 {
        let noise = deterministic_noise(prompt, image, 0x91CC, self.noise_std);
        self.quality_weight * image.quality
            + self.style_weight * prompt.style_bias
            + self.difficulty_weight * prompt.difficulty
            + noise
    }
}

/// Simulated CLIPScore: text–image alignment.
///
/// Alignment is dominated by the prompt itself; the model's rendering
/// quality contributes only weakly, so CLIPScore barely separates light
/// from heavy outputs — matching the paper's observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipScorer {
    /// Weight of the latent image quality (small by design).
    pub quality_weight: f64,
    /// Weight of the prompt's intrinsic alignment level.
    pub style_weight: f64,
    /// Weight of prompt difficulty (detailed prompts align more tokens, so
    /// CLIP alignment creeps up with prompt elaborateness).
    pub difficulty_weight: f64,
    /// Per-image noise std.
    pub noise_std: f64,
}

impl Default for ClipScorer {
    fn default() -> Self {
        ClipScorer {
            quality_weight: 0.06,
            style_weight: 0.5,
            difficulty_weight: 1.4,
            noise_std: 0.10,
        }
    }
}

impl ClipScorer {
    /// Scores an image for a prompt. Deterministic per (prompt, image).
    pub fn score(&self, prompt: &Prompt, image: &GeneratedImage) -> f64 {
        let noise = deterministic_noise(prompt, image, 0xC11F, self.noise_std);
        self.quality_weight * image.quality
            + self.style_weight * prompt.style_bias
            + self.difficulty_weight * prompt.difficulty
            + noise
    }
}

/// Deterministic per-(prompt, image, scorer) Gaussian noise: hashes the
/// image's quality bits into the stream so the same image always gets the
/// same score.
fn deterministic_noise(prompt: &Prompt, image: &GeneratedImage, tag: u64, std: f64) -> f64 {
    let stream = derive_seed(prompt.seed, tag ^ image.quality.to_bits());
    let mut rng = seeded_rng(stream);
    Normal::standard().draw(&mut rng) * std
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSpec;
    use crate::prompt::{DatasetKind, PromptDataset};
    use crate::zoo::{sd_turbo, sd_v15};

    fn corr(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }

    #[test]
    fn scores_are_deterministic() {
        let spec = FeatureSpec::default();
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 10, 1, spec);
        let m = sd_turbo(spec);
        let p = &d.prompts()[0];
        let img = m.generate(p);
        let pick = PickScorer::default();
        assert_eq!(pick.score(p, &img), pick.score(p, &img));
    }

    #[test]
    fn pickscore_difference_ranks_within_prompt() {
        // Fig. 1b uses PickScore *differences* on the same prompt; the
        // difference cancels the style bias and should correlate with the
        // true quality gap.
        let spec = FeatureSpec::default();
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 500, 2, spec);
        let light = sd_turbo(spec);
        let heavy = sd_v15(spec);
        let pick = PickScorer::default();
        let mut score_diffs = Vec::new();
        let mut quality_diffs = Vec::new();
        for p in d.prompts() {
            let li = light.generate(p);
            let hi = heavy.generate(p);
            score_diffs.push(pick.score(p, &hi) - pick.score(p, &li));
            quality_diffs.push(hi.quality - li.quality);
        }
        assert!(corr(&score_diffs, &quality_diffs) > 0.3);
    }

    #[test]
    fn absolute_pickscore_is_dominated_by_style() {
        // Across prompts the style component should dwarf the quality
        // component, defeating a single global threshold.
        let spec = FeatureSpec::default();
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 500, 3, spec);
        let light = sd_turbo(spec);
        let pick = PickScorer::default();
        let mut scores = Vec::new();
        let mut styles = Vec::new();
        let mut qualities = Vec::new();
        for p in d.prompts() {
            let img = light.generate(p);
            scores.push(pick.score(p, &img));
            styles.push(p.style_bias);
            qualities.push(img.quality);
        }
        assert!(corr(&scores, &styles) > corr(&scores, &qualities));
    }

    #[test]
    fn clipscore_barely_separates_models() {
        let spec = FeatureSpec::default();
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 500, 4, spec);
        let light = sd_turbo(spec);
        let heavy = sd_v15(spec);
        let clip = ClipScorer::default();
        let mean = |m: &crate::model::DiffusionModel| {
            d.prompts()
                .iter()
                .map(|p| clip.score(p, &m.generate(p)))
                .sum::<f64>()
                / d.len() as f64
        };
        let gap = (mean(&heavy) - mean(&light)).abs();
        // "CLIP scores of different model variants can be very close" (§2.1).
        assert!(gap < 0.05, "clip score gap {gap}");
    }
}
