//! The deferral profile `f(t)`.
//!
//! `f(t)` is the fraction of queries whose discriminator confidence falls
//! below threshold `t` — i.e. the fraction deferred to the heavyweight
//! model. The resource allocator's heavy-side throughput constraint is
//! `x₂·T₂(b₂) ≥ D·f(t)` (paper Eq. 3). The paper initializes `f` by offline
//! profiling and keeps updating it online; [`DeferralProfile`] implements
//! both: build it from a calibration set, refresh it from runtime samples.

/// Empirical deferral profile built from confidence samples.
///
/// # Examples
///
/// ```
/// use diffserve_imagegen::DeferralProfile;
///
/// let profile = DeferralProfile::from_confidences(vec![0.1, 0.4, 0.6, 0.9]);
/// assert_eq!(profile.fraction_deferred(0.0), 0.0);
/// assert_eq!(profile.fraction_deferred(0.5), 0.5);
/// assert_eq!(profile.fraction_deferred(1.1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeferralProfile {
    /// Confidence samples, ascending.
    sorted: Vec<f64>,
}

impl DeferralProfile {
    /// Builds a profile from confidence samples (NaNs discarded).
    ///
    /// # Panics
    ///
    /// Panics if no finite samples remain.
    pub fn from_confidences(mut confidences: Vec<f64>) -> Self {
        confidences.retain(|c| c.is_finite());
        assert!(
            !confidences.is_empty(),
            "deferral profile needs at least one confidence sample"
        );
        confidences.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        DeferralProfile {
            sorted: confidences,
        }
    }

    /// Number of samples backing the profile.
    pub fn sample_count(&self) -> usize {
        self.sorted.len()
    }

    /// Fraction of queries deferred at threshold `t`: `P(confidence < t)`.
    ///
    /// Monotone non-decreasing in `t`; 0 at `t ≤ min`, 1 at `t > max`.
    pub fn fraction_deferred(&self, t: f64) -> f64 {
        let idx = self.sorted.partition_point(|&c| c < t);
        idx as f64 / self.sorted.len() as f64
    }

    /// Largest threshold whose deferral fraction does not exceed
    /// `max_fraction` — the inverse used when capacity bounds the heavy
    /// side.
    ///
    /// # Panics
    ///
    /// Panics if `max_fraction` is outside `[0, 1]`.
    pub fn threshold_for_fraction(&self, max_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&max_fraction),
            "fraction must lie in [0, 1], got {max_fraction}"
        );
        let n = self.sorted.len();
        let allowed = (max_fraction * n as f64).floor() as usize;
        if allowed >= n {
            return 1.0;
        }
        // Deferring `allowed` queries means the threshold sits at the
        // `allowed`-th order statistic (everything strictly below defers).
        self.sorted[allowed]
    }

    /// Evenly spaced candidate thresholds (inclusive of 0 and 1) for the
    /// MILP's threshold discretization.
    pub fn threshold_grid(steps: usize) -> Vec<f64> {
        assert!(steps >= 2, "grid needs at least two points");
        (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect()
    }

    /// Merges fresh runtime samples into the profile, keeping at most
    /// `cap` most-recent-biased samples (reservoir-free decimation).
    pub fn absorb(&mut self, fresh: &[f64], cap: usize) {
        for &c in fresh {
            if c.is_finite() {
                self.sorted.push(c);
            }
        }
        self.sorted
            .sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        if self.sorted.len() > cap && cap > 0 {
            // Decimate uniformly to preserve the distribution shape.
            let stride = self.sorted.len() as f64 / cap as f64;
            let decimated: Vec<f64> = (0..cap)
                .map(|i| self.sorted[(i as f64 * stride) as usize])
                .collect();
            self.sorted = decimated;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fraction_is_monotone_and_bounded() {
        let p = DeferralProfile::from_confidences(vec![0.2, 0.5, 0.8]);
        assert_eq!(p.fraction_deferred(0.0), 0.0);
        assert!((p.fraction_deferred(0.3) - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.fraction_deferred(0.6) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.fraction_deferred(2.0), 1.0);
    }

    #[test]
    fn threshold_inverse_respects_capacity() {
        let p = DeferralProfile::from_confidences((0..100).map(|i| i as f64 / 100.0).collect());
        // Allow at most 30% deferral.
        let t = p.threshold_for_fraction(0.30);
        assert!(p.fraction_deferred(t) <= 0.30 + 1e-12);
        // And the next-larger threshold would exceed it.
        assert!(p.fraction_deferred(t + 0.011) > 0.30);
    }

    #[test]
    fn full_capacity_allows_threshold_one() {
        let p = DeferralProfile::from_confidences(vec![0.1, 0.9]);
        assert_eq!(p.threshold_for_fraction(1.0), 1.0);
    }

    #[test]
    fn zero_capacity_blocks_all_deferral() {
        let p = DeferralProfile::from_confidences(vec![0.3, 0.6, 0.9]);
        let t = p.threshold_for_fraction(0.0);
        assert_eq!(p.fraction_deferred(t), 0.0);
    }

    #[test]
    fn grid_spans_unit_interval() {
        let g = DeferralProfile::threshold_grid(51);
        assert_eq!(g.len(), 51);
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), 1.0);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn absorb_keeps_distribution_shape() {
        let mut p =
            DeferralProfile::from_confidences((0..1000).map(|i| i as f64 / 1000.0).collect());
        p.absorb(&[0.5; 100], 500);
        assert!(p.sample_count() <= 500);
        // Median should remain near 0.5.
        let mid = p.fraction_deferred(0.5);
        assert!((mid - 0.5).abs() < 0.1, "median drifted: {mid}");
    }

    #[test]
    fn nan_samples_are_dropped() {
        let p = DeferralProfile::from_confidences(vec![f64::NAN, 0.5, f64::NAN]);
        assert_eq!(p.sample_count(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn inverse_is_consistent(samples in proptest::collection::vec(0.0f64..1.0, 10..200),
                                 frac in 0.0f64..1.0) {
            let p = DeferralProfile::from_confidences(samples);
            let t = p.threshold_for_fraction(frac);
            prop_assert!(p.fraction_deferred(t) <= frac + 1e-12);
        }

        #[test]
        fn monotone_in_threshold(samples in proptest::collection::vec(0.0f64..1.0, 10..200)) {
            let p = DeferralProfile::from_confidences(samples);
            let mut last = 0.0;
            for i in 0..=20 {
                let f = p.fraction_deferred(i as f64 / 20.0);
                prop_assert!(f >= last - 1e-12);
                last = f;
            }
        }
    }
}
