//! The deferral profile `f(t)`.
//!
//! `f(t)` is the fraction of queries whose discriminator confidence falls
//! below threshold `t` — i.e. the fraction deferred to the heavyweight
//! model. The resource allocator's heavy-side throughput constraint is
//! `x₂·T₂(b₂) ≥ D·f(t)` (paper Eq. 3). The paper initializes `f` by offline
//! profiling and *keeps updating it online* (§4.2): [`DeferralProfile`]
//! implements the static curve, and [`OnlineDeferralEstimator`] is the
//! streaming refresher that re-estimates the curve from the confidences the
//! cascade actually observes, so the controller tracks difficulty drift.

use std::collections::VecDeque;

/// A deferral profile could not be built from the supplied samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// No finite confidence samples remained after NaN filtering — an
    /// online refresh window can legitimately be empty (e.g. no cascade
    /// traffic since the last control tick).
    NoSamples,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::NoSamples => {
                write!(
                    f,
                    "deferral profile needs at least one finite confidence sample"
                )
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// Empirical deferral profile built from confidence samples.
///
/// # Examples
///
/// ```
/// use diffserve_imagegen::DeferralProfile;
///
/// let profile = DeferralProfile::from_confidences(vec![0.1, 0.4, 0.6, 0.9])?;
/// assert_eq!(profile.fraction_deferred(0.0), 0.0);
/// assert_eq!(profile.fraction_deferred(0.5), 0.5);
/// assert_eq!(profile.fraction_deferred(1.1), 1.0);
/// # Ok::<(), diffserve_imagegen::ProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeferralProfile {
    /// Confidence samples, ascending.
    sorted: Vec<f64>,
}

impl DeferralProfile {
    /// Builds a profile from confidence samples (NaNs discarded).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::NoSamples`] if no finite samples remain — an
    /// online refresh window can legitimately be empty, so callers decide
    /// whether to fall back to an earlier profile or fail loudly.
    pub fn from_confidences(mut confidences: Vec<f64>) -> Result<Self, ProfileError> {
        confidences.retain(|c| c.is_finite());
        if confidences.is_empty() {
            return Err(ProfileError::NoSamples);
        }
        confidences.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        Ok(DeferralProfile {
            sorted: confidences,
        })
    }

    /// Number of samples backing the profile.
    pub fn sample_count(&self) -> usize {
        self.sorted.len()
    }

    /// Fraction of queries deferred at threshold `t`: `P(confidence < t)`.
    ///
    /// Monotone non-decreasing in `t`; 0 at `t ≤ min`, 1 at `t > max`.
    pub fn fraction_deferred(&self, t: f64) -> f64 {
        let idx = self.sorted.partition_point(|&c| c < t);
        idx as f64 / self.sorted.len() as f64
    }

    /// Mean absolute gap between two profiles' deferral fractions over a
    /// threshold grid — the live estimated-vs-offline `f(t)` distance
    /// surfaced in session snapshots and the deferral-estimation-error
    /// series.
    ///
    /// # Examples
    ///
    /// ```
    /// use diffserve_imagegen::DeferralProfile;
    ///
    /// let a = DeferralProfile::from_confidences(vec![0.2, 0.4, 0.6, 0.8])?;
    /// let b = a.clone();
    /// assert_eq!(a.gap(&b, &[0.0, 0.25, 0.5, 0.75, 1.0]), 0.0);
    /// # Ok::<(), diffserve_imagegen::ProfileError>(())
    /// ```
    pub fn gap(&self, other: &DeferralProfile, thresholds: &[f64]) -> f64 {
        if thresholds.is_empty() {
            return 0.0;
        }
        let total: f64 = thresholds
            .iter()
            .map(|&t| (self.fraction_deferred(t) - other.fraction_deferred(t)).abs())
            .sum();
        total / thresholds.len() as f64
    }

    /// Largest threshold whose deferral fraction does not exceed
    /// `max_fraction` — the inverse used when capacity bounds the heavy
    /// side.
    ///
    /// # Panics
    ///
    /// Panics if `max_fraction` is outside `[0, 1]`.
    pub fn threshold_for_fraction(&self, max_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&max_fraction),
            "fraction must lie in [0, 1], got {max_fraction}"
        );
        let n = self.sorted.len();
        let allowed = (max_fraction * n as f64).floor() as usize;
        if allowed >= n {
            return 1.0;
        }
        // Deferring `allowed` queries means the threshold sits at the
        // `allowed`-th order statistic (everything strictly below defers).
        self.sorted[allowed]
    }

    /// Evenly spaced candidate thresholds (inclusive of 0 and 1) for the
    /// MILP's threshold discretization.
    pub fn threshold_grid(steps: usize) -> Vec<f64> {
        assert!(steps >= 2, "grid needs at least two points");
        (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect()
    }

    /// Merges fresh runtime samples into the profile, keeping at most
    /// `cap` most-recent-biased samples (reservoir-free decimation).
    pub fn absorb(&mut self, fresh: &[f64], cap: usize) {
        for &c in fresh {
            if c.is_finite() {
                self.sorted.push(c);
            }
        }
        self.sorted
            .sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        if self.sorted.len() > cap && cap > 0 {
            // Decimate uniformly to preserve the distribution shape.
            let stride = self.sorted.len() as f64 / cap as f64;
            let decimated: Vec<f64> = (0..cap)
                .map(|i| self.sorted[(i as f64 * stride) as usize])
                .collect();
            self.sorted = decimated;
        }
    }
}

/// Streaming estimator of the deferral profile — the paper's online `f(t)`
/// refresh (§4.2, Eq. 3).
///
/// The cascade feeds every discriminator confidence it observes into
/// [`observe`](OnlineDeferralEstimator::observe); the estimator keeps a
/// sliding window of the most recent `window` samples (older samples age
/// out, which is what lets the estimate track difficulty drift) and
/// [`refresh`](OnlineDeferralEstimator::refresh) rebuilds a
/// [`DeferralProfile`] through the same `from_confidences` path the offline
/// profiler uses. Until `min_samples` observations have accumulated the
/// estimator reports no profile and callers fall back to the offline curve.
///
/// Deterministic: the window is a FIFO over the observation stream, so the
/// same stream always yields the same profile (the simulator relies on
/// this for bit-reproducible runs).
///
/// # Examples
///
/// ```
/// use diffserve_imagegen::{DeferralProfile, OnlineDeferralEstimator};
///
/// let mut est = OnlineDeferralEstimator::new(128, 16);
/// assert!(est.profile().is_none()); // cold start: offline profile rules
/// for i in 0..64 {
///     est.observe(i as f64 / 64.0);
/// }
/// est.refresh();
/// let p = est.profile().expect("enough samples");
/// assert!((p.fraction_deferred(0.5) - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineDeferralEstimator {
    window: VecDeque<f64>,
    cap: usize,
    min_samples: usize,
    profile: Option<DeferralProfile>,
}

impl OnlineDeferralEstimator {
    /// Creates an estimator keeping at most `window` samples and requiring
    /// `min_samples` before it reports a profile.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `min_samples` exceeds `window`.
    pub fn new(window: usize, min_samples: usize) -> Self {
        assert!(window > 0, "online profile window must be positive");
        assert!(
            min_samples <= window,
            "min_samples {min_samples} cannot exceed window {window}"
        );
        OnlineDeferralEstimator {
            window: VecDeque::with_capacity(window.min(4096)),
            cap: window,
            min_samples: min_samples.max(1),
            profile: None,
        }
    }

    /// Feeds one observed discriminator confidence (NaN/∞ discarded).
    /// Oldest samples age out beyond the window capacity.
    pub fn observe(&mut self, confidence: f64) {
        if !confidence.is_finite() {
            return;
        }
        if self.window.len() == self.cap {
            self.window.pop_front();
        }
        self.window.push_back(confidence);
    }

    /// Feeds a batch of observations.
    pub fn observe_all(&mut self, confidences: &[f64]) {
        for &c in confidences {
            self.observe(c);
        }
    }

    /// Samples currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Whether enough samples have accumulated for the estimate to be
    /// trusted over the offline profile.
    pub fn warmed_up(&self) -> bool {
        self.window.len() >= self.min_samples
    }

    /// Rebuilds the estimated profile from the current window (a no-op
    /// while cold). Returns whether a fresh profile is now available.
    pub fn refresh(&mut self) -> bool {
        if !self.warmed_up() {
            return false;
        }
        let samples: Vec<f64> = self.window.iter().copied().collect();
        match DeferralProfile::from_confidences(samples) {
            Ok(p) => {
                self.profile = Some(p);
                true
            }
            // Unreachable in practice (observe filters non-finite values),
            // but an empty window must never tear down an earlier estimate.
            Err(ProfileError::NoSamples) => false,
        }
    }

    /// The latest refreshed profile, if the estimator has warmed up.
    pub fn profile(&self) -> Option<&DeferralProfile> {
        self.profile.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn profile(samples: Vec<f64>) -> DeferralProfile {
        DeferralProfile::from_confidences(samples).expect("test samples are finite")
    }

    #[test]
    fn fraction_is_monotone_and_bounded() {
        let p = profile(vec![0.2, 0.5, 0.8]);
        assert_eq!(p.fraction_deferred(0.0), 0.0);
        assert!((p.fraction_deferred(0.3) - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.fraction_deferred(0.6) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.fraction_deferred(2.0), 1.0);
    }

    #[test]
    fn empty_or_all_nan_input_is_an_error_not_a_panic() {
        assert_eq!(
            DeferralProfile::from_confidences(vec![]),
            Err(ProfileError::NoSamples)
        );
        assert_eq!(
            DeferralProfile::from_confidences(vec![f64::NAN, f64::INFINITY]),
            Err(ProfileError::NoSamples)
        );
        assert!(format!("{}", ProfileError::NoSamples).contains("at least one"));
    }

    #[test]
    fn threshold_inverse_respects_capacity() {
        let p = profile((0..100).map(|i| i as f64 / 100.0).collect());
        // Allow at most 30% deferral.
        let t = p.threshold_for_fraction(0.30);
        assert!(p.fraction_deferred(t) <= 0.30 + 1e-12);
        // And the next-larger threshold would exceed it.
        assert!(p.fraction_deferred(t + 0.011) > 0.30);
    }

    #[test]
    fn full_capacity_allows_threshold_one() {
        let p = profile(vec![0.1, 0.9]);
        assert_eq!(p.threshold_for_fraction(1.0), 1.0);
    }

    #[test]
    fn zero_capacity_blocks_all_deferral() {
        let p = profile(vec![0.3, 0.6, 0.9]);
        let t = p.threshold_for_fraction(0.0);
        assert_eq!(p.fraction_deferred(t), 0.0);
    }

    #[test]
    fn grid_spans_unit_interval() {
        let g = DeferralProfile::threshold_grid(51);
        assert_eq!(g.len(), 51);
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), 1.0);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn absorb_keeps_distribution_shape() {
        let mut p = profile((0..1000).map(|i| i as f64 / 1000.0).collect());
        p.absorb(&[0.5; 100], 500);
        assert!(p.sample_count() <= 500);
        // Median should remain near 0.5.
        let mid = p.fraction_deferred(0.5);
        assert!((mid - 0.5).abs() < 0.1, "median drifted: {mid}");
    }

    #[test]
    fn nan_samples_are_dropped() {
        let p = profile(vec![f64::NAN, 0.5, f64::NAN]);
        assert_eq!(p.sample_count(), 1);
    }

    #[test]
    fn gap_measures_distribution_shift() {
        let low = profile((0..100).map(|i| i as f64 / 100.0).collect());
        let shifted = profile((0..100).map(|i| (i as f64 / 100.0) * 0.5).collect());
        let grid = DeferralProfile::threshold_grid(21);
        assert_eq!(low.gap(&low.clone(), &grid), 0.0);
        assert!(low.gap(&shifted, &grid) > 0.1);
        // Symmetric.
        assert_eq!(low.gap(&shifted, &grid), shifted.gap(&low, &grid));
        assert_eq!(low.gap(&shifted, &[]), 0.0);
    }

    #[test]
    fn online_estimator_is_cold_until_min_samples() {
        let mut est = OnlineDeferralEstimator::new(64, 8);
        for i in 0..7 {
            est.observe(i as f64 / 7.0);
        }
        assert!(!est.warmed_up());
        assert!(!est.refresh());
        assert!(est.profile().is_none());
        est.observe(0.9);
        assert!(est.warmed_up());
        assert!(est.refresh());
        assert_eq!(est.profile().unwrap().sample_count(), 8);
    }

    #[test]
    fn online_estimator_window_ages_out_old_samples() {
        let mut est = OnlineDeferralEstimator::new(50, 10);
        // Phase 1: easy prompts, high confidences.
        for _ in 0..50 {
            est.observe(0.9);
        }
        est.refresh();
        assert_eq!(est.profile().unwrap().fraction_deferred(0.5), 0.0);
        // Phase 2: the difficulty shifts; confidences collapse.
        for _ in 0..50 {
            est.observe(0.1);
        }
        est.refresh();
        // The window has fully turned over: everything now defers at 0.5.
        assert_eq!(est.profile().unwrap().fraction_deferred(0.5), 1.0);
        assert_eq!(est.window_len(), 50);
    }

    #[test]
    fn online_estimator_ignores_non_finite_observations() {
        let mut est = OnlineDeferralEstimator::new(16, 2);
        est.observe_all(&[f64::NAN, 0.4, f64::INFINITY, 0.6]);
        assert_eq!(est.window_len(), 2);
        assert!(est.refresh());
        assert_eq!(est.profile().unwrap().sample_count(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot exceed window")]
    fn online_estimator_rejects_min_above_window() {
        let _ = OnlineDeferralEstimator::new(8, 9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn inverse_is_consistent(samples in proptest::collection::vec(0.0f64..1.0, 10..200),
                                 frac in 0.0f64..1.0) {
            let p = DeferralProfile::from_confidences(samples).expect("non-empty");
            let t = p.threshold_for_fraction(frac);
            prop_assert!(p.fraction_deferred(t) <= frac + 1e-12);
        }

        #[test]
        fn monotone_in_threshold(samples in proptest::collection::vec(0.0f64..1.0, 10..200)) {
            let p = DeferralProfile::from_confidences(samples).expect("non-empty");
            let mut last = 0.0;
            for i in 0..=20 {
                let f = p.fraction_deferred(i as f64 / 20.0);
                prop_assert!(f >= last - 1e-12);
                last = f;
            }
        }

        /// Under a stationary confidence stream the online estimate
        /// converges to the offline profile built from the same
        /// distribution (the satellite convergence property).
        #[test]
        fn online_estimator_converges_under_stationary_streams(
            samples in proptest::collection::vec(0.0f64..1.0, 64..256),
        ) {
            let offline = DeferralProfile::from_confidences(samples.clone())
                .expect("non-empty");
            let mut est = OnlineDeferralEstimator::new(samples.len(), 32);
            est.observe_all(&samples);
            est.refresh();
            let online = est.profile().expect("warmed up");
            // Identical sample set ⇒ identical empirical CDF.
            let grid = DeferralProfile::threshold_grid(21);
            prop_assert!(offline.gap(online, &grid) < 1e-12);
        }
    }
}
