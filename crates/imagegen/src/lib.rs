//! # diffserve-imagegen
//!
//! The synthetic diffusion-model substrate for the DiffServe reproduction.
//!
//! The paper serves real Stable-Diffusion variants on A100s; this workspace
//! has neither the weights nor the GPUs, so this crate provides the closest
//! synthetic equivalent that exercises the same code paths (see DESIGN.md §2
//! for the substitution argument):
//!
//! * [`prompt`] — synthetic MS-COCO / DiffusionDB prompt datasets with latent
//!   per-prompt *difficulty* and *style bias*.
//! * [`features`] — the 16-dimensional feature space in which "images" live;
//!   real images are standard Gaussians, generated images carry a
//!   quality-dependent artifact displacement plus model-specific dispersion.
//! * [`model`] / [`zoo`] — the paper's model variants (SD-Turbo, SDv1.5,
//!   SDXS, SDXL-Lightning, SDXL, …) with the paper's measured latencies and
//!   calibrated quality profiles.
//! * [`discriminator`] — the real-vs-fake classifier (trained from scratch
//!   with `diffserve-nn`) whose softmax confidence gates the cascade, with
//!   the Fig. 7 architecture ablations.
//! * [`scorers`] — simulated PickScore / CLIPScore with the failure modes
//!   that make them unsuitable for routing (Fig. 1a).
//! * [`deferral`] — the empirical deferral profile `f(t)` used by the
//!   resource allocator.
//! * [`cascade`] — offline cascade evaluation (Figs. 1a, 1b, 7).
//!
//! # Examples
//!
//! ```
//! use diffserve_imagegen::prelude::*;
//!
//! let spec = FeatureSpec::default();
//! let cascade = cascade1(spec);
//! let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 400, 1, spec);
//! let img = cascade.light.generate(&dataset.prompts()[0]);
//! assert_eq!(img.features.len(), diffserve_imagegen::features::DIM);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cascade;
pub mod deferral;
pub mod discriminator;
pub mod features;
pub mod ladder;
pub mod model;
pub mod pipeline;
pub mod predictive;
pub mod prompt;
pub mod scorers;
pub mod stage;
pub mod zoo;

pub use cascade::{
    easy_query_fraction, evaluate_cascade, evaluate_single_model, quality_differences, CascadeEval,
    RoutingRule,
};
pub use deferral::{DeferralProfile, OnlineDeferralEstimator, ProfileError};
pub use discriminator::{DiscArch, Discriminator, DiscriminatorConfig, RealClass};
pub use features::FeatureSpec;
pub use ladder::{ladder3, ladder4, LadderError, TierLadder};
pub use model::{DiffusionModel, GeneratedImage, LatencyProfile, QualityProfile};
pub use pipeline::{Pipeline, PipelineEval};
pub use predictive::{
    evaluate_predictive, text_embedding, OnlinePredictiveRouter, OnlineRouterConfig,
    PredictiveConfig, PredictiveEval, PredictiveRouter,
};
pub use prompt::{DatasetKind, Prompt, PromptDataset};
pub use scorers::{ClipScorer, PickScorer};
pub use stage::{
    resume_savings, reused_steps, StageLatencyBreakdown, StageState, DECODE_FRAC, DENOISE_FRAC,
    ENCODE_FRAC,
};
pub use zoo::{
    cascade1, cascade2, cascade3, fig1a_variants, sd_turbo, sd_v15, sd_v15_dpms, sdxl,
    sdxl_lightning, sdxl_turbo, sdxs, tiny_sd_dpms, CascadeSpec,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cascade::{
        easy_query_fraction, evaluate_cascade, evaluate_single_model, CascadeEval, RoutingRule,
    };
    pub use crate::deferral::{DeferralProfile, OnlineDeferralEstimator, ProfileError};
    pub use crate::discriminator::{DiscArch, Discriminator, DiscriminatorConfig, RealClass};
    pub use crate::features::FeatureSpec;
    pub use crate::ladder::{ladder3, ladder4, TierLadder};
    pub use crate::model::{DiffusionModel, GeneratedImage, LatencyProfile, QualityProfile};
    pub use crate::prompt::{DatasetKind, Prompt, PromptDataset};
    pub use crate::scorers::{ClipScorer, PickScorer};
    pub use crate::stage::{resume_savings, reused_steps, StageLatencyBreakdown, StageState};
    pub use crate::zoo::{cascade1, cascade2, cascade3, fig1a_variants, CascadeSpec};
}
