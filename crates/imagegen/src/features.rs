//! The synthetic image-feature space.
//!
//! The serving system never inspects pixels: everything downstream of a
//! diffusion model (discriminator confidence, FID) consumes *feature
//! vectors*. This module defines the geometry of that space and how real
//! images populate it.
//!
//! Layout of the `DIM = 16` feature space:
//!
//! * **dim 0 — artifact axis**: generated images are displaced along this
//!   axis proportionally to `(1 − quality)`. This is the signal the
//!   discriminator learns; high-quality generations sit where real images
//!   sit.
//! * **dims 1–4 — diversity axes**: lightweight models are *over*-dispersed
//!   here (noisy, varied outputs) and heavyweight models *under*-dispersed
//!   (polished but less diverse than reality). This reproduces the paper's
//!   observation (§2.2) that mixing some lightweight outputs into the
//!   response set can *lower* FID below the heavy-only value: the mixture
//!   covariance interpolates toward the real one.
//! * **dims 5–15 — shared generator axes**: all diffusion models are less
//!   diverse than real imagery here, independent of query difficulty. This
//!   floor keeps pure-model FIDs in the paper's numeric range.
//!
//! All features are multiplied by [`FeatureSpec::feature_scale`], a pure
//! unit calibration that places FID values in the paper's 16–26 band
//! without changing any ordering.

use diffserve_linalg::Mat;
use diffserve_simkit::rng::{seeded_rng, Normal, Sampler};

/// Dimensionality of the synthetic feature space.
pub const DIM: usize = 16;

/// Index of the artifact (quality-signal) axis.
pub const ARTIFACT_AXIS: usize = 0;

/// Range of the diversity axes (inclusive start, exclusive end).
pub const DIVERSITY_AXES: std::ops::Range<usize> = 1..5;

/// Range of the shared generator axes.
pub const SHARED_AXES: std::ops::Range<usize> = 5..16;

/// Geometry of the feature space shared by every model and dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureSpec {
    /// Displacement along the artifact axis per unit of `(1 − quality)`.
    pub artifact_gain: f64,
    /// Noise std along the artifact axis (same for real and generated).
    pub artifact_noise: f64,
    /// Std of every generated image on the shared axes (real images have 1).
    pub shared_sigma: f64,
    /// Global feature scale calibrating FID magnitudes to the paper's range.
    pub feature_scale: f64,
    /// Mean offset (in unscaled units, distributed over the shared axes) of
    /// the FID *reference* set relative to the distribution the
    /// discriminator trains on. Real FID pipelines have exactly such a
    /// floor — the Inception feature domain never matches the generator's
    /// training slice — and it shifts every model's FID uniformly, which is
    /// what compresses the light/heavy FID ratio into the paper's 16–26
    /// band. The discriminator never sees reference features, so this gap
    /// cannot leak into routing decisions.
    pub eval_gap: f64,
}

impl Default for FeatureSpec {
    fn default() -> Self {
        FeatureSpec {
            artifact_gain: 3.0,
            artifact_noise: 0.5,
            shared_sigma: 0.8,
            feature_scale: 2.2,
            eval_gap: 1.72,
        }
    }
}

impl FeatureSpec {
    /// Samples `n` real-image feature vectors, deterministically from
    /// `seed`: `N(0, artifact_noise²)` on the artifact axis (real images
    /// carry no artifacts, and the spread matches the generators' so the
    /// axis variance alone is not a realness cue) and standard normal on
    /// every other axis, all scaled by `feature_scale`.
    ///
    /// These are the features the **discriminator trains on**.
    pub fn real_features(&self, n: usize, seed: u64) -> Mat {
        self.real_features_with_offset(n, seed, 0.0)
    }

    /// Samples `n` reference features for **FID evaluation**: the same
    /// distribution as [`FeatureSpec::real_features`] but mean-shifted by
    /// [`FeatureSpec::eval_gap`] spread across the shared axes (see the
    /// field documentation for why).
    pub fn reference_features(&self, n: usize, seed: u64) -> Mat {
        let per_axis = self.eval_gap / (SHARED_AXES.len() as f64).sqrt();
        self.real_features_with_offset(n, seed, per_axis)
    }

    fn real_features_with_offset(&self, n: usize, seed: u64, shared_offset: f64) -> Mat {
        let mut rng = seeded_rng(seed);
        let normal = Normal::standard();
        Mat::from_fn(n, DIM, |_, j| {
            let sigma = if j == ARTIFACT_AXIS {
                self.artifact_noise
            } else {
                1.0
            };
            let mu = if SHARED_AXES.contains(&j) {
                shared_offset
            } else {
                0.0
            };
            (mu + normal.draw(&mut rng) * sigma) * self.feature_scale
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_partition_the_space() {
        assert_eq!(ARTIFACT_AXIS, 0);
        assert_eq!(DIVERSITY_AXES.end, SHARED_AXES.start);
        assert_eq!(SHARED_AXES.end, DIM);
    }

    #[test]
    fn real_features_are_standard_normal_scaled() {
        let spec = FeatureSpec::default();
        let m = spec.real_features(4000, 7);
        assert_eq!(m.rows(), 4000);
        assert_eq!(m.cols(), DIM);
        let means = m.column_means();
        for &mu in &means {
            assert!(mu.abs() < 0.15 * spec.feature_scale, "mean {mu}");
        }
        let cov = m.covariance();
        for i in 0..DIM {
            let var = cov[(i, i)];
            let sigma = if i == ARTIFACT_AXIS {
                spec.artifact_noise
            } else {
                1.0
            };
            let expected = (spec.feature_scale * sigma).powi(2);
            assert!(
                (var - expected).abs() < 0.15 * expected,
                "var[{i}]={var}, expected≈{expected}"
            );
        }
    }

    #[test]
    fn real_features_deterministic_by_seed() {
        let spec = FeatureSpec::default();
        let a = spec.real_features(10, 1);
        let b = spec.real_features(10, 1);
        assert_eq!(a, b);
        let c = spec.real_features(10, 2);
        assert!(a.max_abs_diff(&c) > 1e-9);
    }
}
