//! Prompts and prompt datasets.
//!
//! The paper evaluates on the first 5K text–image pairs of MS-COCO 2017
//! (Cascades 1–2, 512×512) and DiffusionDB (Cascade 3, 1024×1024), with the
//! prompts as queries and the images as the FID reference (§4.1). Neither
//! dataset ships with this reproduction, so [`PromptDataset`] synthesizes
//! stand-ins: each prompt carries a latent *difficulty* (how hard it is for
//! a lightweight model to render well) and a *style bias* (a prompt-level
//! score offset that makes PickScore-style metrics incomparable across
//! prompts, as the paper notes in §2.1).

use diffserve_linalg::Mat;
use diffserve_simkit::rng::{derive_seed, seeded_rng, Beta, Normal, Sampler};

use crate::features::FeatureSpec;

/// One text prompt (query payload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prompt {
    /// Stable identifier within its dataset.
    pub id: u64,
    /// Latent difficulty in `[0, 1]`: 0 = trivially easy, 1 = hardest.
    pub difficulty: f64,
    /// Prompt-level score bias shared by all models (drives the PickScore /
    /// CLIPScore incomparability across prompts).
    pub style_bias: f64,
    /// Seed for per-prompt generation noise.
    pub seed: u64,
}

impl Prompt {
    /// This prompt with its latent difficulty offset by `delta`, clamped to
    /// `[0, 1]`. Scenario difficulty shifts (a harder prompt mix arriving at
    /// runtime) are modeled by offsetting every served prompt; generation
    /// noise and identity (`id`, `seed`) are unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use diffserve_imagegen::Prompt;
    ///
    /// let p = Prompt { id: 0, difficulty: 0.9, style_bias: 0.0, seed: 1 };
    /// assert_eq!(p.harder(0.3).difficulty, 1.0); // clamped
    /// assert!((p.harder(-0.5).difficulty - 0.4).abs() < 1e-12);
    /// assert_eq!(p.harder(0.0), p);
    /// ```
    pub fn harder(mut self, delta: f64) -> Prompt {
        self.difficulty = (self.difficulty + delta).clamp(0.0, 1.0);
        self
    }
}

/// Which reference dataset a synthetic prompt set mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// MS-COCO 2017 captions: mostly concrete, easy prompts.
    MsCoco,
    /// DiffusionDB prompts: artistic, longer-tailed difficulty.
    DiffusionDb,
}

impl DatasetKind {
    /// Beta-distribution parameters for the difficulty distribution.
    fn difficulty_params(self) -> (f64, f64) {
        match self {
            // Mean ≈ 0.33 with a light tail of hard prompts.
            DatasetKind::MsCoco => (2.0, 4.0),
            // Harder on average (mean ≈ 0.45).
            DatasetKind::DiffusionDb => (2.5, 3.0),
        }
    }

    /// Human-readable dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::MsCoco => "MS-COCO 2017",
            DatasetKind::DiffusionDb => "DiffusionDB",
        }
    }
}

/// A synthetic prompt dataset plus its real-image FID reference features.
#[derive(Debug, Clone)]
pub struct PromptDataset {
    kind: DatasetKind,
    prompts: Vec<Prompt>,
    real_features: Mat,
    training_real_features: Mat,
    spec: FeatureSpec,
}

impl PromptDataset {
    /// Synthesizes a dataset of `n` prompts with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the FID reference needs at least two samples).
    pub fn synthesize(kind: DatasetKind, n: usize, seed: u64, spec: FeatureSpec) -> Self {
        assert!(n >= 2, "dataset needs at least 2 prompts, got {n}");
        let (alpha, beta) = kind.difficulty_params();
        let difficulty = Beta::new(alpha, beta).expect("valid beta params");
        let bias = Normal::new(0.0, 1.0).expect("valid normal");
        let mut rng = seeded_rng(derive_seed(seed, 0x9001));
        let prompts = (0..n as u64)
            .map(|id| Prompt {
                id,
                difficulty: difficulty.draw(&mut rng),
                style_bias: bias.draw(&mut rng),
                seed: derive_seed(seed, 0xF00D ^ id),
            })
            .collect();
        let real_features = spec.reference_features(n, derive_seed(seed, 0xBEEF));
        let training_real_features = spec.real_features(n, derive_seed(seed, 0x7EA1));
        PromptDataset {
            kind,
            prompts,
            real_features,
            training_real_features,
            spec,
        }
    }

    /// The paper's default: first 5K prompts of MS-COCO.
    pub fn coco_5k(seed: u64) -> Self {
        Self::synthesize(DatasetKind::MsCoco, 5000, seed, FeatureSpec::default())
    }

    /// The paper's Cascade-3 dataset: 5K DiffusionDB prompts.
    pub fn diffusiondb_5k(seed: u64) -> Self {
        Self::synthesize(DatasetKind::DiffusionDb, 5000, seed, FeatureSpec::default())
    }

    /// Which dataset family this mimics.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// All prompts.
    pub fn prompts(&self) -> &[Prompt] {
        &self.prompts
    }

    /// Number of prompts.
    pub fn len(&self) -> usize {
        self.prompts.len()
    }

    /// Returns `true` if the dataset is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prompts.is_empty()
    }

    /// Prompt by index (wrapping), convenient for replaying query streams
    /// longer than the dataset.
    pub fn prompt_cyclic(&self, i: u64) -> &Prompt {
        &self.prompts[(i % self.prompts.len() as u64) as usize]
    }

    /// Real-image features used as the FID reference (carries the
    /// evaluation-domain offset; see [`FeatureSpec::eval_gap`]).
    pub fn real_features(&self) -> &Mat {
        &self.real_features
    }

    /// Real-image features for discriminator training (no evaluation
    /// offset — the discriminator must never see the FID reference domain).
    pub fn training_real_features(&self) -> &Mat {
        &self.training_real_features
    }

    /// The shared feature-space geometry.
    pub fn spec(&self) -> &FeatureSpec {
        &self.spec
    }

    /// Mean prompt difficulty.
    pub fn mean_difficulty(&self) -> f64 {
        self.prompts.iter().map(|p| p.difficulty).sum::<f64>() / self.prompts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coco_difficulty_distribution() {
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 3000, 1, FeatureSpec::default());
        let mean = d.mean_difficulty();
        assert!((mean - 1.0 / 3.0).abs() < 0.03, "mean difficulty {mean}");
        assert!(d
            .prompts()
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.difficulty)));
    }

    #[test]
    fn diffusiondb_is_harder_on_average() {
        let coco = PromptDataset::synthesize(DatasetKind::MsCoco, 3000, 2, FeatureSpec::default());
        let ddb =
            PromptDataset::synthesize(DatasetKind::DiffusionDb, 3000, 2, FeatureSpec::default());
        assert!(ddb.mean_difficulty() > coco.mean_difficulty() + 0.05);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = PromptDataset::synthesize(DatasetKind::MsCoco, 50, 7, FeatureSpec::default());
        let b = PromptDataset::synthesize(DatasetKind::MsCoco, 50, 7, FeatureSpec::default());
        assert_eq!(a.prompts(), b.prompts());
        let c = PromptDataset::synthesize(DatasetKind::MsCoco, 50, 8, FeatureSpec::default());
        assert_ne!(a.prompts()[0].difficulty, c.prompts()[0].difficulty);
    }

    #[test]
    fn prompt_ids_and_cyclic_access() {
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 10, 3, FeatureSpec::default());
        assert_eq!(d.len(), 10);
        assert_eq!(d.prompts()[4].id, 4);
        assert_eq!(d.prompt_cyclic(14).id, 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn reference_features_match_prompt_count() {
        let d = PromptDataset::synthesize(DatasetKind::DiffusionDb, 123, 4, FeatureSpec::default());
        assert_eq!(d.real_features().rows(), 123);
    }

    #[test]
    fn style_bias_varies_across_prompts() {
        let d = PromptDataset::synthesize(DatasetKind::MsCoco, 200, 5, FeatureSpec::default());
        let min = d
            .prompts()
            .iter()
            .map(|p| p.style_bias)
            .fold(f64::INFINITY, f64::min);
        let max = d
            .prompts()
            .iter()
            .map(|p| p.style_bias)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 2.0, "style bias spread too small: {min}..{max}");
    }
}
