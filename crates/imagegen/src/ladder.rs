//! N-tier quality ladders (HADIS-style hybrid cascades).
//!
//! The paper's cascade is a two-model special case: a light model whose
//! output is escalated to a heavy model when the discriminator confidence
//! falls below a threshold. A [`TierLadder`] generalizes this to an ordered
//! list of N model tiers, cheapest first: a query served at tier `k < N-1`
//! is scored by the boundary-`k` discriminator and escalated to tier `k+1`
//! when its confidence falls below the boundary-`k` threshold. Each of the
//! N-1 boundaries carries its own threshold and its own empirical deferral
//! profile `f_k(t)`.
//!
//! Invariants (checked by [`TierLadder::validate`]):
//!
//! * at least two tiers;
//! * batch-1 execution latency is nondecreasing along the ladder (deeper
//!   tiers are slower);
//! * denoising step counts are nondecreasing along the ladder, so
//!   stage-resume credit from tier `k` latents is meaningful at tier `k+1`.
//!
//! A two-tier ladder is exactly the legacy cascade: the runtime and both
//! serving engines treat `TierLadder::from_cascade(spec)` bit-identically
//! to the un-laddered `spec`.

use diffserve_simkit::time::SimDuration;

use crate::features::FeatureSpec;
use crate::model::DiffusionModel;
use crate::prompt::DatasetKind;
use crate::zoo::{sd_turbo, sd_v15, sd_v15_dpms, sdxs, CascadeSpec};

/// An ordered quality ladder of N diffusion-model tiers, cheapest first.
#[derive(Debug, Clone)]
pub struct TierLadder {
    /// Artifact-style short name (`ladder3`, `ladder4`, …).
    pub name: &'static str,
    /// The model tiers, cheapest (entry tier) first.
    pub tiers: Vec<DiffusionModel>,
    /// Prompt dataset family used for this ladder's evaluation.
    pub dataset: DatasetKind,
    /// Latency SLO for this ladder.
    pub slo: SimDuration,
}

impl TierLadder {
    /// Wraps a legacy two-model cascade as a degenerate two-tier ladder.
    pub fn from_cascade(spec: &CascadeSpec) -> Self {
        TierLadder {
            name: spec.name,
            tiers: vec![spec.light.clone(), spec.heavy.clone()],
            dataset: spec.dataset,
            slo: spec.slo,
        }
    }

    /// Number of model tiers (N).
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Number of escalation boundaries (N-1), one threshold each.
    pub fn boundaries(&self) -> usize {
        self.tiers.len().saturating_sub(1)
    }

    /// Checks the ladder invariants listed in the module docs.
    pub fn validate(&self) -> Result<(), LadderError> {
        if self.tiers.len() < 2 {
            return Err(LadderError::TooFewTiers(self.tiers.len()));
        }
        for pair in self.tiers.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let (la, lb) = (
                a.latency().exec_latency(1).as_secs_f64(),
                b.latency().exec_latency(1).as_secs_f64(),
            );
            if lb < la {
                return Err(LadderError::LatencyNotMonotone {
                    cheap: a.name().to_string(),
                    deep: b.name().to_string(),
                });
            }
            if b.steps() < a.steps() {
                return Err(LadderError::StepsNotMonotone {
                    cheap: a.name().to_string(),
                    deep: b.name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// The legacy two-model view: first tier as light, last tier as heavy.
    ///
    /// This is what backs the `CascadeSpec` embedded in a ladder-prepared
    /// runtime, so every pre-ladder code path keeps working.
    pub fn cascade_view(&self) -> CascadeSpec {
        CascadeSpec {
            name: self.name,
            light: self.tiers[0].clone(),
            heavy: self.tiers[self.tiers.len() - 1].clone(),
            dataset: self.dataset,
            slo: self.slo,
        }
    }
}

/// A ladder failed [`TierLadder::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LadderError {
    /// Fewer than two tiers.
    TooFewTiers(usize),
    /// A deeper tier has lower batch-1 latency than the tier before it.
    LatencyNotMonotone {
        /// The cheaper (earlier) tier.
        cheap: String,
        /// The deeper (later) tier.
        deep: String,
    },
    /// A deeper tier has fewer denoising steps than the tier before it.
    StepsNotMonotone {
        /// The cheaper (earlier) tier.
        cheap: String,
        /// The deeper (later) tier.
        deep: String,
    },
}

impl std::fmt::Display for LadderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LadderError::TooFewTiers(n) => {
                write!(f, "ladder needs at least 2 tiers, got {n}")
            }
            LadderError::LatencyNotMonotone { cheap, deep } => {
                write!(f, "tier {deep} is faster than the tier {cheap} before it")
            }
            LadderError::StepsNotMonotone { cheap, deep } => {
                write!(
                    f,
                    "tier {deep} has fewer steps than the tier {cheap} before it"
                )
            }
        }
    }
}

impl std::error::Error for LadderError {}

/// Ladder 3: SD-Turbo → SDv1.5-DPMS++ → SDv1.5 on MS-COCO, SLO 5 s.
///
/// Same entry and terminal models as `cascade1`, with the 20-step
/// DPM-Solver++ variant as a mid tier that absorbs most escalations at half
/// the terminal tier's GPU cost.
pub fn ladder3(spec: FeatureSpec) -> TierLadder {
    TierLadder {
        name: "ladder3",
        tiers: vec![sd_turbo(spec), sd_v15_dpms(spec), sd_v15(spec)],
        dataset: DatasetKind::MsCoco,
        slo: SimDuration::from_secs(5),
    }
}

/// Ladder 4: SDXS → SD-Turbo → SDv1.5-DPMS++ → SDv1.5 on MS-COCO, SLO 5 s.
pub fn ladder4(spec: FeatureSpec) -> TierLadder {
    TierLadder {
        name: "ladder4",
        tiers: vec![sdxs(spec), sd_turbo(spec), sd_v15_dpms(spec), sd_v15(spec)],
        dataset: DatasetKind::MsCoco,
        slo: SimDuration::from_secs(5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::cascade1;

    #[test]
    fn builtin_ladders_validate() {
        let spec = FeatureSpec::default();
        ladder3(spec).validate().expect("ladder3");
        ladder4(spec).validate().expect("ladder4");
        assert_eq!(ladder3(spec).boundaries(), 2);
        assert_eq!(ladder4(spec).num_tiers(), 4);
    }

    #[test]
    fn cascade_roundtrip_preserves_endpoints() {
        let spec = FeatureSpec::default();
        let cascade = cascade1(spec);
        let ladder = TierLadder::from_cascade(&cascade);
        ladder.validate().expect("degenerate ladder");
        let view = ladder.cascade_view();
        assert_eq!(view.name, cascade.name);
        assert_eq!(view.light.name(), cascade.light.name());
        assert_eq!(view.heavy.name(), cascade.heavy.name());
        assert_eq!(view.slo, cascade.slo);
    }

    #[test]
    fn rejects_descending_ladders() {
        let spec = FeatureSpec::default();
        let bad = TierLadder {
            name: "bad",
            tiers: vec![sd_v15(spec), sd_turbo(spec)],
            dataset: DatasetKind::MsCoco,
            slo: SimDuration::from_secs(5),
        };
        assert!(matches!(
            bad.validate(),
            Err(LadderError::LatencyNotMonotone { .. })
        ));
        let one = TierLadder {
            name: "one",
            tiers: vec![sd_turbo(spec)],
            dataset: DatasetKind::MsCoco,
            slo: SimDuration::from_secs(5),
        };
        assert_eq!(one.validate(), Err(LadderError::TooFewTiers(1)));
    }
}
