//! Predictive (pre-generation) routing — the paper's §5 open question.
//!
//! "An alternative approach is to use the query itself to make routing
//! decisions before executing any diffusion models. However, predicting
//! image generation quality solely from text inputs is challenging ... it
//! remains an open question whether a query-based routing strategy would
//! yield better performance."
//!
//! This module implements that alternative so the question can be measured:
//! a classifier is trained on (noisy) prompt embeddings to predict whether
//! the lightweight model will render the prompt well; queries predicted to
//! render badly skip the light stage entirely and go straight to the
//! heavyweight model. Compared to the post-hoc discriminator cascade, the
//! predictive router saves the light-stage latency on deferred queries but
//! routes on strictly less information (it never sees the actual image).

use diffserve_linalg::Mat;
use diffserve_metrics::fid_score;
use diffserve_nn::{Adam, Mlp, TrainConfig};
use diffserve_simkit::rng::{derive_seed, seeded_rng, Normal, Sampler};

use crate::model::DiffusionModel;
use crate::prompt::{Prompt, PromptDataset};

/// Dimensionality of the synthetic prompt (text) embedding.
pub const TEXT_DIM: usize = 8;

/// Deterministic synthetic text embedding of a prompt: two coordinates
/// carry noisy views of the prompt's difficulty and style, the rest is
/// prompt-specific structure no router can exploit. The noise level is the
/// knob that makes text-only quality prediction "challenging" (§5).
pub fn text_embedding(prompt: &Prompt, observation_noise: f64) -> Vec<f64> {
    let mut rng = seeded_rng(derive_seed(prompt.seed, 0x7E87));
    let normal = Normal::standard();
    let mut e = vec![0.0; TEXT_DIM];
    e[0] = prompt.difficulty + observation_noise * normal.draw(&mut rng);
    e[1] = prompt.style_bias + observation_noise * normal.draw(&mut rng);
    for v in e.iter_mut().skip(2) {
        *v = normal.draw(&mut rng);
    }
    e
}

/// Configuration for training a [`PredictiveRouter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictiveConfig {
    /// Std of the observation noise on the embedding's informative
    /// coordinates.
    pub observation_noise: f64,
    /// Number of training prompts.
    pub train_prompts: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            observation_noise: 0.35,
            train_prompts: 1000,
            epochs: 25,
            seed: 0x9817,
        }
    }
}

/// A text-only quality predictor routing queries before any generation.
#[derive(Debug, Clone)]
pub struct PredictiveRouter {
    classifier: Mlp,
    config: PredictiveConfig,
    /// Sorted training-set scores for calibration (same equalization scheme
    /// as the discriminator).
    calibration: Vec<f64>,
}

impl PredictiveRouter {
    /// Trains the router: label = "the light model renders this prompt at
    /// or above its median quality".
    ///
    /// # Panics
    ///
    /// Panics if the dataset is smaller than the training-prompt request.
    pub fn train(
        dataset: &PromptDataset,
        light: &DiffusionModel,
        config: PredictiveConfig,
    ) -> Self {
        assert!(
            config.train_prompts <= dataset.len(),
            "train_prompts exceeds dataset size"
        );
        let prompts = &dataset.prompts()[..config.train_prompts];
        let mut qualities: Vec<f64> = prompts.iter().map(|p| light.generate(p).quality).collect();
        let mut sorted = qualities.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite quality"));
        let median = sorted[sorted.len() / 2];

        let rows: Vec<Vec<f64>> = prompts
            .iter()
            .map(|p| text_embedding(p, config.observation_noise))
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Mat::from_rows(&refs);
        let labels: Vec<usize> = qualities
            .drain(..)
            .map(|q| usize::from(q >= median))
            .collect();

        let mut rng = seeded_rng(derive_seed(config.seed, 0x11A8));
        let mut classifier = Mlp::new(&[TEXT_DIM, 16, 2], &mut rng);
        let mut opt = Adam::new(0.01);
        classifier.fit(
            &x,
            &labels,
            &mut opt,
            &TrainConfig {
                epochs: config.epochs,
                batch_size: 64,
                shuffle: true,
            },
            &mut rng,
        );

        let mut router = PredictiveRouter {
            classifier,
            config,
            calibration: Vec::new(),
        };
        let mut raw: Vec<f64> = prompts.iter().map(|p| router.raw_score(p)).collect();
        raw.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        router.calibration = raw;
        router
    }

    fn raw_score(&self, prompt: &Prompt) -> f64 {
        let e = text_embedding(prompt, self.config.observation_noise);
        let x = Mat::from_rows(&[e.as_slice()]);
        self.classifier.predict_proba(&x)[(0, 1)]
    }

    /// Calibrated confidence in `[0, 1]` that the light model suffices for
    /// this prompt — comparable to the discriminator's threshold scale.
    pub fn confidence(&self, prompt: &Prompt) -> f64 {
        let raw = self.raw_score(prompt);
        let n = self.calibration.len();
        if n == 0 {
            return raw;
        }
        let idx = self.calibration.partition_point(|&v| v < raw);
        idx as f64 / n as f64
    }
}

/// Outcome of evaluating predictive routing over a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictiveEval {
    /// FID of the blended responses.
    pub fid: f64,
    /// Fraction routed directly to the heavy model.
    pub heavy_fraction: f64,
    /// Mean per-query latency (deferred queries pay only the heavy stage —
    /// the predictive router's structural advantage).
    pub mean_latency: f64,
}

/// Evaluates predictive routing at a confidence threshold: prompts whose
/// predicted light-suitability falls below `threshold` go straight to the
/// heavy model.
pub fn evaluate_predictive(
    dataset: &PromptDataset,
    light: &DiffusionModel,
    heavy: &DiffusionModel,
    router: &PredictiveRouter,
    threshold: f64,
) -> PredictiveEval {
    let light_lat = light.latency().exec_latency(1).as_secs_f64();
    let heavy_lat = heavy.latency().exec_latency(1).as_secs_f64();
    let mut features: Vec<Vec<f64>> = Vec::with_capacity(dataset.len());
    let mut heavies = 0usize;
    let mut latency = 0.0;
    for p in dataset.prompts() {
        if router.confidence(p) >= threshold {
            features.push(light.generate(p).features);
            latency += light_lat;
        } else {
            features.push(heavy.generate(p).features);
            latency += heavy_lat;
            heavies += 1;
        }
    }
    let refs: Vec<&[f64]> = features.iter().map(|f| f.as_slice()).collect();
    let fid = fid_score(&Mat::from_rows(&refs), dataset.real_features(), 1e-6)
        .expect("well-conditioned features");
    PredictiveEval {
        fid,
        heavy_fraction: heavies as f64 / dataset.len() as f64,
        mean_latency: latency / dataset.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::{evaluate_cascade, RoutingRule};
    use crate::discriminator::{Discriminator, DiscriminatorConfig};
    use crate::features::FeatureSpec;
    use crate::prompt::DatasetKind;
    use crate::zoo::{sd_turbo, sd_v15};
    use std::sync::OnceLock;

    struct Fx {
        dataset: PromptDataset,
        light: DiffusionModel,
        heavy: DiffusionModel,
        router: PredictiveRouter,
        disc: Discriminator,
    }

    fn fx() -> &'static Fx {
        static F: OnceLock<Fx> = OnceLock::new();
        F.get_or_init(|| {
            let spec = FeatureSpec::default();
            let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 1500, 61, spec);
            let light = sd_turbo(spec);
            let heavy = sd_v15(spec);
            let router = PredictiveRouter::train(
                &dataset,
                &light,
                PredictiveConfig {
                    train_prompts: 600,
                    epochs: 15,
                    ..Default::default()
                },
            );
            let disc = Discriminator::train(
                &dataset,
                &light,
                &heavy,
                DiscriminatorConfig {
                    train_prompts: 600,
                    epochs: 10,
                    ..Default::default()
                },
            );
            Fx {
                dataset,
                light,
                heavy,
                router,
                disc,
            }
        })
    }

    #[test]
    fn embedding_is_deterministic_and_informative() {
        let f = fx();
        let p = &f.dataset.prompts()[7];
        assert_eq!(text_embedding(p, 0.3), text_embedding(p, 0.3));
        // Zero-noise embedding carries difficulty exactly.
        assert!((text_embedding(p, 0.0)[0] - p.difficulty).abs() < 1e-12);
    }

    #[test]
    fn router_beats_random_routing() {
        let f = fx();
        let eval = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 0.5);
        let random = evaluate_cascade(
            &f.dataset,
            &f.light,
            &f.heavy,
            &RoutingRule::Random { seed: 3 },
            eval.heavy_fraction,
        );
        assert!(
            eval.fid < random.fid,
            "predictive routing {} should beat random {}",
            eval.fid,
            random.fid
        );
    }

    #[test]
    fn post_hoc_discriminator_beats_text_only_prediction_on_quality() {
        // The paper's hypothesis: the image-aware discriminator routes
        // better than any text-only predictor at matched deferral.
        let f = fx();
        let pred = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 0.5);
        let disc = evaluate_cascade(
            &f.dataset,
            &f.light,
            &f.heavy,
            &RoutingRule::Discriminator(&f.disc),
            pred.heavy_fraction,
        );
        assert!(
            disc.fid < pred.fid,
            "discriminator {} should beat predictive {}",
            disc.fid,
            pred.fid
        );
    }

    #[test]
    fn predictive_routing_is_cheaper_for_deferred_queries() {
        // Structural advantage: deferred queries skip the light stage, so
        // at the same deferral fraction the predictive router must be
        // cheaper than the cascade's structural cost (light + discriminator
        // on every query, heavy on the deferred share).
        let f = fx();
        let pred = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 0.5);
        let cascade_cost_at_same_fraction = f.light.latency().exec_latency(1).as_secs_f64()
            + f.disc.latency().as_secs_f64()
            + pred.heavy_fraction * f.heavy.latency().exec_latency(1).as_secs_f64();
        assert!(
            pred.mean_latency < cascade_cost_at_same_fraction,
            "predictive {} should be cheaper than the cascade's structural cost {}",
            pred.mean_latency,
            cascade_cost_at_same_fraction
        );
    }

    #[test]
    fn thresholds_span_all_light_to_all_heavy() {
        let f = fx();
        let all_light = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 0.0);
        assert_eq!(all_light.heavy_fraction, 0.0);
        let all_heavy = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 1.01);
        assert_eq!(all_heavy.heavy_fraction, 1.0);
    }
}
