//! Predictive (pre-generation) routing — the paper's §5 open question.
//!
//! "An alternative approach is to use the query itself to make routing
//! decisions before executing any diffusion models. However, predicting
//! image generation quality solely from text inputs is challenging ... it
//! remains an open question whether a query-based routing strategy would
//! yield better performance."
//!
//! This module implements that alternative so the question can be measured:
//! a classifier is trained on (noisy) prompt embeddings to predict whether
//! the lightweight model will render the prompt well; queries predicted to
//! render badly skip the light stage entirely and go straight to the
//! heavyweight model. Compared to the post-hoc discriminator cascade, the
//! predictive router saves the light-stage latency on deferred queries but
//! routes on strictly less information (it never sees the actual image).

use diffserve_linalg::Mat;
use diffserve_metrics::fid_score;
use diffserve_nn::{Adam, Mlp, TrainConfig};
use diffserve_simkit::rng::{derive_seed, seeded_rng, Normal, Sampler};

use crate::model::DiffusionModel;
use crate::prompt::{Prompt, PromptDataset};

/// Dimensionality of the synthetic prompt (text) embedding.
pub const TEXT_DIM: usize = 8;

/// Deterministic synthetic text embedding of a prompt: two coordinates
/// carry noisy views of the prompt's difficulty and style, the rest is
/// prompt-specific structure no router can exploit. The noise level is the
/// knob that makes text-only quality prediction "challenging" (§5).
pub fn text_embedding(prompt: &Prompt, observation_noise: f64) -> Vec<f64> {
    let mut rng = seeded_rng(derive_seed(prompt.seed, 0x7E87));
    let normal = Normal::standard();
    let mut e = vec![0.0; TEXT_DIM];
    e[0] = prompt.difficulty + observation_noise * normal.draw(&mut rng);
    e[1] = prompt.style_bias + observation_noise * normal.draw(&mut rng);
    for v in e.iter_mut().skip(2) {
        *v = normal.draw(&mut rng);
    }
    e
}

/// Configuration for training a [`PredictiveRouter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictiveConfig {
    /// Std of the observation noise on the embedding's informative
    /// coordinates.
    pub observation_noise: f64,
    /// Number of training prompts.
    pub train_prompts: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            observation_noise: 0.35,
            train_prompts: 1000,
            epochs: 25,
            seed: 0x9817,
        }
    }
}

/// A text-only quality predictor routing queries before any generation.
#[derive(Debug, Clone)]
pub struct PredictiveRouter {
    classifier: Mlp,
    config: PredictiveConfig,
    /// Sorted training-set scores for calibration (same equalization scheme
    /// as the discriminator).
    calibration: Vec<f64>,
}

impl PredictiveRouter {
    /// Trains the router: label = "the light model renders this prompt at
    /// or above its median quality".
    ///
    /// # Panics
    ///
    /// Panics if the dataset is smaller than the training-prompt request.
    pub fn train(
        dataset: &PromptDataset,
        light: &DiffusionModel,
        config: PredictiveConfig,
    ) -> Self {
        assert!(
            config.train_prompts <= dataset.len(),
            "train_prompts exceeds dataset size"
        );
        let prompts = &dataset.prompts()[..config.train_prompts];
        let mut qualities: Vec<f64> = prompts.iter().map(|p| light.generate(p).quality).collect();
        let mut sorted = qualities.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite quality"));
        let median = sorted[sorted.len() / 2];

        let rows: Vec<Vec<f64>> = prompts
            .iter()
            .map(|p| text_embedding(p, config.observation_noise))
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Mat::from_rows(&refs);
        let labels: Vec<usize> = qualities
            .drain(..)
            .map(|q| usize::from(q >= median))
            .collect();

        let mut rng = seeded_rng(derive_seed(config.seed, 0x11A8));
        let mut classifier = Mlp::new(&[TEXT_DIM, 16, 2], &mut rng);
        let mut opt = Adam::new(0.01);
        classifier.fit(
            &x,
            &labels,
            &mut opt,
            &TrainConfig {
                epochs: config.epochs,
                batch_size: 64,
                shuffle: true,
            },
            &mut rng,
        );

        let mut router = PredictiveRouter {
            classifier,
            config,
            calibration: Vec::new(),
        };
        let mut raw: Vec<f64> = prompts.iter().map(|p| router.raw_score(p)).collect();
        raw.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        router.calibration = raw;
        router
    }

    fn raw_score(&self, prompt: &Prompt) -> f64 {
        let e = text_embedding(prompt, self.config.observation_noise);
        let x = Mat::from_rows(&[e.as_slice()]);
        self.classifier.predict_proba(&x)[(0, 1)]
    }

    /// Calibrated confidence in `[0, 1]` that the light model suffices for
    /// this prompt — comparable to the discriminator's threshold scale.
    pub fn confidence(&self, prompt: &Prompt) -> f64 {
        let raw = self.raw_score(prompt);
        let n = self.calibration.len();
        if n == 0 {
            return raw;
        }
        let idx = self.calibration.partition_point(|&v| v < raw);
        idx as f64 / n as f64
    }
}

/// Knobs for the [`OnlinePredictiveRouter`] used by the serving engines in
/// ladder mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineRouterConfig {
    /// Std of the observation noise on the embedding's informative
    /// coordinates (same knob as [`PredictiveConfig::observation_noise`]).
    pub observation_noise: f64,
    /// SGD step size for the per-boundary logistic models.
    pub learning_rate: f64,
    /// Observations a boundary needs before its predictions are trusted;
    /// cold boundaries never skip a tier.
    pub min_observations: u64,
    /// Predicted escalation probability at or above which a query skips
    /// past the boundary's cheap tier.
    pub margin: f64,
}

impl Default for OnlineRouterConfig {
    fn default() -> Self {
        OnlineRouterConfig {
            observation_noise: 0.35,
            learning_rate: 0.05,
            min_observations: 64,
            margin: 0.6,
        }
    }
}

/// A pre-execution router for N-tier ladders, trained online from observed
/// deferral outcomes.
///
/// One logistic model per ladder boundary predicts, from the text embedding
/// alone, whether a query served at tier `k` would be escalated by the
/// boundary-`k` discriminator. Every discriminator verdict (kept or
/// escalated) is a labeled example, so the router needs no offline training
/// pass and tracks difficulty shifts. At admission, a query's entry tier is
/// the deepest tier it is predicted to escalate through: queries
/// predicted-hard at every boundary skip straight to the terminal tier and
/// never pay cheap-tier compute.
#[derive(Debug, Clone)]
pub struct OnlinePredictiveRouter {
    /// Per boundary: `TEXT_DIM` weights plus a trailing bias term.
    weights: Vec<Vec<f64>>,
    counts: Vec<u64>,
    config: OnlineRouterConfig,
}

impl OnlinePredictiveRouter {
    /// Creates a cold router for a ladder with `boundaries` = N-1
    /// escalation boundaries.
    pub fn new(boundaries: usize, config: OnlineRouterConfig) -> Self {
        OnlinePredictiveRouter {
            weights: vec![vec![0.0; TEXT_DIM + 1]; boundaries],
            counts: vec![0; boundaries],
            config,
        }
    }

    /// Number of boundaries this router predicts over.
    pub fn boundaries(&self) -> usize {
        self.weights.len()
    }

    /// Labeled outcomes observed at `boundary` so far.
    pub fn observations(&self, boundary: usize) -> u64 {
        self.counts[boundary]
    }

    fn logit(&self, boundary: usize, embedding: &[f64]) -> f64 {
        let w = &self.weights[boundary];
        let mut z = w[TEXT_DIM];
        for (wi, xi) in w[..TEXT_DIM].iter().zip(embedding) {
            z += wi * xi;
        }
        z
    }

    /// Trains on one observed deferral outcome: the boundary-`boundary`
    /// discriminator either kept the query (`escalated = false`) or sent it
    /// deeper (`escalated = true`).
    pub fn observe(&mut self, boundary: usize, prompt: &Prompt, escalated: bool) {
        let e = text_embedding(prompt, self.config.observation_noise);
        let p = sigmoid(self.logit(boundary, &e));
        let err = f64::from(escalated) - p;
        let lr = self.config.learning_rate;
        let w = &mut self.weights[boundary];
        for (wi, xi) in w[..TEXT_DIM].iter_mut().zip(&e) {
            *wi += lr * err * xi;
        }
        w[TEXT_DIM] += lr * err;
        self.counts[boundary] += 1;
    }

    /// Predicted probability that this prompt escalates through `boundary`,
    /// or `None` while the boundary is still cold.
    pub fn escalation_prob(&self, boundary: usize, prompt: &Prompt) -> Option<f64> {
        if self.counts[boundary] < self.config.min_observations {
            return None;
        }
        let e = text_embedding(prompt, self.config.observation_noise);
        Some(sigmoid(self.logit(boundary, &e)))
    }

    /// The tier this prompt should enter the ladder at: the deepest tier
    /// whose every preceding boundary predicts escalation with probability
    /// at or above the configured margin. Cold boundaries stop the walk, so
    /// an untrained router always answers tier 0 (always-cheapest-first).
    pub fn entry_tier(&self, prompt: &Prompt) -> usize {
        let mut tier = 0;
        for boundary in 0..self.boundaries() {
            match self.escalation_prob(boundary, prompt) {
                Some(p) if p >= self.config.margin => tier = boundary + 1,
                _ => break,
            }
        }
        tier
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Outcome of evaluating predictive routing over a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictiveEval {
    /// FID of the blended responses.
    pub fid: f64,
    /// Fraction routed directly to the heavy model.
    pub heavy_fraction: f64,
    /// Mean per-query latency (deferred queries pay only the heavy stage —
    /// the predictive router's structural advantage).
    pub mean_latency: f64,
}

/// Evaluates predictive routing at a confidence threshold: prompts whose
/// predicted light-suitability falls below `threshold` go straight to the
/// heavy model.
pub fn evaluate_predictive(
    dataset: &PromptDataset,
    light: &DiffusionModel,
    heavy: &DiffusionModel,
    router: &PredictiveRouter,
    threshold: f64,
) -> PredictiveEval {
    let light_lat = light.latency().exec_latency(1).as_secs_f64();
    let heavy_lat = heavy.latency().exec_latency(1).as_secs_f64();
    let mut features: Vec<Vec<f64>> = Vec::with_capacity(dataset.len());
    let mut heavies = 0usize;
    let mut latency = 0.0;
    for p in dataset.prompts() {
        if router.confidence(p) >= threshold {
            features.push(light.generate(p).features);
            latency += light_lat;
        } else {
            features.push(heavy.generate(p).features);
            latency += heavy_lat;
            heavies += 1;
        }
    }
    let refs: Vec<&[f64]> = features.iter().map(|f| f.as_slice()).collect();
    let fid = fid_score(&Mat::from_rows(&refs), dataset.real_features(), 1e-6)
        .expect("well-conditioned features");
    PredictiveEval {
        fid,
        heavy_fraction: heavies as f64 / dataset.len() as f64,
        mean_latency: latency / dataset.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::{evaluate_cascade, RoutingRule};
    use crate::discriminator::{Discriminator, DiscriminatorConfig};
    use crate::features::FeatureSpec;
    use crate::prompt::DatasetKind;
    use crate::zoo::{sd_turbo, sd_v15};
    use std::sync::OnceLock;

    struct Fx {
        dataset: PromptDataset,
        light: DiffusionModel,
        heavy: DiffusionModel,
        router: PredictiveRouter,
        disc: Discriminator,
    }

    fn fx() -> &'static Fx {
        static F: OnceLock<Fx> = OnceLock::new();
        F.get_or_init(|| {
            let spec = FeatureSpec::default();
            let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 1500, 61, spec);
            let light = sd_turbo(spec);
            let heavy = sd_v15(spec);
            let router = PredictiveRouter::train(
                &dataset,
                &light,
                PredictiveConfig {
                    train_prompts: 600,
                    epochs: 15,
                    ..Default::default()
                },
            );
            let disc = Discriminator::train(
                &dataset,
                &light,
                &heavy,
                DiscriminatorConfig {
                    train_prompts: 600,
                    epochs: 10,
                    ..Default::default()
                },
            );
            Fx {
                dataset,
                light,
                heavy,
                router,
                disc,
            }
        })
    }

    #[test]
    fn embedding_is_deterministic_and_informative() {
        let f = fx();
        let p = &f.dataset.prompts()[7];
        assert_eq!(text_embedding(p, 0.3), text_embedding(p, 0.3));
        // Zero-noise embedding carries difficulty exactly.
        assert!((text_embedding(p, 0.0)[0] - p.difficulty).abs() < 1e-12);
    }

    #[test]
    fn router_beats_random_routing() {
        let f = fx();
        let eval = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 0.5);
        let random = evaluate_cascade(
            &f.dataset,
            &f.light,
            &f.heavy,
            &RoutingRule::Random { seed: 3 },
            eval.heavy_fraction,
        );
        assert!(
            eval.fid < random.fid,
            "predictive routing {} should beat random {}",
            eval.fid,
            random.fid
        );
    }

    #[test]
    fn post_hoc_discriminator_beats_text_only_prediction_on_quality() {
        // The paper's hypothesis: the image-aware discriminator routes
        // better than any text-only predictor at matched deferral.
        let f = fx();
        let pred = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 0.5);
        let disc = evaluate_cascade(
            &f.dataset,
            &f.light,
            &f.heavy,
            &RoutingRule::Discriminator(&f.disc),
            pred.heavy_fraction,
        );
        assert!(
            disc.fid < pred.fid,
            "discriminator {} should beat predictive {}",
            disc.fid,
            pred.fid
        );
    }

    #[test]
    fn predictive_routing_is_cheaper_for_deferred_queries() {
        // Structural advantage: deferred queries skip the light stage, so
        // at the same deferral fraction the predictive router must be
        // cheaper than the cascade's structural cost (light + discriminator
        // on every query, heavy on the deferred share).
        let f = fx();
        let pred = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 0.5);
        let cascade_cost_at_same_fraction = f.light.latency().exec_latency(1).as_secs_f64()
            + f.disc.latency().as_secs_f64()
            + pred.heavy_fraction * f.heavy.latency().exec_latency(1).as_secs_f64();
        assert!(
            pred.mean_latency < cascade_cost_at_same_fraction,
            "predictive {} should be cheaper than the cascade's structural cost {}",
            pred.mean_latency,
            cascade_cost_at_same_fraction
        );
    }

    #[test]
    fn online_router_learns_escalation_outcomes() {
        let f = fx();
        let mut router = OnlinePredictiveRouter::new(
            1,
            OnlineRouterConfig {
                min_observations: 64,
                ..Default::default()
            },
        );
        let prompts = f.dataset.prompts();
        assert_eq!(
            router.entry_tier(&prompts[0]),
            0,
            "cold router stays at tier 0"
        );
        // Ground truth proxy: hard prompts escalate.
        for _pass in 0..4 {
            for p in &prompts[..600] {
                router.observe(0, p, p.difficulty > 0.5);
            }
        }
        let held_out = &prompts[600..];
        let mean_prob = |filter: &dyn Fn(&Prompt) -> bool| {
            let probs: Vec<f64> = held_out
                .iter()
                .filter(|p| filter(p))
                .map(|p| router.escalation_prob(0, p).expect("warmed up"))
                .collect();
            probs.iter().sum::<f64>() / probs.len() as f64
        };
        let hard = mean_prob(&|p: &Prompt| p.difficulty > 0.7);
        let easy = mean_prob(&|p: &Prompt| p.difficulty < 0.3);
        assert!(
            hard > easy + 0.2,
            "router should separate hard ({hard}) from easy ({easy}) prompts"
        );
        // Determinism: replaying the same observations yields the same model.
        let mut replay = OnlinePredictiveRouter::new(
            1,
            OnlineRouterConfig {
                min_observations: 64,
                ..Default::default()
            },
        );
        for _pass in 0..4 {
            for p in &prompts[..600] {
                replay.observe(0, p, p.difficulty > 0.5);
            }
        }
        assert_eq!(
            router.escalation_prob(0, &held_out[3]),
            replay.escalation_prob(0, &held_out[3])
        );
    }

    #[test]
    fn thresholds_span_all_light_to_all_heavy() {
        let f = fx();
        let all_light = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 0.0);
        assert_eq!(all_light.heavy_fraction, 0.0);
        let all_heavy = evaluate_predictive(&f.dataset, &f.light, &f.heavy, &f.router, 1.01);
        assert_eq!(all_heavy.heavy_fraction, 1.0);
    }
}
