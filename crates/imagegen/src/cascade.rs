//! Offline cascade evaluation.
//!
//! The serving system in `diffserve-core` routes queries through the cascade
//! under time pressure; this module evaluates the *routing quality* of a
//! cascade in isolation (no queues, batch size 1), which is what the paper's
//! motivation figures (1a, 1b) and discriminator ablation (Fig. 7) measure.

use diffserve_linalg::Mat;
use diffserve_metrics::fid_score;
use diffserve_simkit::rng::seeded_rng;

use crate::discriminator::Discriminator;
use crate::model::DiffusionModel;
use crate::prompt::{Prompt, PromptDataset};
use crate::scorers::{ClipScorer, PickScorer};

/// How a cascade decides that a lightweight output is good enough.
#[derive(Debug, Clone)]
pub enum RoutingRule<'a> {
    /// Keep the light output when the discriminator confidence ≥ threshold.
    Discriminator(&'a Discriminator),
    /// Keep when simulated PickScore ≥ threshold.
    PickScore(PickScorer),
    /// Keep when simulated CLIPScore ≥ threshold.
    ClipScore(ClipScorer),
    /// Keep with fixed probability `1 − p_defer` (threshold plays the role
    /// of the deferral probability). Seeded for reproducibility.
    Random {
        /// RNG seed for the routing coin flips.
        seed: u64,
    },
}

/// Result of evaluating a cascade configuration over a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeEval {
    /// FID of the blended response set against the dataset's real images.
    pub fid: f64,
    /// Fraction of queries deferred to the heavyweight model.
    pub deferral_fraction: f64,
    /// Mean per-query generation latency in seconds (batch size 1,
    /// discriminator included, heavy latency added only for deferred
    /// queries) — the x-axis of Figs. 1a and 7.
    pub mean_latency: f64,
}

/// Evaluates a light/heavy cascade at one routing threshold over a dataset.
///
/// Ridge-regularizes the FID fit with `1e-6`, matching standard FID
/// implementations.
///
/// # Panics
///
/// Panics if the dataset is smaller than 2 prompts.
pub fn evaluate_cascade(
    dataset: &PromptDataset,
    light: &DiffusionModel,
    heavy: &DiffusionModel,
    rule: &RoutingRule<'_>,
    threshold: f64,
) -> CascadeEval {
    let prompts = dataset.prompts();
    let mut features: Vec<Vec<f64>> = Vec::with_capacity(prompts.len());
    let mut deferred = 0usize;
    let mut latency_sum = 0.0;
    let light_lat = light.latency().exec_latency(1).as_secs_f64();
    let heavy_lat = heavy.latency().exec_latency(1).as_secs_f64();
    let mut random_rng = match rule {
        RoutingRule::Random { seed } => Some(seeded_rng(*seed)),
        _ => None,
    };

    for prompt in prompts {
        let light_img = light.generate(prompt);
        let keep_light = match rule {
            RoutingRule::Discriminator(disc) => disc.confidence(&light_img.features) >= threshold,
            RoutingRule::PickScore(s) => s.score(prompt, &light_img) >= threshold,
            RoutingRule::ClipScore(s) => s.score(prompt, &light_img) >= threshold,
            RoutingRule::Random { .. } => {
                let rng = random_rng.as_mut().expect("random rng initialized");
                let u: f64 = rand::Rng::gen_range(rng, 0.0..1.0);
                u >= threshold
            }
        };
        let disc_lat = match rule {
            RoutingRule::Discriminator(disc) => disc.latency().as_secs_f64(),
            _ => 0.0,
        };
        if keep_light {
            latency_sum += light_lat + disc_lat;
            features.push(light_img.features);
        } else {
            deferred += 1;
            latency_sum += light_lat + disc_lat + heavy_lat;
            features.push(heavy.generate(prompt).features);
        }
    }

    let refs: Vec<&[f64]> = features.iter().map(|f| f.as_slice()).collect();
    let generated = Mat::from_rows(&refs);
    let fid = fid_score(&generated, dataset.real_features(), 1e-6)
        .expect("feature sets are well-conditioned");
    CascadeEval {
        fid,
        deferral_fraction: deferred as f64 / prompts.len() as f64,
        mean_latency: latency_sum / prompts.len() as f64,
    }
}

/// FID of serving *one* model for every prompt (the Clipper-Light /
/// Clipper-Heavy operating points and the independent variants of Fig. 1a).
pub fn evaluate_single_model(dataset: &PromptDataset, model: &DiffusionModel) -> CascadeEval {
    let rows: Vec<Vec<f64>> = dataset
        .prompts()
        .iter()
        .map(|p| model.generate(p).features)
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|f| f.as_slice()).collect();
    let generated = Mat::from_rows(&refs);
    let fid = fid_score(&generated, dataset.real_features(), 1e-6)
        .expect("feature sets are well-conditioned");
    CascadeEval {
        fid,
        deferral_fraction: 0.0,
        mean_latency: model.latency().exec_latency(1).as_secs_f64(),
    }
}

/// Per-prompt quality difference between heavy and light outputs, scored by
/// a metric. Negative values mean the light model won — the "easy queries"
/// of Fig. 1b.
pub fn quality_differences(
    dataset: &PromptDataset,
    light: &DiffusionModel,
    heavy: &DiffusionModel,
    metric: impl Fn(&Prompt, &crate::model::GeneratedImage) -> f64,
) -> Vec<f64> {
    dataset
        .prompts()
        .iter()
        .map(|p| {
            let li = light.generate(p);
            let hi = heavy.generate(p);
            metric(p, &hi) - metric(p, &li)
        })
        .collect()
}

/// Fraction of prompts where the light model's latent quality matches or
/// beats the heavy model's — the paper's 20–40% "easy query" share.
pub fn easy_query_fraction(
    dataset: &PromptDataset,
    light: &DiffusionModel,
    heavy: &DiffusionModel,
) -> f64 {
    let diffs = quality_differences(dataset, light, heavy, |_, img| img.quality);
    let easy = diffs.iter().filter(|&&d| d <= 0.0).count();
    easy as f64 / diffs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discriminator::{Discriminator, DiscriminatorConfig};
    use crate::features::FeatureSpec;
    use crate::prompt::DatasetKind;
    use crate::zoo::{cascade1, cascade2};

    fn setup() -> (PromptDataset, DiffusionModel, DiffusionModel, Discriminator) {
        let spec = FeatureSpec::default();
        let c = cascade1(spec);
        let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 1200, 21, spec);
        let disc = Discriminator::train(
            &dataset,
            &c.light,
            &c.heavy,
            DiscriminatorConfig {
                train_prompts: 500,
                epochs: 12,
                ..Default::default()
            },
        );
        (dataset, c.light, c.heavy, disc)
    }

    #[test]
    fn easy_fraction_in_paper_band() {
        let spec = FeatureSpec::default();
        let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 3000, 5, spec);
        for c in [cascade1(spec), cascade2(spec)] {
            let frac = easy_query_fraction(&dataset, &c.light, &c.heavy);
            assert!(
                (0.15..=0.45).contains(&frac),
                "cascade {}: easy fraction {frac} outside the paper's 20-40% band",
                c.name
            );
        }
    }

    #[test]
    fn light_model_has_worse_fid_than_heavy() {
        let (dataset, light, heavy, _) = setup();
        let l = evaluate_single_model(&dataset, &light);
        let h = evaluate_single_model(&dataset, &heavy);
        assert!(
            l.fid > h.fid + 1.0,
            "light FID {} should exceed heavy FID {}",
            l.fid,
            h.fid
        );
    }

    #[test]
    fn threshold_zero_is_all_light_and_one_is_all_heavy() {
        let (dataset, light, heavy, disc) = setup();
        let rule = RoutingRule::Discriminator(&disc);
        let all_light = evaluate_cascade(&dataset, &light, &heavy, &rule, 0.0);
        assert_eq!(all_light.deferral_fraction, 0.0);
        let all_heavy = evaluate_cascade(&dataset, &light, &heavy, &rule, 1.01);
        assert_eq!(all_heavy.deferral_fraction, 1.0);
        assert!(all_heavy.mean_latency > all_light.mean_latency);
    }

    #[test]
    fn cascade_mid_threshold_beats_all_heavy_fid() {
        // The paper's surprising finding: a blend can have *lower* FID than
        // heavy-only (§2.2).
        let (dataset, light, heavy, disc) = setup();
        let rule = RoutingRule::Discriminator(&disc);
        let all_heavy = evaluate_cascade(&dataset, &light, &heavy, &rule, 1.01);
        let best_mix = (1..10)
            .map(|i| evaluate_cascade(&dataset, &light, &heavy, &rule, i as f64 / 10.0))
            .map(|e| e.fid)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_mix < all_heavy.fid,
            "best mixed FID {best_mix} should beat heavy-only {}",
            all_heavy.fid
        );
    }

    #[test]
    fn discriminator_routing_beats_random_at_same_deferral() {
        let (dataset, light, heavy, disc) = setup();
        let disc_rule = RoutingRule::Discriminator(&disc);
        let eval_d = evaluate_cascade(&dataset, &light, &heavy, &disc_rule, 0.5);
        // Random routing with matching deferral fraction.
        let rand_rule = RoutingRule::Random { seed: 77 };
        let eval_r = evaluate_cascade(
            &dataset,
            &light,
            &heavy,
            &rand_rule,
            eval_d.deferral_fraction,
        );
        assert!(
            (eval_d.deferral_fraction - eval_r.deferral_fraction).abs() < 0.05,
            "deferral fractions must be comparable"
        );
        assert!(
            eval_d.fid < eval_r.fid,
            "discriminator FID {} should beat random FID {}",
            eval_d.fid,
            eval_r.fid
        );
    }

    #[test]
    fn quality_differences_are_mostly_positive() {
        let (dataset, light, heavy, _) = setup();
        let diffs = quality_differences(&dataset, &light, &heavy, |_, img| img.quality);
        let positive = diffs.iter().filter(|&&d| d > 0.0).count();
        assert!(positive * 2 > diffs.len(), "heavy should usually win");
    }
}
