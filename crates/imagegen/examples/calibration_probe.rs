//! Prints calibration numbers: per-model FID, easy fractions, cascade curves.
use diffserve_imagegen::prelude::*;
use diffserve_imagegen::DiscriminatorConfig;

fn main() {
    let spec = FeatureSpec::default();
    let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 3000, 42, spec);
    println!("== Fig1a variants (FID @ batch-1 latency) ==");
    for m in fig1a_variants(spec) {
        let e = evaluate_single_model(&dataset, &m);
        println!(
            "{:20} lat={:5.2}s FID={:6.2}",
            m.name(),
            e.mean_latency,
            e.fid
        );
    }
    let c = cascade1(spec);
    println!(
        "easy fraction c1: {:.3}",
        easy_query_fraction(&dataset, &c.light, &c.heavy)
    );
    let c2 = cascade2(spec);
    println!(
        "easy fraction c2: {:.3}",
        easy_query_fraction(&dataset, &c2.light, &c2.heavy)
    );
    let ddb = PromptDataset::synthesize(DatasetKind::DiffusionDb, 3000, 43, spec);
    let c3 = cascade3(spec);
    println!(
        "easy fraction c3: {:.3}",
        easy_query_fraction(&ddb, &c3.light, &c3.heavy)
    );
    for m in [&c3.light, &c3.heavy] {
        let e = evaluate_single_model(&ddb, m);
        println!(
            "{:20} lat={:5.2}s FID={:6.2}",
            m.name(),
            e.mean_latency,
            e.fid
        );
    }
    println!("== Cascade 1 discriminator sweep ==");
    let disc = Discriminator::train(&dataset, &c.light, &c.heavy, DiscriminatorConfig::default());
    println!("disc train acc: {:.3}", disc.train_accuracy());
    let rule = RoutingRule::Discriminator(&disc);
    for i in 0..=10 {
        let t = i as f64 / 10.0;
        let e = evaluate_cascade(&dataset, &c.light, &c.heavy, &rule, t);
        println!(
            "t={:4.2} defer={:5.3} lat={:5.2} FID={:6.2}",
            t, e.deferral_fraction, e.mean_latency, e.fid
        );
    }
    println!("== Random sweep ==");
    for i in [2, 5, 8] {
        let t = i as f64 / 10.0;
        let e = evaluate_cascade(
            &dataset,
            &c.light,
            &c.heavy,
            &RoutingRule::Random { seed: 7 },
            t,
        );
        println!(
            "p={:4.2} defer={:5.3} FID={:6.2}",
            t, e.deferral_fraction, e.fid
        );
    }
}
