//! # diffserve-trace
//!
//! Workload substrate for the DiffServe reproduction: demand traces, arrival
//! processes, synthetic Azure-Functions-style diurnal curves, trace file I/O
//! in the artifact's format, and the controller's demand estimator.
//!
//! The paper (§4.1) drives its dynamic experiments with the Microsoft Azure
//! Functions trace scaled shape-preservingly to cluster capacity (e.g.
//! 4→32 QPS over ~350 s for Cascade 1 on 16 workers, 1→8 QPS for Cascade 3).
//! [`synthesize_azure_trace`] regenerates curves with the same structure and
//! [`Trace::rescaled`] implements the same shape-preserving transformation.
//!
//! # Examples
//!
//! ```
//! use diffserve_trace::{poisson_arrivals, synthesize_azure_trace, AzureTraceConfig};
//! use diffserve_simkit::rng::seeded_rng;
//!
//! let trace = synthesize_azure_trace(&AzureTraceConfig::default())?;
//! let arrivals = poisson_arrivals(&trace, &mut seeded_rng(1));
//! assert!(arrivals.len() > 1000);
//! # Ok::<(), diffserve_trace::TraceError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addon_mix;
pub mod arrival;
pub mod azure;
pub mod burst;
pub mod demand;
pub mod file;
pub mod scenario;
mod trace;

pub use addon_mix::{AddonMix, TrendWindow, ADDON_SEED_STREAM};
pub use arrival::{paced_arrivals, poisson_arrivals};
pub use azure::{synthesize_azure_trace, AzureTraceConfig};
pub use burst::{bursty_arrivals, BurstConfig};
pub use demand::DemandEstimator;
pub use file::{read_trace, trace_file_name, write_trace};
pub use scenario::{
    standard_scenarios, style_shift_flash_crowd, CapacityEvent, FleetHealth, Hazard, HazardProcess,
    Incident, IncidentLog, Perturbation, Scenario, ScenarioError, ScenarioEvent,
};
pub use trace::{Trace, TraceError};
