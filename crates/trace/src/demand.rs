//! Demand estimation for the controller.
//!
//! The DiffServe controller estimates incoming demand `D` with an
//! exponentially weighted moving average over demand history and then
//! over-provisions by a factor `λ` (1.05 by default) before handing the
//! estimate to the MILP (paper §3.3).

use diffserve_simkit::stats::Ewma;
use diffserve_simkit::time::SimDuration;

/// EWMA-smoothed demand estimator with over-provisioning.
///
/// # Examples
///
/// ```
/// use diffserve_trace::DemandEstimator;
/// use diffserve_simkit::time::SimDuration;
///
/// let mut d = DemandEstimator::new(0.4, 1.05);
/// d.observe(20, SimDuration::from_secs(2)); // 10 QPS window
/// assert!((d.estimate() - 10.0).abs() < 1e-9);
/// assert!((d.provisioned_estimate() - 10.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DemandEstimator {
    ewma: Ewma,
    over_provision: f64,
}

impl DemandEstimator {
    /// Creates an estimator with EWMA factor `alpha` and over-provisioning
    /// factor `over_provision` (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `over_provision < 1`.
    pub fn new(alpha: f64, over_provision: f64) -> Self {
        assert!(
            over_provision >= 1.0 && over_provision.is_finite(),
            "over-provisioning factor must be >= 1, got {over_provision}"
        );
        DemandEstimator {
            ewma: Ewma::new(alpha).expect("alpha must lie in (0, 1]"),
            over_provision,
        }
    }

    /// Feeds one observation window: `arrivals` queries seen over `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn observe(&mut self, arrivals: u64, window: SimDuration) {
        assert!(!window.is_zero(), "observation window must be positive");
        let qps = arrivals as f64 / window.as_secs_f64();
        self.ewma.update(qps);
    }

    /// Current smoothed demand estimate in QPS (0 before any observation).
    pub fn estimate(&self) -> f64 {
        self.ewma.value_or(0.0)
    }

    /// Demand estimate multiplied by the over-provisioning factor — the `λD`
    /// the allocator plans for.
    pub fn provisioned_estimate(&self) -> f64 {
        self.estimate() * self.over_provision
    }

    /// The configured over-provisioning factor.
    pub fn over_provision(&self) -> f64 {
        self.over_provision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooths_demand_spikes() {
        let mut d = DemandEstimator::new(0.5, 1.0);
        let w = SimDuration::from_secs(1);
        d.observe(10, w);
        d.observe(30, w);
        // EWMA(0.5): 0.5*30 + 0.5*10 = 20.
        assert!((d.estimate() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn over_provisioning_multiplies() {
        let mut d = DemandEstimator::new(1.0, 1.05);
        d.observe(100, SimDuration::from_secs(1));
        assert!((d.provisioned_estimate() - 105.0).abs() < 1e-9);
        assert_eq!(d.over_provision(), 1.05);
    }

    #[test]
    fn zero_before_observations() {
        let d = DemandEstimator::new(0.3, 1.05);
        assert_eq!(d.estimate(), 0.0);
        assert_eq!(d.provisioned_estimate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "over-provisioning")]
    fn rejects_under_provisioning() {
        let _ = DemandEstimator::new(0.5, 0.9);
    }
}
