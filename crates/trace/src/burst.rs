//! Bursty arrival processes.
//!
//! The paper's robustness discussion (§4.3) concerns demand that shifts
//! abruptly; production traces (the Twitter stream the paper cites, Azure
//! Functions) carry bursts on top of the diurnal shape. This module
//! provides a Markov-modulated Poisson process (MMPP): arrivals alternate
//! between a *calm* and a *burst* regime with exponentially distributed
//! sojourn times, multiplying the base trace rate during bursts.

use diffserve_simkit::rng::{Exponential, Sampler};
use diffserve_simkit::time::{SimDuration, SimTime};
use rand::Rng;

use crate::trace::Trace;

/// Configuration of the two-state MMPP burst overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstConfig {
    /// Rate multiplier while in the burst state (≥ 1).
    pub burst_multiplier: f64,
    /// Mean sojourn time in the calm state.
    pub mean_calm: SimDuration,
    /// Mean sojourn time in the burst state.
    pub mean_burst: SimDuration,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            burst_multiplier: 2.5,
            mean_calm: SimDuration::from_secs(40),
            mean_burst: SimDuration::from_secs(8),
        }
    }
}

impl BurstConfig {
    /// Long-run fraction of time spent in the burst state.
    pub fn burst_time_fraction(&self) -> f64 {
        let b = self.mean_burst.as_secs_f64();
        let c = self.mean_calm.as_secs_f64();
        b / (b + c)
    }

    /// Long-run average rate multiplier applied to the base trace.
    pub fn mean_multiplier(&self) -> f64 {
        let p = self.burst_time_fraction();
        1.0 + p * (self.burst_multiplier - 1.0)
    }
}

/// Generates Poisson arrivals from `trace` with an MMPP burst overlay.
///
/// Deterministic for a given RNG state; the regime path and the arrivals
/// share the provided RNG.
///
/// # Panics
///
/// Panics if `burst_multiplier < 1` or either sojourn time is zero.
pub fn bursty_arrivals<R: Rng + ?Sized>(
    trace: &Trace,
    config: &BurstConfig,
    rng: &mut R,
) -> Vec<SimTime> {
    assert!(
        config.burst_multiplier >= 1.0 && config.burst_multiplier.is_finite(),
        "burst multiplier must be >= 1"
    );
    assert!(
        !config.mean_calm.is_zero() && !config.mean_burst.is_zero(),
        "sojourn times must be positive"
    );

    // Build the regime path over the trace duration.
    let horizon = trace.duration();
    let calm_exp =
        Exponential::new(1.0 / config.mean_calm.as_secs_f64()).expect("positive sojourn rate");
    let burst_exp =
        Exponential::new(1.0 / config.mean_burst.as_secs_f64()).expect("positive sojourn rate");
    let mut switches: Vec<(SimTime, bool)> = Vec::new(); // (time, now_bursting)
    let mut t = SimTime::ZERO;
    let mut bursting = false;
    while t < SimTime::ZERO + horizon {
        let sojourn = if bursting {
            burst_exp.draw(rng)
        } else {
            calm_exp.draw(rng)
        };
        t += SimDuration::from_secs_f64(sojourn);
        bursting = !bursting;
        switches.push((t, bursting));
    }

    let in_burst = |at: SimTime| -> bool {
        // State before the first switch is calm.
        match switches.partition_point(|&(s, _)| s <= at) {
            0 => false,
            i => switches[i - 1].1,
        }
    };

    // Thinning-free generation: sample at the burst-boosted rate per bin,
    // then keep calm-period arrivals with probability 1/multiplier.
    let mut arrivals = Vec::new();
    let bin = trace.bin_width();
    for (i, &qps) in trace.bins().iter().enumerate() {
        if qps <= 0.0 {
            continue;
        }
        let boosted = qps * config.burst_multiplier;
        let exp = Exponential::new(boosted).expect("positive rate");
        let start = SimTime::ZERO + bin * i as u64;
        let end = start + bin;
        let mut at = start;
        loop {
            at += SimDuration::from_secs_f64(exp.draw(rng));
            if at >= end {
                break;
            }
            let keep = if in_burst(at) {
                true
            } else {
                rng.gen_range(0.0..1.0) < 1.0 / config.burst_multiplier
            };
            if keep {
                arrivals.push(at);
            }
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffserve_simkit::rng::seeded_rng;

    #[test]
    fn burst_fraction_math() {
        let c = BurstConfig {
            burst_multiplier: 3.0,
            mean_calm: SimDuration::from_secs(30),
            mean_burst: SimDuration::from_secs(10),
        };
        assert!((c.burst_time_fraction() - 0.25).abs() < 1e-12);
        assert!((c.mean_multiplier() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mean_rate_scales_with_mean_multiplier() {
        let trace = Trace::constant(20.0, SimDuration::from_secs(400)).unwrap();
        let config = BurstConfig::default();
        let arrivals = bursty_arrivals(&trace, &config, &mut seeded_rng(5));
        let expected = 20.0 * config.mean_multiplier() * 400.0;
        let got = arrivals.len() as f64;
        // Regime randomness makes this noisy; 25% tolerance.
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let trace = Trace::constant(10.0, SimDuration::from_secs(60)).unwrap();
        let arrivals = bursty_arrivals(&trace, &BurstConfig::default(), &mut seeded_rng(6));
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arrivals
            .iter()
            .all(|&t| t < SimTime::ZERO + trace.duration()));
    }

    #[test]
    fn unit_multiplier_reduces_to_poisson_rate() {
        let trace = Trace::constant(15.0, SimDuration::from_secs(200)).unwrap();
        let config = BurstConfig {
            burst_multiplier: 1.0,
            ..Default::default()
        };
        let arrivals = bursty_arrivals(&trace, &config, &mut seeded_rng(7));
        let expected = 15.0 * 200.0;
        let got = arrivals.len() as f64;
        assert!((got - expected).abs() < 0.1 * expected, "got {got}");
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = Trace::constant(10.0, SimDuration::from_secs(30)).unwrap();
        let a = bursty_arrivals(&trace, &BurstConfig::default(), &mut seeded_rng(9));
        let b = bursty_arrivals(&trace, &BurstConfig::default(), &mut seeded_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn rejects_submultiplier() {
        let trace = Trace::constant(1.0, SimDuration::from_secs(1)).unwrap();
        let config = BurstConfig {
            burst_multiplier: 0.5,
            ..Default::default()
        };
        let _ = bursty_arrivals(&trace, &config, &mut seeded_rng(1));
    }
}
