//! Arrival-time generation from demand traces.

use diffserve_simkit::rng::{Exponential, Sampler};
use diffserve_simkit::time::{SimDuration, SimTime};
use rand::Rng;

use crate::trace::Trace;

/// Generates Poisson arrival times driven by a (piecewise-constant) trace.
///
/// Within each trace bin arrivals form a homogeneous Poisson process at that
/// bin's rate, which is exactly how the DiffServe artifact replays its
/// per-second trace files.
///
/// # Examples
///
/// ```
/// use diffserve_trace::{poisson_arrivals, Trace};
/// use diffserve_simkit::time::SimDuration;
/// use diffserve_simkit::rng::seeded_rng;
///
/// let trace = Trace::constant(100.0, SimDuration::from_secs(10))?;
/// let mut rng = seeded_rng(1);
/// let arrivals = poisson_arrivals(&trace, &mut rng);
/// // ~1000 queries expected over 10s at 100 QPS.
/// assert!((800..1200).contains(&arrivals.len()));
/// # Ok::<(), diffserve_trace::TraceError>(())
/// ```
pub fn poisson_arrivals<R: Rng + ?Sized>(trace: &Trace, rng: &mut R) -> Vec<SimTime> {
    let mut arrivals = Vec::with_capacity(trace.expected_queries() as usize + 16);
    let bin_width = trace.bin_width();
    for (i, &qps) in trace.bins().iter().enumerate() {
        if qps <= 0.0 {
            continue;
        }
        let bin_start = SimTime::ZERO + bin_width * i as u64;
        let bin_end = bin_start + bin_width;
        let exp = Exponential::new(qps).expect("trace rates validated positive");
        let mut t = bin_start;
        loop {
            t += SimDuration::from_secs_f64(exp.draw(rng));
            if t >= bin_end {
                break;
            }
            arrivals.push(t);
        }
    }
    arrivals
}

/// Generates perfectly paced (deterministic) arrivals from a trace.
///
/// Each bin with rate `q` produces `round(q · bin_seconds)` arrivals evenly
/// spaced across the bin. Useful for tests that need exact query counts.
pub fn paced_arrivals(trace: &Trace) -> Vec<SimTime> {
    let mut arrivals = Vec::new();
    let bin_width = trace.bin_width();
    for (i, &qps) in trace.bins().iter().enumerate() {
        let count = (qps * bin_width.as_secs_f64()).round() as u64;
        if count == 0 {
            continue;
        }
        let bin_start = SimTime::ZERO + bin_width * i as u64;
        let gap = bin_width / count;
        for k in 0..count {
            arrivals.push(bin_start + gap * k);
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use diffserve_simkit::rng::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn poisson_count_close_to_expectation() {
        let trace = Trace::constant(50.0, SimDuration::from_secs(100)).unwrap();
        let mut rng = seeded_rng(3);
        let arrivals = poisson_arrivals(&trace, &mut rng);
        let expected = 5000.0;
        let got = arrivals.len() as f64;
        // Poisson sd ≈ 70; allow 5 sigma.
        assert!((got - expected).abs() < 350.0, "got {got}");
    }

    #[test]
    fn poisson_is_sorted_and_in_range() {
        let trace = Trace::from_qps(vec![10.0, 0.0, 30.0], SimDuration::from_secs(1)).unwrap();
        let mut rng = seeded_rng(4);
        let arrivals = poisson_arrivals(&trace, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // No arrivals in the zero-rate middle second.
        for t in &arrivals {
            let s = t.as_secs_f64();
            assert!(!(1.0..2.0).contains(&s), "arrival at {s} inside silent bin");
            assert!(s < 3.0);
        }
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let trace = Trace::constant(20.0, SimDuration::from_secs(5)).unwrap();
        let a = poisson_arrivals(&trace, &mut seeded_rng(9));
        let b = poisson_arrivals(&trace, &mut seeded_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn paced_counts_are_exact() {
        let trace = Trace::from_qps(vec![4.0, 6.0], SimDuration::from_secs(1)).unwrap();
        let arrivals = paced_arrivals(&trace);
        assert_eq!(arrivals.len(), 10);
        assert_eq!(arrivals[0], SimTime::ZERO);
        // Second bin starts exactly at t=1s.
        assert_eq!(arrivals[4], SimTime::from_secs(1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn paced_matches_expected_queries(qps in 1.0f64..50.0, bins in 1usize..20) {
            let trace = Trace::from_qps(vec![qps; bins], SimDuration::from_secs(1)).unwrap();
            let arrivals = paced_arrivals(&trace);
            let expected = (qps.round() as usize) * bins;
            prop_assert_eq!(arrivals.len(), expected);
        }
    }
}
