//! Trace file I/O in the DiffServe artifact's format.
//!
//! The artifact ships traces as plain text, one QPS value per second per
//! line, named `trace_{A}to{B}qps.txt`. This module reads and writes that
//! format.

use std::io::{BufRead, Write};

use diffserve_simkit::time::SimDuration;

use crate::trace::{Trace, TraceError};

/// Parses a trace from the artifact's one-rate-per-line text format.
///
/// Blank lines and lines starting with `#` are skipped.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with the offending line number, or the
/// usual construction errors for invalid rates.
///
/// # Examples
///
/// ```
/// use diffserve_trace::read_trace;
///
/// let text = "# demo trace\n4.0\n8.5\n\n16\n";
/// let trace = read_trace(text.as_bytes())?;
/// assert_eq!(trace.bins(), &[4.0, 8.5, 16.0]);
/// # Ok::<(), diffserve_trace::TraceError>(())
/// ```
pub fn read_trace<R: BufRead>(reader: R) -> Result<Trace, TraceError> {
    let mut bins = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|_| TraceError::Parse {
            line: idx + 1,
            content: "<io error>".to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value: f64 = trimmed.parse().map_err(|_| TraceError::Parse {
            line: idx + 1,
            content: trimmed.to_string(),
        })?;
        bins.push(value);
    }
    Trace::from_qps(bins, SimDuration::from_secs(1))
}

/// Writes a trace in the artifact's text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(trace: &Trace, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# diffserve trace: {} bins of {}s, {:.1}..{:.1} qps",
        trace.len(),
        trace.bin_width().as_secs_f64(),
        trace.min_qps(),
        trace.max_qps()
    )?;
    for &qps in trace.bins() {
        writeln!(writer, "{qps}")?;
    }
    Ok(())
}

/// Conventional artifact file name for a trace, e.g. `trace_4to32qps.txt`.
pub fn trace_file_name(trace: &Trace) -> String {
    format!(
        "trace_{}to{}qps.txt",
        trace.min_qps().round() as i64,
        trace.max_qps().round() as i64
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let trace = Trace::from_qps(vec![4.0, 8.0, 32.0], SimDuration::from_secs(1)).unwrap();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n1.5\n# middle\n2.5\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.bins(), &[1.5, 2.5]);
    }

    #[test]
    fn reports_parse_error_line() {
        let text = "1.0\nnot-a-number\n";
        match read_trace(text.as_bytes()) {
            Err(TraceError::Parse { line, content }) => {
                assert_eq!(line, 2);
                assert_eq!(content, "not-a-number");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_is_error() {
        assert_eq!(
            read_trace("# only comments\n".as_bytes()),
            Err(TraceError::Empty)
        );
    }

    #[test]
    fn file_name_convention() {
        let t = Trace::from_qps(vec![4.0, 32.0], SimDuration::from_secs(1)).unwrap();
        assert_eq!(trace_file_name(&t), "trace_4to32qps.txt");
    }
}
