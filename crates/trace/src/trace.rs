//! Demand traces: time-binned query rates.

use diffserve_simkit::time::{SimDuration, SimTime};

/// A demand trace: query rate (QPS) per fixed-width time bin.
///
/// This mirrors the DiffServe artifact's trace files
/// (`trace_{A}to{B}qps.txt`: one QPS value per second).
///
/// # Examples
///
/// ```
/// use diffserve_trace::Trace;
/// use diffserve_simkit::time::{SimDuration, SimTime};
///
/// let t = Trace::from_qps(vec![4.0, 8.0, 16.0], SimDuration::from_secs(1))?;
/// assert_eq!(t.qps_at(SimTime::from_millis(1500)), 8.0);
/// assert_eq!(t.duration(), SimDuration::from_secs(3));
/// # Ok::<(), diffserve_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    bins: Vec<f64>,
    bin_width: SimDuration,
}

/// Errors from constructing or parsing traces.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace has no bins.
    Empty,
    /// A rate was negative or non-finite.
    InvalidRate {
        /// Index of the offending bin.
        bin: usize,
        /// The offending value.
        value: f64,
    },
    /// The bin width was zero.
    ZeroBinWidth,
    /// A line in a trace file failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The unparseable content.
        content: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no bins"),
            TraceError::InvalidRate { bin, value } => {
                write!(f, "bin {bin} has invalid rate {value}")
            }
            TraceError::ZeroBinWidth => write!(f, "trace bin width must be positive"),
            TraceError::Parse { line, content } => {
                write!(f, "line {line} is not a rate: {content:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Creates a trace from per-bin QPS values.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`], [`TraceError::ZeroBinWidth`], or
    /// [`TraceError::InvalidRate`].
    pub fn from_qps(bins: Vec<f64>, bin_width: SimDuration) -> Result<Self, TraceError> {
        if bins.is_empty() {
            return Err(TraceError::Empty);
        }
        if bin_width.is_zero() {
            return Err(TraceError::ZeroBinWidth);
        }
        for (i, &v) in bins.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(TraceError::InvalidRate { bin: i, value: v });
            }
        }
        Ok(Trace { bins, bin_width })
    }

    /// Constant-rate trace of the given duration.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rate or non-positive duration.
    pub fn constant(qps: f64, duration: SimDuration) -> Result<Self, TraceError> {
        if duration.is_zero() {
            return Err(TraceError::ZeroBinWidth);
        }
        let bin = SimDuration::from_secs(1);
        let n = (duration.as_secs_f64().ceil() as usize).max(1);
        Trace::from_qps(vec![qps; n], bin)
    }

    /// Query rate at simulated time `t` (0 beyond the trace end).
    pub fn qps_at(&self, t: SimTime) -> f64 {
        let idx = t.as_micros() / self.bin_width.as_micros();
        self.bins.get(idx as usize).copied().unwrap_or(0.0)
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Returns `true` if the trace has no bins (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Total trace duration.
    pub fn duration(&self) -> SimDuration {
        self.bin_width * self.bins.len() as u64
    }

    /// Minimum rate over the trace.
    pub fn min_qps(&self) -> f64 {
        self.bins.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum rate over the trace.
    pub fn max_qps(&self) -> f64 {
        self.bins.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean rate over the trace.
    pub fn mean_qps(&self) -> f64 {
        self.bins.iter().sum::<f64>() / self.bins.len() as f64
    }

    /// Expected number of queries over the whole trace.
    pub fn expected_queries(&self) -> f64 {
        self.bins.iter().sum::<f64>() * self.bin_width.as_secs_f64()
    }

    /// Per-bin rates.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Shape-preserving affine rescale so that the minimum maps to
    /// `min_qps` and the maximum to `max_qps` — the transformation the paper
    /// applies to the Azure Functions trace to match system capacity (§4.1).
    ///
    /// A flat trace rescales to the midpoint of the target range.
    ///
    /// # Panics
    ///
    /// Panics if `min_qps > max_qps` or either is negative/non-finite.
    pub fn rescaled(&self, min_qps: f64, max_qps: f64) -> Trace {
        assert!(
            min_qps.is_finite() && max_qps.is_finite() && 0.0 <= min_qps && min_qps <= max_qps,
            "invalid target range [{min_qps}, {max_qps}]"
        );
        let lo = self.min_qps();
        let hi = self.max_qps();
        let bins = if hi - lo < 1e-12 {
            vec![0.5 * (min_qps + max_qps); self.bins.len()]
        } else {
            self.bins
                .iter()
                .map(|&x| min_qps + (max_qps - min_qps) * (x - lo) / (hi - lo))
                .collect()
        };
        Trace {
            bins,
            bin_width: self.bin_width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(n: u64) -> SimDuration {
        SimDuration::from_secs(n)
    }

    #[test]
    fn lookup_by_bin() {
        let t = Trace::from_qps(vec![1.0, 2.0, 3.0], secs(2)).unwrap();
        assert_eq!(t.qps_at(SimTime::ZERO), 1.0);
        assert_eq!(t.qps_at(SimTime::from_secs(3)), 2.0);
        assert_eq!(t.qps_at(SimTime::from_secs(5)), 3.0);
        assert_eq!(t.qps_at(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn summary_statistics() {
        let t = Trace::from_qps(vec![4.0, 8.0, 12.0], secs(1)).unwrap();
        assert_eq!(t.min_qps(), 4.0);
        assert_eq!(t.max_qps(), 12.0);
        assert_eq!(t.mean_qps(), 8.0);
        assert_eq!(t.expected_queries(), 24.0);
        assert_eq!(t.duration(), secs(3));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn rescale_preserves_shape() {
        let t = Trace::from_qps(vec![10.0, 20.0, 15.0, 30.0], secs(1)).unwrap();
        let r = t.rescaled(4.0, 32.0);
        assert!((r.min_qps() - 4.0).abs() < 1e-12);
        assert!((r.max_qps() - 32.0).abs() < 1e-12);
        // Ordering of bins is preserved.
        assert!(r.bins()[0] < r.bins()[2]);
        assert!(r.bins()[2] < r.bins()[1]);
    }

    #[test]
    fn rescale_flat_trace_hits_midpoint() {
        let t = Trace::from_qps(vec![7.0, 7.0], secs(1)).unwrap();
        let r = t.rescaled(2.0, 10.0);
        assert_eq!(r.bins(), &[6.0, 6.0]);
    }

    #[test]
    fn constant_builder() {
        let t = Trace::constant(5.0, secs(10)).unwrap();
        assert_eq!(t.len(), 10);
        assert_eq!(t.mean_qps(), 5.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(Trace::from_qps(vec![], secs(1)), Err(TraceError::Empty));
        assert_eq!(
            Trace::from_qps(vec![1.0], SimDuration::ZERO),
            Err(TraceError::ZeroBinWidth)
        );
        assert!(matches!(
            Trace::from_qps(vec![1.0, -2.0], secs(1)),
            Err(TraceError::InvalidRate { bin: 1, .. })
        ));
        assert!(matches!(
            Trace::from_qps(vec![f64::NAN], secs(1)),
            Err(TraceError::InvalidRate { bin: 0, .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = TraceError::InvalidRate {
            bin: 3,
            value: -1.0,
        };
        assert!(format!("{e}").contains("bin 3"));
    }
}
