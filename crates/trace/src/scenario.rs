//! Scenarios: a base demand trace composed with timed perturbations.
//!
//! The paper evaluates DiffServe on smoothly varying demand (the Azure
//! Functions trace, §4.1), but a production serving system also faces
//! *capacity churn* (GPU workers failing and rejoining), *flash crowds*
//! (multiplicative demand spikes with steep ramps), *demand shocks*
//! (persistent level shifts), and *difficulty shifts* (the prompt-hardness
//! mix changing, which raises the cascade's deferral rate even at constant
//! QPS). A [`Scenario`] describes all of these declaratively so that the
//! discrete-event simulator (`diffserve_core::run_scenario`) and the
//! thread-based testbed (`diffserve_cluster::run_cluster_scenario`) can
//! replay exactly the same stress from one value.
//!
//! Demand-side perturbations ([`Perturbation::FlashCrowd`],
//! [`Perturbation::DemandShift`]) are *baked into the arrival stream* via
//! [`Scenario::effective_trace`]; capacity and difficulty perturbations are
//! exposed as timed schedules ([`Scenario::capacity_events`],
//! [`Scenario::difficulty_events`]) that the run paths inject into their
//! event loops.
//!
//! # Examples
//!
//! ```
//! use diffserve_trace::{Scenario, Trace};
//! use diffserve_simkit::time::{SimDuration, SimTime};
//!
//! let base = Trace::constant(6.0, SimDuration::from_secs(120))?;
//! let scenario = Scenario::new("failover", base)
//!     .worker_fail(SimTime::from_secs(40), 2)
//!     .worker_recover(SimTime::from_secs(80), 2);
//! scenario.validate(8)?;
//! assert_eq!(scenario.capacity_events().len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use diffserve_simkit::time::{SimDuration, SimTime};

use crate::trace::Trace;

/// One timed perturbation applied on top of a scenario's base trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Perturbation {
    /// `count` workers fail-stop at `at`: their queued and in-flight work is
    /// retried elsewhere and the controller must re-solve against the
    /// shrunken pool.
    WorkerFail {
        /// Failure instant.
        at: SimTime,
        /// Number of workers that fail (highest-indexed alive workers).
        count: usize,
    },
    /// `count` previously failed workers rejoin at `at`, paying the model
    /// load delay before serving again.
    WorkerRecover {
        /// Recovery instant.
        at: SimTime,
        /// Number of workers that rejoin (lowest-indexed failed workers).
        count: usize,
    },
    /// A multiplicative rate spike: demand ramps from ×1 to ×`factor` over
    /// `ramp`, holds at ×`factor` for `hold`, then ramps back down over
    /// `ramp`.
    FlashCrowd {
        /// Start of the up-ramp.
        start: SimTime,
        /// Up- and down-ramp duration (zero = step).
        ramp: SimDuration,
        /// Duration at full amplitude.
        hold: SimDuration,
        /// Peak demand multiplier (> 0; > 1 for a crowd, < 1 for an outage
        /// of an upstream traffic source).
        factor: f64,
    },
    /// A persistent demand level change: every rate from `at` onward is
    /// multiplied by `factor`.
    DemandShift {
        /// Shift instant.
        at: SimTime,
        /// Demand multiplier applied from `at` to the trace end.
        factor: f64,
    },
    /// The prompt-hardness mix changes: from `at` onward every prompt's
    /// latent difficulty is offset by `delta` (clamped to `[0, 1]`). Harder
    /// prompts lower discriminator confidence, raising the cascade's
    /// deferral rate (paper Eq. 3's `f(t)` shifts up) at constant QPS.
    DifficultyShift {
        /// Shift instant.
        at: SimTime,
        /// Difficulty offset in `[-1, 1]` active from `at` (replaces any
        /// earlier offset; it does not stack).
        delta: f64,
    },
}

impl Perturbation {
    /// The instant this perturbation begins to act.
    pub fn onset(&self) -> SimTime {
        match *self {
            Perturbation::WorkerFail { at, .. }
            | Perturbation::WorkerRecover { at, .. }
            | Perturbation::DemandShift { at, .. }
            | Perturbation::DifficultyShift { at, .. } => at,
            Perturbation::FlashCrowd { start, .. } => start,
        }
    }

    /// Short human-readable kind name (used in experiment tables).
    pub fn kind(&self) -> &'static str {
        match self {
            Perturbation::WorkerFail { .. } => "worker-fail",
            Perturbation::WorkerRecover { .. } => "worker-recover",
            Perturbation::FlashCrowd { .. } => "flash-crowd",
            Perturbation::DemandShift { .. } => "demand-shift",
            Perturbation::DifficultyShift { .. } => "difficulty-shift",
        }
    }
}

/// A capacity event derived from the worker-churn perturbations, in the
/// form the run paths inject into their event loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityEvent {
    /// This many workers fail-stop.
    Fail(usize),
    /// This many failed workers rejoin.
    Recover(usize),
}

/// One lowered scenario event, ready for injection into a run path's event
/// loop (demand perturbations are not lowered — they live in
/// [`Scenario::effective_trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioEvent {
    /// Worker churn.
    Capacity(CapacityEvent),
    /// The active prompt-difficulty offset becomes this value.
    Difficulty(f64),
}

/// An invalid [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A demand multiplier was non-positive or non-finite.
    InvalidFactor {
        /// The offending multiplier.
        factor: f64,
    },
    /// A difficulty offset fell outside `[-1, 1]` or was non-finite.
    InvalidDelta {
        /// The offending offset.
        delta: f64,
    },
    /// A churn perturbation named zero workers.
    ZeroWorkers,
    /// At some instant the surviving pool would drop below two workers
    /// (the serving system needs one worker per tier).
    PoolExhausted {
        /// When the pool would become too small.
        at: SimTime,
        /// Workers that would remain alive.
        alive: usize,
    },
    /// A recovery names more workers than are currently failed.
    RecoverWithoutFailure {
        /// When the invalid recovery fires.
        at: SimTime,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidFactor { factor } => {
                write!(f, "demand multiplier must be positive, got {factor}")
            }
            ScenarioError::InvalidDelta { delta } => {
                write!(f, "difficulty offset must lie in [-1, 1], got {delta}")
            }
            ScenarioError::ZeroWorkers => {
                write!(f, "worker churn must name at least one worker")
            }
            ScenarioError::PoolExhausted { at, alive } => write!(
                f,
                "at {at} only {alive} workers would remain (need at least 2, one per tier)"
            ),
            ScenarioError::RecoverWithoutFailure { at } => {
                write!(f, "recovery at {at} names more workers than have failed")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A named stress scenario: a base demand trace plus timed perturbations.
///
/// Build one with [`Scenario::new`] and the chained perturbation methods,
/// then hand the *same value* to `diffserve_core::run_scenario` and
/// `diffserve_cluster::run_cluster_scenario` — both replay the identical
/// arrival stream, capacity churn, and difficulty schedule.
///
/// # Examples
///
/// ```
/// use diffserve_trace::{Scenario, Trace};
/// use diffserve_simkit::time::{SimDuration, SimTime};
///
/// let base = Trace::constant(4.0, SimDuration::from_secs(100))?;
/// let s = Scenario::new("flash", base)
///     .flash_crowd(
///         SimTime::from_secs(30),
///         SimDuration::from_secs(10),
///         SimDuration::from_secs(20),
///         3.0,
///     );
/// let eff = s.effective_trace();
/// // Before the crowd the rate is the base rate; at full amplitude it is 3x.
/// assert_eq!(eff.qps_at(SimTime::from_secs(10)), 4.0);
/// assert_eq!(eff.qps_at(SimTime::from_secs(50)), 12.0);
/// # Ok::<(), diffserve_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    base: Trace,
    perturbations: Vec<Perturbation>,
}

impl Scenario {
    /// Creates a scenario with no perturbations (replays `base` unchanged).
    pub fn new(name: impl Into<String>, base: Trace) -> Self {
        Scenario {
            name: name.into(),
            base,
            perturbations: Vec::new(),
        }
    }

    /// Scenario name (used in reports and experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unperturbed base trace.
    pub fn base(&self) -> &Trace {
        &self.base
    }

    /// All perturbations, in insertion order.
    pub fn perturbations(&self) -> &[Perturbation] {
        &self.perturbations
    }

    /// Onset times of every perturbation (seconds), sorted ascending —
    /// what recovery-time measurements anchor to.
    pub fn perturbation_onsets(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .perturbations
            .iter()
            .map(|p| p.onset().as_secs_f64())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite onsets"));
        v
    }

    /// Appends an arbitrary perturbation.
    pub fn with(mut self, p: Perturbation) -> Self {
        self.perturbations.push(p);
        self
    }

    /// `count` workers fail-stop at `at`.
    pub fn worker_fail(self, at: SimTime, count: usize) -> Self {
        self.with(Perturbation::WorkerFail { at, count })
    }

    /// `count` failed workers rejoin at `at`.
    pub fn worker_recover(self, at: SimTime, count: usize) -> Self {
        self.with(Perturbation::WorkerRecover { at, count })
    }

    /// A flash crowd: ramp to ×`factor` over `ramp`, hold for `hold`, ramp
    /// back down over `ramp`.
    pub fn flash_crowd(
        self,
        start: SimTime,
        ramp: SimDuration,
        hold: SimDuration,
        factor: f64,
    ) -> Self {
        self.with(Perturbation::FlashCrowd {
            start,
            ramp,
            hold,
            factor,
        })
    }

    /// A persistent ×`factor` demand shift from `at` onward.
    pub fn demand_shift(self, at: SimTime, factor: f64) -> Self {
        self.with(Perturbation::DemandShift { at, factor })
    }

    /// A prompt-difficulty offset of `delta` active from `at` onward.
    pub fn difficulty_shift(self, at: SimTime, delta: f64) -> Self {
        self.with(Perturbation::DifficultyShift { at, delta })
    }

    /// A correlated-failure sequence: `initial` workers fail-stop at `at`,
    /// then the fault propagates — `follow_on` further single-worker
    /// failures fire, staggered evenly across the `window` that follows.
    /// This models cascading faults (a rack losing power, a bad rollout
    /// marching through a fleet) where failures cluster in time instead of
    /// striking independently; a zero `window` collapses every follow-on
    /// into the initial instant.
    ///
    /// # Examples
    ///
    /// ```
    /// use diffserve_trace::{Scenario, Trace};
    /// use diffserve_simkit::time::{SimDuration, SimTime};
    ///
    /// let base = Trace::constant(4.0, SimDuration::from_secs(120))?;
    /// let s = Scenario::new("cascade", base).cascading_failure(
    ///     SimTime::from_secs(30),
    ///     1,
    ///     3,
    ///     SimDuration::from_secs(12),
    /// );
    /// // One initial failure plus three staggered follow-ons at 34/38/42 s.
    /// assert_eq!(s.capacity_events().len(), 4);
    /// assert_eq!(s.perturbation_onsets(), vec![30.0, 34.0, 38.0, 42.0]);
    /// s.validate(8)?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn cascading_failure(
        self,
        at: SimTime,
        initial: usize,
        follow_on: usize,
        window: SimDuration,
    ) -> Self {
        let mut s = self.worker_fail(at, initial);
        if follow_on == 0 {
            return s;
        }
        let step = SimDuration::from_secs_f64(window.as_secs_f64() / follow_on as f64);
        for i in 1..=follow_on {
            s = s.worker_fail(at + step * i as u64, 1);
        }
        s
    }

    /// Checks the scenario against a worker pool of `num_workers`.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: non-positive demand factors,
    /// out-of-range difficulty offsets, zero-worker churn, recoveries that
    /// exceed the failed count, or churn that would leave fewer than two
    /// workers alive at any instant.
    pub fn validate(&self, num_workers: usize) -> Result<(), ScenarioError> {
        for p in &self.perturbations {
            match *p {
                Perturbation::FlashCrowd { factor, .. }
                | Perturbation::DemandShift { factor, .. } => {
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(ScenarioError::InvalidFactor { factor });
                    }
                }
                Perturbation::DifficultyShift { delta, .. } => {
                    if !delta.is_finite() || !(-1.0..=1.0).contains(&delta) {
                        return Err(ScenarioError::InvalidDelta { delta });
                    }
                }
                Perturbation::WorkerFail { count, .. }
                | Perturbation::WorkerRecover { count, .. } => {
                    if count == 0 {
                        return Err(ScenarioError::ZeroWorkers);
                    }
                }
            }
        }
        // Walk the capacity timeline tracking the failed count.
        let mut failed = 0usize;
        for (at, ev) in self.capacity_events() {
            match ev {
                CapacityEvent::Fail(n) => {
                    failed += n;
                    let alive = num_workers.saturating_sub(failed);
                    if alive < 2 {
                        return Err(ScenarioError::PoolExhausted { at, alive });
                    }
                }
                CapacityEvent::Recover(n) => {
                    if n > failed {
                        return Err(ScenarioError::RecoverWithoutFailure { at });
                    }
                    failed -= n;
                }
            }
        }
        Ok(())
    }

    /// The demand multiplier active at time `t`: the product of every
    /// [`Perturbation::FlashCrowd`] envelope and [`Perturbation::DemandShift`]
    /// factor covering `t`.
    pub fn demand_multiplier(&self, t: SimTime) -> f64 {
        let mut m = 1.0;
        for p in &self.perturbations {
            match *p {
                Perturbation::FlashCrowd {
                    start,
                    ramp,
                    hold,
                    factor,
                } => {
                    if t < start {
                        continue;
                    }
                    let dt = t.saturating_since(start).as_secs_f64();
                    let ramp_s = ramp.as_secs_f64();
                    let hold_s = hold.as_secs_f64();
                    let envelope = if dt < ramp_s {
                        1.0 + (factor - 1.0) * dt / ramp_s
                    } else if dt < ramp_s + hold_s {
                        factor
                    } else if dt < 2.0 * ramp_s + hold_s {
                        factor - (factor - 1.0) * (dt - ramp_s - hold_s) / ramp_s
                    } else {
                        1.0
                    };
                    m *= envelope;
                }
                Perturbation::DemandShift { at, factor } if t >= at => m *= factor,
                _ => {}
            }
        }
        m
    }

    /// The base trace with every demand perturbation baked in, evaluated at
    /// bin midpoints. This is the trace the run paths draw arrivals from, so
    /// the simulator and the testbed see the identical offered load.
    pub fn effective_trace(&self) -> Trace {
        let bw = self.base.bin_width();
        let half = SimDuration::from_secs_f64(bw.as_secs_f64() / 2.0);
        let bins: Vec<f64> = self
            .base
            .bins()
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let mid = SimTime::ZERO + bw * i as u64 + half;
                q * self.demand_multiplier(mid)
            })
            .collect();
        Trace::from_qps(bins, bw).expect("base trace valid, multipliers positive")
    }

    /// Worker-churn events sorted by time (ties keep insertion order).
    pub fn capacity_events(&self) -> Vec<(SimTime, CapacityEvent)> {
        let mut events: Vec<(SimTime, CapacityEvent)> = self
            .perturbations
            .iter()
            .filter_map(|p| match *p {
                Perturbation::WorkerFail { at, count } => Some((at, CapacityEvent::Fail(count))),
                Perturbation::WorkerRecover { at, count } => {
                    Some((at, CapacityEvent::Recover(count)))
                }
                _ => None,
            })
            .collect();
        events.sort_by_key(|&(at, _)| at);
        events
    }

    /// The full lowered event timeline (capacity churn + difficulty
    /// offsets) sorted by time — what both run paths inject into their
    /// event loops so they replay identical perturbations.
    pub fn timeline(&self) -> Vec<(SimTime, ScenarioEvent)> {
        let mut events: Vec<(SimTime, ScenarioEvent)> = self
            .capacity_events()
            .into_iter()
            .map(|(at, ev)| (at, ScenarioEvent::Capacity(ev)))
            .collect();
        events.extend(
            self.difficulty_events()
                .into_iter()
                .map(|(at, d)| (at, ScenarioEvent::Difficulty(d))),
        );
        events.sort_by_key(|&(at, _)| at);
        events
    }

    /// Difficulty-offset events sorted by time: `(at, delta)` means the
    /// active offset becomes `delta` at `at` (later events replace earlier
    /// ones; offsets do not stack).
    pub fn difficulty_events(&self) -> Vec<(SimTime, f64)> {
        let mut events: Vec<(SimTime, f64)> = self
            .perturbations
            .iter()
            .filter_map(|p| match *p {
                Perturbation::DifficultyShift { at, delta } => Some((at, delta)),
                _ => None,
            })
            .collect();
        events.sort_by_key(|&(at, _)| at);
        events
    }
}

/// The standard named scenario library used by the `scenarios` bench binary
/// and the stress-test suite: perturbation times are placed at fractions of
/// the base trace so any base works.
///
/// Returns seven scenarios: `steady` (control), `flash-crowd` (×2.5 spike),
/// `worker-failure` (2 workers fail then recover), `double-failure` (two
/// staggered 2-worker failures, no recovery), `cascading-failure` (one
/// failure whose fault propagates to two more workers across a short
/// window, then all recover), `demand-shock` (persistent ×1.8 shift), and
/// `hard-prompts` (difficulty +0.25).
///
/// # Panics
///
/// Panics if `num_workers < 6` (the churn scenarios fail 4 workers and must
/// leave at least two alive).
pub fn standard_scenarios(base: &Trace, num_workers: usize) -> Vec<Scenario> {
    assert!(
        num_workers >= 6,
        "standard scenarios fail up to 4 workers; need >= 6, got {num_workers}"
    );
    let dur = base.duration().as_secs_f64();
    let at = |frac: f64| SimTime::from_secs_f64(dur * frac);
    let secs = |frac: f64| SimDuration::from_secs_f64(dur * frac);
    let scenarios = vec![
        Scenario::new("steady", base.clone()),
        Scenario::new("flash-crowd", base.clone()).flash_crowd(
            at(0.35),
            secs(0.05),
            secs(0.2),
            2.5,
        ),
        Scenario::new("worker-failure", base.clone())
            .worker_fail(at(0.3), 2)
            .worker_recover(at(0.65), 2),
        Scenario::new("double-failure", base.clone())
            .worker_fail(at(0.3), 2)
            .worker_fail(at(0.5), 2),
        Scenario::new("cascading-failure", base.clone())
            .cascading_failure(at(0.3), 1, 2, secs(0.15))
            .worker_recover(at(0.7), 3),
        Scenario::new("demand-shock", base.clone()).demand_shift(at(0.5), 1.8),
        Scenario::new("hard-prompts", base.clone()).difficulty_shift(at(0.35), 0.25),
    ];
    for s in &scenarios {
        s.validate(num_workers)
            .expect("library scenarios are valid");
    }
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(n: u64) -> SimDuration {
        SimDuration::from_secs(n)
    }

    fn base() -> Trace {
        Trace::constant(4.0, secs(100)).unwrap()
    }

    #[test]
    fn steady_scenario_replays_base_unchanged() {
        let s = Scenario::new("steady", base());
        assert_eq!(s.effective_trace(), base());
        assert!(s.capacity_events().is_empty());
        assert!(s.difficulty_events().is_empty());
        assert_eq!(s.name(), "steady");
    }

    #[test]
    fn flash_crowd_envelope_ramps_and_returns() {
        let s = Scenario::new("flash", base()).flash_crowd(
            SimTime::from_secs(30),
            secs(10),
            secs(20),
            3.0,
        );
        assert_eq!(s.demand_multiplier(SimTime::from_secs(29)), 1.0);
        // Mid-ramp: halfway to 3x.
        assert!((s.demand_multiplier(SimTime::from_secs(35)) - 2.0).abs() < 1e-9);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(45)), 3.0);
        // Mid-down-ramp.
        assert!((s.demand_multiplier(SimTime::from_secs(65)) - 2.0).abs() < 1e-9);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(75)), 1.0);
    }

    #[test]
    fn zero_ramp_is_a_step() {
        let s = Scenario::new("step", base()).flash_crowd(
            SimTime::from_secs(50),
            SimDuration::ZERO,
            secs(10),
            2.0,
        );
        assert_eq!(s.demand_multiplier(SimTime::from_secs(49)), 1.0);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(55)), 2.0);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(61)), 1.0);
    }

    #[test]
    fn demand_shift_is_persistent() {
        let s = Scenario::new("shock", base()).demand_shift(SimTime::from_secs(50), 1.5);
        let eff = s.effective_trace();
        assert_eq!(eff.qps_at(SimTime::from_secs(10)), 4.0);
        assert_eq!(eff.qps_at(SimTime::from_secs(99)), 6.0);
        // Expected queries grow by exactly the shifted half.
        let expected = 4.0 * 50.0 + 6.0 * 50.0;
        assert!((eff.expected_queries() - expected).abs() < 1e-6);
    }

    #[test]
    fn perturbations_compose_multiplicatively() {
        let s = Scenario::new("both", base())
            .demand_shift(SimTime::from_secs(20), 2.0)
            .flash_crowd(SimTime::from_secs(40), SimDuration::ZERO, secs(10), 3.0);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(45)), 6.0);
    }

    #[test]
    fn capacity_events_sorted_by_time() {
        let s = Scenario::new("churn", base())
            .worker_recover(SimTime::from_secs(80), 1)
            .worker_fail(SimTime::from_secs(20), 1);
        let ev = s.capacity_events();
        assert_eq!(
            ev,
            vec![
                (SimTime::from_secs(20), CapacityEvent::Fail(1)),
                (SimTime::from_secs(80), CapacityEvent::Recover(1)),
            ]
        );
        assert_eq!(s.perturbation_onsets(), vec![20.0, 80.0]);
    }

    #[test]
    fn validate_rejects_pool_exhaustion() {
        let s = Scenario::new("bad", base()).worker_fail(SimTime::from_secs(10), 7);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::PoolExhausted { alive: 1, .. })
        ));
        // The same churn is fine on a bigger pool.
        assert!(s.validate(16).is_ok());
    }

    #[test]
    fn validate_rejects_recover_without_failure() {
        let s = Scenario::new("bad", base()).worker_recover(SimTime::from_secs(10), 1);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::RecoverWithoutFailure { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let s = Scenario::new("bad", base()).demand_shift(SimTime::from_secs(1), 0.0);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::InvalidFactor { .. })
        ));
        let s = Scenario::new("bad", base()).difficulty_shift(SimTime::from_secs(1), 1.5);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::InvalidDelta { .. })
        ));
        let s = Scenario::new("bad", base()).worker_fail(SimTime::from_secs(1), 0);
        assert_eq!(s.validate(8), Err(ScenarioError::ZeroWorkers));
    }

    #[test]
    fn difficulty_events_replace_not_stack() {
        let s = Scenario::new("hard", base())
            .difficulty_shift(SimTime::from_secs(60), 0.1)
            .difficulty_shift(SimTime::from_secs(30), 0.3);
        assert_eq!(
            s.difficulty_events(),
            vec![(SimTime::from_secs(30), 0.3), (SimTime::from_secs(60), 0.1)]
        );
    }

    #[test]
    fn standard_library_is_valid_and_named() {
        let scenarios = standard_scenarios(&base(), 8);
        assert_eq!(scenarios.len(), 7);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"worker-failure"));
        assert!(names.contains(&"flash-crowd"));
        assert!(names.contains(&"cascading-failure"));
        for s in &scenarios {
            assert!(s.validate(8).is_ok(), "{} invalid", s.name());
        }
    }

    #[test]
    fn cascading_failure_staggers_follow_ons_inside_the_window() {
        let s = Scenario::new("cascade", base()).cascading_failure(
            SimTime::from_secs(20),
            2,
            4,
            secs(20),
        );
        let ev = s.capacity_events();
        assert_eq!(ev.len(), 5);
        assert_eq!(ev[0], (SimTime::from_secs(20), CapacityEvent::Fail(2)));
        for (i, &(at, e)) in ev.iter().enumerate().skip(1) {
            assert_eq!(e, CapacityEvent::Fail(1));
            assert_eq!(at, SimTime::from_secs(20 + 5 * i as u64));
        }
        // 6 correlated failures exhaust an 8-pool at the last follow-on...
        assert!(matches!(
            s.validate(7),
            Err(ScenarioError::PoolExhausted { .. })
        ));
        // ...but a larger fleet absorbs the cascade.
        assert!(s.validate(8).is_ok());
    }

    #[test]
    fn cascading_failure_zero_window_or_no_follow_ons() {
        let s = Scenario::new("burst", base()).cascading_failure(
            SimTime::from_secs(10),
            1,
            2,
            SimDuration::ZERO,
        );
        // Everything lands at the initial instant.
        assert!(s
            .capacity_events()
            .iter()
            .all(|&(at, _)| at == SimTime::from_secs(10)));
        let s =
            Scenario::new("solo", base()).cascading_failure(SimTime::from_secs(10), 2, 0, secs(30));
        assert_eq!(s.capacity_events().len(), 1);
    }

    #[test]
    fn error_display() {
        let e = ScenarioError::PoolExhausted {
            at: SimTime::from_secs(5),
            alive: 1,
        };
        assert!(format!("{e}").contains("1 workers"));
        assert!(format!("{}", ScenarioError::ZeroWorkers).contains("at least one"));
    }
}
