//! Scenarios: a base demand trace composed with timed perturbations.
//!
//! The paper evaluates DiffServe on smoothly varying demand (the Azure
//! Functions trace, §4.1), but a production serving system also faces
//! *capacity churn* (GPU workers failing and rejoining), *flash crowds*
//! (multiplicative demand spikes with steep ramps), *demand shocks*
//! (persistent level shifts), and *difficulty shifts* (the prompt-hardness
//! mix changing, which raises the cascade's deferral rate even at constant
//! QPS). A [`Scenario`] describes all of these declaratively so that the
//! discrete-event simulator (`diffserve_core::run_scenario`) and the
//! thread-based testbed (`diffserve_cluster::run_cluster_scenario`) can
//! replay exactly the same stress from one value.
//!
//! Demand-side perturbations ([`Perturbation::FlashCrowd`],
//! [`Perturbation::DemandShift`]) are *baked into the arrival stream* via
//! [`Scenario::effective_trace`]; capacity and difficulty perturbations are
//! exposed as timed schedules ([`Scenario::capacity_events`],
//! [`Scenario::difficulty_events`]) that the run paths inject into their
//! event loops.
//!
//! # Examples
//!
//! ```
//! use diffserve_trace::{Scenario, Trace};
//! use diffserve_simkit::time::{SimDuration, SimTime};
//!
//! let base = Trace::constant(6.0, SimDuration::from_secs(120))?;
//! let scenario = Scenario::new("failover", base)
//!     .worker_fail(SimTime::from_secs(40), 2)
//!     .worker_recover(SimTime::from_secs(80), 2);
//! scenario.validate(8)?;
//! assert_eq!(scenario.capacity_events().len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use diffserve_simkit::rng::{derive_seed, seeded_rng};
use diffserve_simkit::time::{SimDuration, SimTime};
use rand::Rng;

use crate::trace::Trace;

/// RNG stream tag for hazard draws, so the fault engine never shares a
/// stream with arrival generation or routing.
const HAZARD_SEED_STREAM: u64 = 0x4A7A;

/// One timed perturbation applied on top of a scenario's base trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Perturbation {
    /// `count` workers fail-stop at `at`: their queued and in-flight work is
    /// retried elsewhere and the controller must re-solve against the
    /// shrunken pool.
    WorkerFail {
        /// Failure instant.
        at: SimTime,
        /// Number of workers that fail (highest-indexed alive workers).
        count: usize,
    },
    /// `count` previously failed workers rejoin at `at`, paying the model
    /// load delay before serving again.
    WorkerRecover {
        /// Recovery instant.
        at: SimTime,
        /// Number of workers that rejoin (lowest-indexed failed workers).
        count: usize,
    },
    /// A multiplicative rate spike: demand ramps from ×1 to ×`factor` over
    /// `ramp`, holds at ×`factor` for `hold`, then ramps back down over
    /// `ramp`.
    FlashCrowd {
        /// Start of the up-ramp.
        start: SimTime,
        /// Up- and down-ramp duration (zero = step).
        ramp: SimDuration,
        /// Duration at full amplitude.
        hold: SimDuration,
        /// Peak demand multiplier (> 0; > 1 for a crowd, < 1 for an outage
        /// of an upstream traffic source).
        factor: f64,
    },
    /// A persistent demand level change: every rate from `at` onward is
    /// multiplied by `factor`.
    DemandShift {
        /// Shift instant.
        at: SimTime,
        /// Demand multiplier applied from `at` to the trace end.
        factor: f64,
    },
    /// The prompt-hardness mix changes: from `at` onward every prompt's
    /// latent difficulty is offset by `delta` (clamped to `[0, 1]`). Harder
    /// prompts lower discriminator confidence, raising the cascade's
    /// deferral rate (paper Eq. 3's `f(t)` shifts up) at constant QPS.
    DifficultyShift {
        /// Shift instant.
        at: SimTime,
        /// Difficulty offset in `[-1, 1]` active from `at` (replaces any
        /// earlier offset; it does not stack).
        delta: f64,
    },
    /// `count` workers degrade at `at`: they stay alive and keep serving,
    /// but every batch they execute takes `slowdown`× its nameplate
    /// latency (a thermally throttled GPU, a noisy neighbor, a sick
    /// straggler). Unlike [`Perturbation::WorkerFail`], no work is lost —
    /// it just drains slower — and the controller should re-solve against
    /// the fleet's *effective* capacity rather than its nameplate.
    WorkerDegrade {
        /// Degradation instant.
        at: SimTime,
        /// Number of workers that degrade (lowest-indexed healthy
        /// workers). Best-effort: if fewer healthy workers exist at `at`,
        /// only those degrade, and the run's incident log records the
        /// count actually applied (a strict rejection here would falsely
        /// invalidate legitimately recorded hazard logs, since a fail-stop
        /// can erase a degradation mid-timeline).
        count: usize,
        /// Service-time multiplier (`>= 1`; `2.0` = half speed).
        slowdown: f64,
    },
    /// `count` previously degraded workers return to nameplate speed at
    /// `at`.
    WorkerRestore {
        /// Restoration instant.
        at: SimTime,
        /// Number of workers restored (lowest-indexed degraded workers).
        count: usize,
    },
    /// A style-shift: from `start` for `duration`, a trending add-on
    /// module captures `share` of all add-on-carrying queries, displacing
    /// the steady-state popularity ranking. If the trending module is not
    /// already resident in the workers' module caches, the surge thrashes
    /// them — every cache must swap it in at once. Like the demand-side
    /// perturbations this is baked into the arrival stream (via the
    /// session's add-on draw), not lowered into the event loop.
    StyleShift {
        /// Start of the trend.
        start: SimTime,
        /// How long the trend lasts.
        duration: SimDuration,
        /// Catalog id of the trending module.
        module: usize,
        /// Fraction of adopting queries captured, in `(0, 1]`.
        share: f64,
    },
}

impl Perturbation {
    /// The instant this perturbation begins to act.
    pub fn onset(&self) -> SimTime {
        match *self {
            Perturbation::WorkerFail { at, .. }
            | Perturbation::WorkerRecover { at, .. }
            | Perturbation::DemandShift { at, .. }
            | Perturbation::DifficultyShift { at, .. }
            | Perturbation::WorkerDegrade { at, .. }
            | Perturbation::WorkerRestore { at, .. } => at,
            Perturbation::FlashCrowd { start, .. } | Perturbation::StyleShift { start, .. } => {
                start
            }
        }
    }

    /// Short human-readable kind name (used in experiment tables).
    pub fn kind(&self) -> &'static str {
        match self {
            Perturbation::WorkerFail { .. } => "worker-fail",
            Perturbation::WorkerRecover { .. } => "worker-recover",
            Perturbation::FlashCrowd { .. } => "flash-crowd",
            Perturbation::DemandShift { .. } => "demand-shift",
            Perturbation::DifficultyShift { .. } => "difficulty-shift",
            Perturbation::WorkerDegrade { .. } => "worker-degrade",
            Perturbation::WorkerRestore { .. } => "worker-restore",
            Perturbation::StyleShift { .. } => "style-shift",
        }
    }
}

/// A capacity event derived from the worker-churn and degradation
/// perturbations, in the form the run paths inject into their event loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityEvent {
    /// This many workers fail-stop.
    Fail(usize),
    /// This many failed workers rejoin.
    Recover(usize),
    /// This many healthy workers degrade to `slowdown`× service times.
    Degrade(usize, f64),
    /// This many degraded workers return to nameplate speed.
    Restore(usize),
}

/// One lowered scenario event, ready for injection into a run path's event
/// loop (demand perturbations are not lowered — they live in
/// [`Scenario::effective_trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioEvent {
    /// Worker churn.
    Capacity(CapacityEvent),
    /// The active prompt-difficulty offset becomes this value.
    Difficulty(f64),
}

impl ScenarioEvent {
    /// State-independent validity of one lowered event: capacity counts
    /// must be non-zero, slowdowns finite and `>= 1`, difficulty offsets
    /// finite and in `[-1, 1]`. Both backends run this before their
    /// state-dependent injection checks (pool floor, recover/restore
    /// accounting), so the rule lives in exactly one place.
    ///
    /// # Errors
    ///
    /// Returns the violated invariant as a typed [`ScenarioError`].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        match *self {
            ScenarioEvent::Capacity(
                CapacityEvent::Fail(0)
                | CapacityEvent::Recover(0)
                | CapacityEvent::Degrade(0, _)
                | CapacityEvent::Restore(0),
            ) => Err(ScenarioError::ZeroWorkers),
            ScenarioEvent::Capacity(CapacityEvent::Degrade(_, slowdown))
                if !slowdown.is_finite() || slowdown < 1.0 =>
            {
                Err(ScenarioError::InvalidSlowdown { slowdown })
            }
            ScenarioEvent::Difficulty(delta)
                if !delta.is_finite() || !(-1.0..=1.0).contains(&delta) =>
            {
                Err(ScenarioError::InvalidDelta { delta })
            }
            _ => Ok(()),
        }
    }
}

/// One perturbation a run path actually fired, stamped with its firing
/// instant — the unit of the incident record/replay loop. Both engines
/// append every fired perturbation (scheduled, injected, and hazard-drawn)
/// to the [`RunReport`]'s incident log, and
/// [`Scenario::from_incident_log`] turns a recorded log back into a
/// replayable scenario.
///
/// [`RunReport`]: https://docs.rs/diffserve-core
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Incident {
    /// When the perturbation fired.
    pub at: SimTime,
    /// What fired.
    pub event: ScenarioEvent,
}

/// A recorded perturbation history: what a run's fault engine actually did.
pub type IncidentLog = Vec<Incident>;

/// A load-correlated hazard process: instead of (only) scheduling
/// perturbations at fixed times, a scenario may carry a `Hazard` that draws
/// failures and degradations *online* from the fleet's instantaneous
/// utilization. The draw is seeded and deterministic given the utilization
/// trajectory, which the discrete-event simulator makes bit-reproducible.
///
/// Every rate is a per-second hazard rate for a fleet-level event; the
/// failure and degradation rates are boosted by
/// `1 + load_coupling × utilization`, so a saturated fleet faults more —
/// the "failures correlate with load" regime the ROADMAP calls for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hazard {
    /// Seed for the hazard's private RNG stream.
    pub seed: u64,
    /// How often the run paths evaluate the hazard. Checks are fired at
    /// odd half-phases (`(k + ½)·interval`) so they never collide with
    /// control ticks at whole multiples of the control interval.
    pub check_interval: SimDuration,
    /// Per-second baseline rate of a single-worker fail-stop at zero load.
    pub fail_rate: f64,
    /// Per-second baseline rate of a single-worker degradation at zero
    /// load.
    pub degrade_rate: f64,
    /// Per-second rate of one failed worker rejoining (not load-coupled).
    pub recover_rate: f64,
    /// Per-second rate of one degraded worker returning to nameplate speed
    /// (not load-coupled).
    pub restore_rate: f64,
    /// Slope of the load boost: the fail/degrade rates are multiplied by
    /// `1 + load_coupling × utilization`.
    pub load_coupling: f64,
    /// Smallest slowdown a drawn degradation applies (`>= 1`).
    pub min_slowdown: f64,
    /// Largest slowdown a drawn degradation applies (`>= min_slowdown`).
    pub max_slowdown: f64,
    /// Per-second rate of a hazard-drawn *difficulty shift* (boosted by the
    /// same `1 + load_coupling × utilization` factor as faults): a hot fleet
    /// can see its prompt-hardness mix drift, e.g. a trending style whose
    /// prompts defer more. A fired shift replaces the active difficulty
    /// offset with a value drawn uniformly from
    /// `[0, Hazard::MAX_DRAWN_DIFFICULTY]`. The default `0.0` disables the
    /// feature *and* its RNG draws, so hazard streams recorded before this
    /// knob existed replay bit-identically.
    pub difficulty_coupling: f64,
}

impl Default for Hazard {
    fn default() -> Self {
        Hazard {
            seed: 0x4A2D,
            check_interval: SimDuration::from_secs(2),
            fail_rate: 0.002,
            degrade_rate: 0.01,
            recover_rate: 0.02,
            restore_rate: 0.02,
            load_coupling: 4.0,
            min_slowdown: 1.5,
            max_slowdown: 3.0,
            difficulty_coupling: 0.0,
        }
    }
}

impl Hazard {
    /// Largest difficulty offset a hazard-drawn shift can set (the drawn
    /// delta is uniform in `[0, MAX_DRAWN_DIFFICULTY]`, well inside the
    /// `[-1, 1]` range [`ScenarioEvent::validate`] enforces).
    pub const MAX_DRAWN_DIFFICULTY: f64 = 0.5;

    /// Checks the hazard parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidHazard`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let bad = |reason| Err(ScenarioError::InvalidHazard { reason });
        if self.check_interval.is_zero() {
            return bad("check interval must be positive");
        }
        for r in [
            self.fail_rate,
            self.degrade_rate,
            self.recover_rate,
            self.restore_rate,
            self.load_coupling,
            self.difficulty_coupling,
        ] {
            if !r.is_finite() || r < 0.0 {
                return bad("rates and load coupling must be finite and non-negative");
            }
        }
        if !self.min_slowdown.is_finite() || self.min_slowdown < 1.0 {
            return bad("min slowdown must be finite and >= 1");
        }
        if !self.max_slowdown.is_finite() || self.max_slowdown < self.min_slowdown {
            return bad("max slowdown must be finite and >= min slowdown");
        }
        Ok(())
    }

    /// The elapsed time the *first* check covers: simulation start to
    /// [`Hazard::first_check`]. Both engines pass this as the first step's
    /// `dt` (later steps cover a full interval) — one source of truth for
    /// the half-phase, which the builder's tick-collision guard and replay
    /// bit-exactness both depend on.
    pub fn first_dt(&self) -> SimDuration {
        SimDuration::from_micros(self.check_interval.as_micros() / 2)
    }

    /// The first check instant: half a check interval in, and then every
    /// interval after — the half-phase keeps hazard checks off the control
    /// ticks so record/replay never has to re-order same-instant events.
    pub fn first_check(&self) -> SimTime {
        SimTime::ZERO + self.first_dt()
    }
}

/// Live fleet counts a hazard draw conditions on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetHealth {
    /// Workers currently alive (not fail-stopped).
    pub alive: usize,
    /// Workers currently fail-stopped.
    pub failed: usize,
    /// Alive workers currently running degraded.
    pub degraded: usize,
}

/// The runtime state of a [`Hazard`]: the spec plus its seeded RNG stream.
/// Each run path owns one and calls [`HazardProcess::step`] every check
/// interval with the fleet's instantaneous utilization.
#[derive(Debug, Clone)]
pub struct HazardProcess {
    spec: Hazard,
    rng: rand::rngs::StdRng,
}

impl HazardProcess {
    /// Builds the process from its spec, deriving the private RNG stream.
    pub fn new(spec: Hazard) -> Self {
        HazardProcess {
            rng: seeded_rng(derive_seed(spec.seed, HAZARD_SEED_STREAM)),
            spec,
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &Hazard {
        &self.spec
    }

    /// One hazard evaluation covering the `dt` that elapsed since the last
    /// check: draws at most one failure, one degradation, one recovery, and
    /// one restoration, plus — only when `difficulty_coupling > 0` — one
    /// difficulty shift. The draw count per step depends only on the spec,
    /// never on outcomes, so the RNG stream is identical across runs; only
    /// the utilization trajectory steers which events fire. Specs with the
    /// default `difficulty_coupling = 0.0` draw exactly the five uniforms
    /// they always did, so pre-existing hazard streams are unchanged.
    ///
    /// Guards keep the drawn events always-valid: failures never shrink the
    /// pool below two alive workers (one per tier), degradations only hit
    /// healthy workers, recoveries/restorations only fire when there is
    /// something to recover/restore, and drawn difficulty offsets stay in
    /// `[0, Hazard::MAX_DRAWN_DIFFICULTY]`.
    pub fn step(
        &mut self,
        dt: SimDuration,
        utilization: f64,
        fleet: FleetHealth,
    ) -> Vec<ScenarioEvent> {
        let dt = dt.as_secs_f64();
        let boost = 1.0 + self.spec.load_coupling * utilization.clamp(0.0, 1.0);
        let p = |rate: f64| 1.0 - (-rate * dt).exp();
        // Fixed draw order and count per step.
        let u_fail: f64 = self.rng.gen_range(0.0..1.0);
        let u_degrade: f64 = self.rng.gen_range(0.0..1.0);
        let u_slowdown: f64 = self.rng.gen_range(0.0..1.0);
        let u_recover: f64 = self.rng.gen_range(0.0..1.0);
        let u_restore: f64 = self.rng.gen_range(0.0..1.0);

        let mut events = Vec::new();
        let mut alive = fleet.alive;
        let mut degraded = fleet.degraded;
        if u_fail < p(self.spec.fail_rate * boost) && alive > 2 {
            events.push(ScenarioEvent::Capacity(CapacityEvent::Fail(1)));
            alive -= 1;
            // A degraded worker that dies stops counting as degraded.
            degraded = degraded.min(alive);
        }
        if u_degrade < p(self.spec.degrade_rate * boost) && degraded < alive {
            let slowdown = self.spec.min_slowdown
                + (self.spec.max_slowdown - self.spec.min_slowdown) * u_slowdown;
            events.push(ScenarioEvent::Capacity(CapacityEvent::Degrade(1, slowdown)));
        }
        if u_recover < p(self.spec.recover_rate) && fleet.failed > 0 {
            events.push(ScenarioEvent::Capacity(CapacityEvent::Recover(1)));
        }
        // Restoration conditions on the *pre-step* degraded count so a
        // degradation drawn this very step is not instantly undone.
        if u_restore < p(self.spec.restore_rate) && fleet.degraded.min(alive) > 0 {
            events.push(ScenarioEvent::Capacity(CapacityEvent::Restore(1)));
        }
        // Extra draws are gated on the knob so specs without it keep their
        // exact historical streams (replay bit-exactness).
        if self.spec.difficulty_coupling > 0.0 {
            let u_shift: f64 = self.rng.gen_range(0.0..1.0);
            let u_delta: f64 = self.rng.gen_range(0.0..1.0);
            if u_shift < p(self.spec.difficulty_coupling * boost) {
                events.push(ScenarioEvent::Difficulty(
                    Hazard::MAX_DRAWN_DIFFICULTY * u_delta,
                ));
            }
        }
        events
    }
}

/// An invalid [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A demand multiplier was non-positive or non-finite.
    InvalidFactor {
        /// The offending multiplier.
        factor: f64,
    },
    /// A difficulty offset fell outside `[-1, 1]` or was non-finite.
    InvalidDelta {
        /// The offending offset.
        delta: f64,
    },
    /// A churn perturbation named zero workers.
    ZeroWorkers,
    /// At some instant the surviving pool would drop below two workers
    /// (the serving system needs one worker per tier).
    PoolExhausted {
        /// When the pool would become too small.
        at: SimTime,
        /// Workers that would remain alive.
        alive: usize,
    },
    /// A recovery names more workers than are currently failed.
    RecoverWithoutFailure {
        /// When the invalid recovery fires.
        at: SimTime,
    },
    /// A degradation's slowdown was non-finite or below 1.
    InvalidSlowdown {
        /// The offending slowdown.
        slowdown: f64,
    },
    /// A restoration names more workers than are currently degraded.
    RestoreWithoutDegrade {
        /// When the invalid restoration fires.
        at: SimTime,
    },
    /// The attached hazard process has invalid parameters.
    InvalidHazard {
        /// Which invariant the hazard violates.
        reason: &'static str,
    },
    /// A style-shift share fell outside `(0, 1]` or was non-finite.
    InvalidShare {
        /// The offending share.
        share: f64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidFactor { factor } => {
                write!(f, "demand multiplier must be positive, got {factor}")
            }
            ScenarioError::InvalidDelta { delta } => {
                write!(f, "difficulty offset must lie in [-1, 1], got {delta}")
            }
            ScenarioError::ZeroWorkers => {
                write!(f, "worker churn must name at least one worker")
            }
            ScenarioError::PoolExhausted { at, alive } => write!(
                f,
                "at {at} only {alive} workers would remain (need at least 2, one per tier)"
            ),
            ScenarioError::RecoverWithoutFailure { at } => {
                write!(f, "recovery at {at} names more workers than have failed")
            }
            ScenarioError::InvalidSlowdown { slowdown } => {
                write!(f, "slowdown must be finite and >= 1, got {slowdown}")
            }
            ScenarioError::RestoreWithoutDegrade { at } => {
                write!(
                    f,
                    "restoration at {at} names more workers than are degraded"
                )
            }
            ScenarioError::InvalidHazard { reason } => {
                write!(f, "invalid hazard process: {reason}")
            }
            ScenarioError::InvalidShare { share } => {
                write!(f, "style-shift share must lie in (0, 1], got {share}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A named stress scenario: a base demand trace plus timed perturbations.
///
/// Build one with [`Scenario::new`] and the chained perturbation methods,
/// then hand the *same value* to `diffserve_core::run_scenario` and
/// `diffserve_cluster::run_cluster_scenario` — both replay the identical
/// arrival stream, capacity churn, and difficulty schedule.
///
/// # Examples
///
/// ```
/// use diffserve_trace::{Scenario, Trace};
/// use diffserve_simkit::time::{SimDuration, SimTime};
///
/// let base = Trace::constant(4.0, SimDuration::from_secs(100))?;
/// let s = Scenario::new("flash", base)
///     .flash_crowd(
///         SimTime::from_secs(30),
///         SimDuration::from_secs(10),
///         SimDuration::from_secs(20),
///         3.0,
///     );
/// let eff = s.effective_trace();
/// // Before the crowd the rate is the base rate; at full amplitude it is 3x.
/// assert_eq!(eff.qps_at(SimTime::from_secs(10)), 4.0);
/// assert_eq!(eff.qps_at(SimTime::from_secs(50)), 12.0);
/// # Ok::<(), diffserve_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    base: Trace,
    perturbations: Vec<Perturbation>,
    hazard: Option<Hazard>,
}

impl Scenario {
    /// Creates a scenario with no perturbations (replays `base` unchanged).
    pub fn new(name: impl Into<String>, base: Trace) -> Self {
        Scenario {
            name: name.into(),
            base,
            perturbations: Vec::new(),
            hazard: None,
        }
    }

    /// Rebuilds a replayable scenario from a recorded [`IncidentLog`]: every
    /// logged perturbation becomes a timed scheduled perturbation, and no
    /// hazard is attached — the randomness already collapsed into the log.
    /// On the discrete-event simulator, replaying the log of a seeded
    /// hazard run reproduces the original [`RunReport`] bit-exactly, which
    /// turns "a weird run happened" into a regression test.
    ///
    /// `base` must be the trace the original run drew arrivals from (for a
    /// scenario with demand perturbations, its
    /// [`effective_trace`](Scenario::effective_trace) — or use
    /// [`Scenario::replay`] to keep the demand perturbations symbolic).
    ///
    /// [`RunReport`]: https://docs.rs/diffserve-core
    pub fn from_incident_log(name: impl Into<String>, base: Trace, log: &[Incident]) -> Self {
        let mut s = Scenario::new(name, base);
        for inc in log {
            s = s.with(match inc.event {
                ScenarioEvent::Capacity(CapacityEvent::Fail(count)) => {
                    Perturbation::WorkerFail { at: inc.at, count }
                }
                ScenarioEvent::Capacity(CapacityEvent::Recover(count)) => {
                    Perturbation::WorkerRecover { at: inc.at, count }
                }
                ScenarioEvent::Capacity(CapacityEvent::Degrade(count, slowdown)) => {
                    Perturbation::WorkerDegrade {
                        at: inc.at,
                        count,
                        slowdown,
                    }
                }
                ScenarioEvent::Capacity(CapacityEvent::Restore(count)) => {
                    Perturbation::WorkerRestore { at: inc.at, count }
                }
                ScenarioEvent::Difficulty(delta) => {
                    Perturbation::DifficultyShift { at: inc.at, delta }
                }
            });
        }
        s
    }

    /// The replay counterpart of running *this* scenario: keeps the base
    /// trace and the demand-side perturbations (flash crowds, demand
    /// shifts — they are baked into the arrival stream, not logged), drops
    /// every capacity/difficulty perturbation and the hazard, and schedules
    /// the recorded log instead.
    pub fn replay(&self, log: &[Incident]) -> Scenario {
        let mut s = Scenario::new(format!("{}-replay", self.name), self.base.clone());
        for p in &self.perturbations {
            if matches!(
                p,
                Perturbation::FlashCrowd { .. }
                    | Perturbation::DemandShift { .. }
                    | Perturbation::StyleShift { .. }
            ) {
                s = s.with(p.clone());
            }
        }
        let demand_only = s;
        let mut replayed =
            Scenario::from_incident_log(demand_only.name.clone(), demand_only.base.clone(), log);
        // Prepend the demand perturbations (order within the vec does not
        // matter for demand multipliers; they compose multiplicatively).
        let mut perturbations = demand_only.perturbations;
        perturbations.append(&mut replayed.perturbations);
        replayed.perturbations = perturbations;
        replayed
    }

    /// Scenario name (used in reports and experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unperturbed base trace.
    pub fn base(&self) -> &Trace {
        &self.base
    }

    /// All perturbations, in insertion order.
    pub fn perturbations(&self) -> &[Perturbation] {
        &self.perturbations
    }

    /// Onset times of every perturbation (seconds), sorted ascending —
    /// what recovery-time measurements anchor to.
    pub fn perturbation_onsets(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .perturbations
            .iter()
            .map(|p| p.onset().as_secs_f64())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite onsets"));
        v
    }

    /// Appends an arbitrary perturbation.
    pub fn with(mut self, p: Perturbation) -> Self {
        self.perturbations.push(p);
        self
    }

    /// `count` workers fail-stop at `at`.
    pub fn worker_fail(self, at: SimTime, count: usize) -> Self {
        self.with(Perturbation::WorkerFail { at, count })
    }

    /// `count` failed workers rejoin at `at`.
    pub fn worker_recover(self, at: SimTime, count: usize) -> Self {
        self.with(Perturbation::WorkerRecover { at, count })
    }

    /// `count` workers degrade to `slowdown`× service times at `at`.
    pub fn worker_degrade(self, at: SimTime, count: usize, slowdown: f64) -> Self {
        self.with(Perturbation::WorkerDegrade {
            at,
            count,
            slowdown,
        })
    }

    /// `count` degraded workers return to nameplate speed at `at`.
    pub fn worker_restore(self, at: SimTime, count: usize) -> Self {
        self.with(Perturbation::WorkerRestore { at, count })
    }

    /// Attaches a load-correlated [`Hazard`] process: the run paths draw
    /// failures and degradations online from instantaneous utilization
    /// (seeded, deterministic on the simulator) and log everything that
    /// fires into the report's incident log.
    pub fn with_hazard(mut self, hazard: Hazard) -> Self {
        self.hazard = Some(hazard);
        self
    }

    /// The attached hazard process, if any.
    pub fn hazard(&self) -> Option<Hazard> {
        self.hazard
    }

    /// A flash crowd: ramp to ×`factor` over `ramp`, hold for `hold`, ramp
    /// back down over `ramp`.
    pub fn flash_crowd(
        self,
        start: SimTime,
        ramp: SimDuration,
        hold: SimDuration,
        factor: f64,
    ) -> Self {
        self.with(Perturbation::FlashCrowd {
            start,
            ramp,
            hold,
            factor,
        })
    }

    /// A persistent ×`factor` demand shift from `at` onward.
    pub fn demand_shift(self, at: SimTime, factor: f64) -> Self {
        self.with(Perturbation::DemandShift { at, factor })
    }

    /// A prompt-difficulty offset of `delta` active from `at` onward.
    pub fn difficulty_shift(self, at: SimTime, delta: f64) -> Self {
        self.with(Perturbation::DifficultyShift { at, delta })
    }

    /// A style-shift: for `duration` from `start`, add-on module `module`
    /// captures `share` of all add-on-carrying queries (a trending LoRA).
    pub fn style_shift(
        self,
        start: SimTime,
        duration: SimDuration,
        module: usize,
        share: f64,
    ) -> Self {
        self.with(Perturbation::StyleShift {
            start,
            duration,
            module,
            share,
        })
    }

    /// The style-shift perturbations lowered into [`crate::TrendWindow`]s, in
    /// insertion order — what the serving session appends to its add-on
    /// mix so the trend is baked into the per-query draw.
    pub fn style_shift_windows(&self) -> Vec<crate::addon_mix::TrendWindow> {
        self.perturbations
            .iter()
            .filter_map(|p| match *p {
                Perturbation::StyleShift {
                    start,
                    duration,
                    module,
                    share,
                } => Some(crate::addon_mix::TrendWindow {
                    start,
                    duration,
                    module,
                    share,
                }),
                _ => None,
            })
            .collect()
    }

    /// A correlated-failure sequence: `initial` workers fail-stop at `at`,
    /// then the fault propagates — `follow_on` further single-worker
    /// failures fire, staggered evenly across the `window` that follows.
    /// This models cascading faults (a rack losing power, a bad rollout
    /// marching through a fleet) where failures cluster in time instead of
    /// striking independently; a zero `window` collapses every follow-on
    /// into the initial instant.
    ///
    /// # Examples
    ///
    /// ```
    /// use diffserve_trace::{Scenario, Trace};
    /// use diffserve_simkit::time::{SimDuration, SimTime};
    ///
    /// let base = Trace::constant(4.0, SimDuration::from_secs(120))?;
    /// let s = Scenario::new("cascade", base).cascading_failure(
    ///     SimTime::from_secs(30),
    ///     1,
    ///     3,
    ///     SimDuration::from_secs(12),
    /// );
    /// // One initial failure plus three staggered follow-ons at 34/38/42 s.
    /// assert_eq!(s.capacity_events().len(), 4);
    /// assert_eq!(s.perturbation_onsets(), vec![30.0, 34.0, 38.0, 42.0]);
    /// s.validate(8)?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn cascading_failure(
        self,
        at: SimTime,
        initial: usize,
        follow_on: usize,
        window: SimDuration,
    ) -> Self {
        let mut s = self.worker_fail(at, initial);
        if follow_on == 0 {
            return s;
        }
        let step = SimDuration::from_secs_f64(window.as_secs_f64() / follow_on as f64);
        for i in 1..=follow_on {
            s = s.worker_fail(at + step * i as u64, 1);
        }
        s
    }

    /// Checks the scenario against a worker pool of `num_workers`.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: non-positive demand factors,
    /// out-of-range difficulty offsets, zero-worker churn, slowdowns below
    /// 1, recoveries that exceed the failed count, restorations that exceed
    /// the degraded count, churn that would leave fewer than two workers
    /// alive at any instant, or an invalid hazard process.
    pub fn validate(&self, num_workers: usize) -> Result<(), ScenarioError> {
        for p in &self.perturbations {
            match *p {
                Perturbation::FlashCrowd { factor, .. }
                | Perturbation::DemandShift { factor, .. } => {
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(ScenarioError::InvalidFactor { factor });
                    }
                }
                Perturbation::DifficultyShift { delta, .. } => {
                    if !delta.is_finite() || !(-1.0..=1.0).contains(&delta) {
                        return Err(ScenarioError::InvalidDelta { delta });
                    }
                }
                Perturbation::WorkerFail { count, .. }
                | Perturbation::WorkerRecover { count, .. }
                | Perturbation::WorkerRestore { count, .. } => {
                    if count == 0 {
                        return Err(ScenarioError::ZeroWorkers);
                    }
                }
                Perturbation::WorkerDegrade {
                    count, slowdown, ..
                } => {
                    if count == 0 {
                        return Err(ScenarioError::ZeroWorkers);
                    }
                    if !slowdown.is_finite() || slowdown < 1.0 {
                        return Err(ScenarioError::InvalidSlowdown { slowdown });
                    }
                }
                Perturbation::StyleShift { share, .. } => {
                    if !share.is_finite() || share <= 0.0 || share > 1.0 {
                        return Err(ScenarioError::InvalidShare { share });
                    }
                }
            }
        }
        if let Some(h) = &self.hazard {
            h.validate()?;
        }
        // Walk the capacity timeline tracking failed and degraded counts.
        // Fail-stopping a worker clears its degradation (it rejoins
        // healthy), so failures conservatively shrink the degraded count to
        // what can still be alive.
        let mut failed = 0usize;
        let mut degraded = 0usize;
        for (at, ev) in self.capacity_events() {
            match ev {
                CapacityEvent::Fail(n) => {
                    failed += n;
                    let alive = num_workers.saturating_sub(failed);
                    if alive < 2 {
                        return Err(ScenarioError::PoolExhausted { at, alive });
                    }
                    degraded = degraded.min(alive);
                }
                CapacityEvent::Recover(n) => {
                    if n > failed {
                        return Err(ScenarioError::RecoverWithoutFailure { at });
                    }
                    failed -= n;
                }
                CapacityEvent::Degrade(n, _) => {
                    degraded = (degraded + n).min(num_workers.saturating_sub(failed));
                }
                CapacityEvent::Restore(n) => {
                    if n > degraded {
                        return Err(ScenarioError::RestoreWithoutDegrade { at });
                    }
                    degraded -= n;
                }
            }
        }
        Ok(())
    }

    /// The demand multiplier active at time `t`: the product of every
    /// [`Perturbation::FlashCrowd`] envelope and [`Perturbation::DemandShift`]
    /// factor covering `t`.
    pub fn demand_multiplier(&self, t: SimTime) -> f64 {
        let mut m = 1.0;
        for p in &self.perturbations {
            match *p {
                Perturbation::FlashCrowd {
                    start,
                    ramp,
                    hold,
                    factor,
                } => {
                    if t < start {
                        continue;
                    }
                    let dt = t.saturating_since(start).as_secs_f64();
                    let ramp_s = ramp.as_secs_f64();
                    let hold_s = hold.as_secs_f64();
                    let envelope = if dt < ramp_s {
                        1.0 + (factor - 1.0) * dt / ramp_s
                    } else if dt < ramp_s + hold_s {
                        factor
                    } else if dt < 2.0 * ramp_s + hold_s {
                        factor - (factor - 1.0) * (dt - ramp_s - hold_s) / ramp_s
                    } else {
                        1.0
                    };
                    m *= envelope;
                }
                Perturbation::DemandShift { at, factor } if t >= at => m *= factor,
                _ => {}
            }
        }
        m
    }

    /// The base trace with every demand perturbation baked in, evaluated at
    /// bin midpoints. This is the trace the run paths draw arrivals from, so
    /// the simulator and the testbed see the identical offered load.
    pub fn effective_trace(&self) -> Trace {
        let bw = self.base.bin_width();
        let half = SimDuration::from_secs_f64(bw.as_secs_f64() / 2.0);
        let bins: Vec<f64> = self
            .base
            .bins()
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let mid = SimTime::ZERO + bw * i as u64 + half;
                q * self.demand_multiplier(mid)
            })
            .collect();
        Trace::from_qps(bins, bw).expect("base trace valid, multipliers positive")
    }

    /// Worker-churn and degradation events sorted by time (ties keep
    /// insertion order).
    pub fn capacity_events(&self) -> Vec<(SimTime, CapacityEvent)> {
        let mut events: Vec<(SimTime, CapacityEvent)> = self
            .perturbations
            .iter()
            .filter_map(|p| match *p {
                Perturbation::WorkerFail { at, count } => Some((at, CapacityEvent::Fail(count))),
                Perturbation::WorkerRecover { at, count } => {
                    Some((at, CapacityEvent::Recover(count)))
                }
                Perturbation::WorkerDegrade {
                    at,
                    count,
                    slowdown,
                } => Some((at, CapacityEvent::Degrade(count, slowdown))),
                Perturbation::WorkerRestore { at, count } => {
                    Some((at, CapacityEvent::Restore(count)))
                }
                _ => None,
            })
            .collect();
        events.sort_by_key(|&(at, _)| at);
        events
    }

    /// The full lowered event timeline (capacity churn + difficulty
    /// offsets) sorted by time — what both run paths inject into their
    /// event loops so they replay identical perturbations.
    pub fn timeline(&self) -> Vec<(SimTime, ScenarioEvent)> {
        let mut events: Vec<(SimTime, ScenarioEvent)> = self
            .capacity_events()
            .into_iter()
            .map(|(at, ev)| (at, ScenarioEvent::Capacity(ev)))
            .collect();
        events.extend(
            self.difficulty_events()
                .into_iter()
                .map(|(at, d)| (at, ScenarioEvent::Difficulty(d))),
        );
        events.sort_by_key(|&(at, _)| at);
        events
    }

    /// Difficulty-offset events sorted by time: `(at, delta)` means the
    /// active offset becomes `delta` at `at` (later events replace earlier
    /// ones; offsets do not stack).
    pub fn difficulty_events(&self) -> Vec<(SimTime, f64)> {
        let mut events: Vec<(SimTime, f64)> = self
            .perturbations
            .iter()
            .filter_map(|p| match *p {
                Perturbation::DifficultyShift { at, delta } => Some((at, delta)),
                _ => None,
            })
            .collect();
        events.sort_by_key(|&(at, _)| at);
        events
    }
}

/// The standard named scenario library used by the `scenarios` bench binary
/// and the stress-test suite: perturbation times are placed at fractions of
/// the base trace so any base works.
///
/// Returns nine scenarios: `steady` (control), `flash-crowd` (×2.5 spike),
/// `worker-failure` (2 workers fail then recover), `double-failure` (two
/// staggered 2-worker failures, no recovery), `cascading-failure` (one
/// failure whose fault propagates to two more workers across a short
/// window, then all recover), `demand-shock` (persistent ×1.8 shift),
/// `hard-prompts` (difficulty +0.25), `brownout` (a quarter of the fleet —
/// the light tier's low-indexed workers — drops to half speed, i.e. a 2×
/// slowdown, later restored), and `load-correlated-cascade` (a seeded
/// hazard process whose
/// failure/degradation rates rise with utilization, composed with a flash
/// crowd so the load spike drives the fault burst).
///
/// # Panics
///
/// Panics if `num_workers < 6` (the churn scenarios fail 4 workers and must
/// leave at least two alive).
pub fn standard_scenarios(base: &Trace, num_workers: usize) -> Vec<Scenario> {
    assert!(
        num_workers >= 6,
        "standard scenarios fail up to 4 workers; need >= 6, got {num_workers}"
    );
    let dur = base.duration().as_secs_f64();
    let at = |frac: f64| SimTime::from_secs_f64(dur * frac);
    let secs = |frac: f64| SimDuration::from_secs_f64(dur * frac);
    let brownout_count = (num_workers / 4).max(1);
    let scenarios = vec![
        Scenario::new("steady", base.clone()),
        Scenario::new("flash-crowd", base.clone()).flash_crowd(
            at(0.35),
            secs(0.05),
            secs(0.2),
            2.5,
        ),
        Scenario::new("worker-failure", base.clone())
            .worker_fail(at(0.3), 2)
            .worker_recover(at(0.65), 2),
        Scenario::new("double-failure", base.clone())
            .worker_fail(at(0.3), 2)
            .worker_fail(at(0.5), 2),
        Scenario::new("cascading-failure", base.clone())
            .cascading_failure(at(0.3), 1, 2, secs(0.15))
            .worker_recover(at(0.7), 3),
        Scenario::new("demand-shock", base.clone()).demand_shift(at(0.5), 1.8),
        Scenario::new("hard-prompts", base.clone()).difficulty_shift(at(0.35), 0.25),
        Scenario::new("brownout", base.clone())
            .worker_degrade(at(0.3), brownout_count, 2.0)
            .worker_restore(at(0.7), brownout_count),
        Scenario::new("load-correlated-cascade", base.clone())
            .flash_crowd(at(0.35), secs(0.05), secs(0.2), 2.0)
            .with_hazard(Hazard {
                fail_rate: 0.001,
                degrade_rate: 0.004,
                load_coupling: 10.0,
                ..Hazard::default()
            }),
    ];
    for s in &scenarios {
        s.validate(num_workers)
            .expect("library scenarios are valid");
    }
    scenarios
}

/// The add-on stress scenario: a flash crowd whose extra traffic is also a
/// *style shift* — a trending add-on module (`module`) captures 90% of all
/// add-on-carrying queries for the crowd's duration. Under an affinity-blind
/// router the trending module thrashes every worker's cache (each worker
/// keeps swapping it in over its steady-state working set); an
/// affinity-aware router concentrates the trend on a few workers and keeps
/// the rest of the fleet's caches warm.
///
/// Deliberately *not* part of [`standard_scenarios`]: it only does anything
/// when the serving configuration enables add-ons, and the standard library
/// is pinned at nine scenarios by the golden-fingerprint suite.
///
/// # Examples
///
/// ```
/// use diffserve_trace::{style_shift_flash_crowd, Trace};
/// use diffserve_simkit::time::SimDuration;
///
/// let base = Trace::constant(6.0, SimDuration::from_secs(100))?;
/// let s = style_shift_flash_crowd(&base, 0);
/// assert_eq!(s.name(), "style-shift-flash-crowd");
/// assert_eq!(s.style_shift_windows().len(), 1);
/// s.validate(8)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn style_shift_flash_crowd(base: &Trace, module: usize) -> Scenario {
    let dur = base.duration().as_secs_f64();
    let at = |frac: f64| SimTime::from_secs_f64(dur * frac);
    let secs = |frac: f64| SimDuration::from_secs_f64(dur * frac);
    // Same envelope as the standard flash crowd; the style shift covers the
    // whole spike (both ramps plus the hold).
    Scenario::new("style-shift-flash-crowd", base.clone())
        .flash_crowd(at(0.35), secs(0.05), secs(0.2), 2.5)
        .style_shift(at(0.35), secs(0.3), module, 0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(n: u64) -> SimDuration {
        SimDuration::from_secs(n)
    }

    fn base() -> Trace {
        Trace::constant(4.0, secs(100)).unwrap()
    }

    #[test]
    fn steady_scenario_replays_base_unchanged() {
        let s = Scenario::new("steady", base());
        assert_eq!(s.effective_trace(), base());
        assert!(s.capacity_events().is_empty());
        assert!(s.difficulty_events().is_empty());
        assert_eq!(s.name(), "steady");
    }

    #[test]
    fn flash_crowd_envelope_ramps_and_returns() {
        let s = Scenario::new("flash", base()).flash_crowd(
            SimTime::from_secs(30),
            secs(10),
            secs(20),
            3.0,
        );
        assert_eq!(s.demand_multiplier(SimTime::from_secs(29)), 1.0);
        // Mid-ramp: halfway to 3x.
        assert!((s.demand_multiplier(SimTime::from_secs(35)) - 2.0).abs() < 1e-9);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(45)), 3.0);
        // Mid-down-ramp.
        assert!((s.demand_multiplier(SimTime::from_secs(65)) - 2.0).abs() < 1e-9);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(75)), 1.0);
    }

    #[test]
    fn zero_ramp_is_a_step() {
        let s = Scenario::new("step", base()).flash_crowd(
            SimTime::from_secs(50),
            SimDuration::ZERO,
            secs(10),
            2.0,
        );
        assert_eq!(s.demand_multiplier(SimTime::from_secs(49)), 1.0);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(55)), 2.0);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(61)), 1.0);
    }

    #[test]
    fn demand_shift_is_persistent() {
        let s = Scenario::new("shock", base()).demand_shift(SimTime::from_secs(50), 1.5);
        let eff = s.effective_trace();
        assert_eq!(eff.qps_at(SimTime::from_secs(10)), 4.0);
        assert_eq!(eff.qps_at(SimTime::from_secs(99)), 6.0);
        // Expected queries grow by exactly the shifted half.
        let expected = 4.0 * 50.0 + 6.0 * 50.0;
        assert!((eff.expected_queries() - expected).abs() < 1e-6);
    }

    #[test]
    fn perturbations_compose_multiplicatively() {
        let s = Scenario::new("both", base())
            .demand_shift(SimTime::from_secs(20), 2.0)
            .flash_crowd(SimTime::from_secs(40), SimDuration::ZERO, secs(10), 3.0);
        assert_eq!(s.demand_multiplier(SimTime::from_secs(45)), 6.0);
    }

    #[test]
    fn capacity_events_sorted_by_time() {
        let s = Scenario::new("churn", base())
            .worker_recover(SimTime::from_secs(80), 1)
            .worker_fail(SimTime::from_secs(20), 1);
        let ev = s.capacity_events();
        assert_eq!(
            ev,
            vec![
                (SimTime::from_secs(20), CapacityEvent::Fail(1)),
                (SimTime::from_secs(80), CapacityEvent::Recover(1)),
            ]
        );
        assert_eq!(s.perturbation_onsets(), vec![20.0, 80.0]);
    }

    #[test]
    fn validate_rejects_pool_exhaustion() {
        let s = Scenario::new("bad", base()).worker_fail(SimTime::from_secs(10), 7);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::PoolExhausted { alive: 1, .. })
        ));
        // The same churn is fine on a bigger pool.
        assert!(s.validate(16).is_ok());
    }

    #[test]
    fn validate_rejects_recover_without_failure() {
        let s = Scenario::new("bad", base()).worker_recover(SimTime::from_secs(10), 1);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::RecoverWithoutFailure { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let s = Scenario::new("bad", base()).demand_shift(SimTime::from_secs(1), 0.0);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::InvalidFactor { .. })
        ));
        let s = Scenario::new("bad", base()).difficulty_shift(SimTime::from_secs(1), 1.5);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::InvalidDelta { .. })
        ));
        let s = Scenario::new("bad", base()).worker_fail(SimTime::from_secs(1), 0);
        assert_eq!(s.validate(8), Err(ScenarioError::ZeroWorkers));
    }

    #[test]
    fn difficulty_events_replace_not_stack() {
        let s = Scenario::new("hard", base())
            .difficulty_shift(SimTime::from_secs(60), 0.1)
            .difficulty_shift(SimTime::from_secs(30), 0.3);
        assert_eq!(
            s.difficulty_events(),
            vec![(SimTime::from_secs(30), 0.3), (SimTime::from_secs(60), 0.1)]
        );
    }

    #[test]
    fn standard_library_is_valid_and_named() {
        let scenarios = standard_scenarios(&base(), 8);
        assert_eq!(scenarios.len(), 9);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"worker-failure"));
        assert!(names.contains(&"flash-crowd"));
        assert!(names.contains(&"cascading-failure"));
        assert!(names.contains(&"brownout"));
        assert!(names.contains(&"load-correlated-cascade"));
        for s in &scenarios {
            assert!(s.validate(8).is_ok(), "{} invalid", s.name());
        }
        let cascade = scenarios
            .iter()
            .find(|s| s.name() == "load-correlated-cascade")
            .unwrap();
        assert!(cascade.hazard().is_some());
    }

    #[test]
    fn validate_rejects_bad_degradations() {
        // Slowdowns below 1 would speed workers up; reject them.
        let s = Scenario::new("bad", base()).worker_degrade(SimTime::from_secs(5), 1, 0.5);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::InvalidSlowdown { slowdown }) if slowdown == 0.5
        ));
        let s = Scenario::new("bad", base()).worker_degrade(SimTime::from_secs(5), 1, f64::NAN);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::InvalidSlowdown { .. })
        ));
        // Zero-worker degrade/restore are meaningless.
        let s = Scenario::new("bad", base()).worker_degrade(SimTime::from_secs(5), 0, 2.0);
        assert_eq!(s.validate(8), Err(ScenarioError::ZeroWorkers));
        let s = Scenario::new("bad", base()).worker_restore(SimTime::from_secs(5), 0);
        assert_eq!(s.validate(8), Err(ScenarioError::ZeroWorkers));
    }

    #[test]
    fn validate_rejects_restore_without_degrade() {
        let s = Scenario::new("bad", base()).worker_restore(SimTime::from_secs(10), 1);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::RestoreWithoutDegrade { .. })
        ));
        // Restoring more workers than ever degraded is rejected too.
        let s = Scenario::new("bad", base())
            .worker_degrade(SimTime::from_secs(10), 2, 2.0)
            .worker_restore(SimTime::from_secs(20), 3);
        assert!(matches!(
            s.validate(8),
            Err(ScenarioError::RestoreWithoutDegrade { .. })
        ));
        // A paired degrade→restore is fine.
        let s = Scenario::new("ok", base())
            .worker_degrade(SimTime::from_secs(10), 2, 2.0)
            .worker_restore(SimTime::from_secs(20), 2);
        assert!(s.validate(8).is_ok());
    }

    #[test]
    fn validate_rejects_over_recovery_from_overlapping_cascades() {
        // Two overlapping cascades fail 6 workers in total; recovering 7
        // names more workers than ever failed.
        let s = Scenario::new("bad", base())
            .cascading_failure(SimTime::from_secs(10), 1, 2, secs(10))
            .cascading_failure(SimTime::from_secs(15), 1, 2, secs(10))
            .worker_recover(SimTime::from_secs(60), 7);
        assert!(matches!(
            s.validate(16),
            Err(ScenarioError::RecoverWithoutFailure { .. })
        ));
        // Recovering exactly what failed is fine on a large enough pool.
        let s = Scenario::new("ok", base())
            .cascading_failure(SimTime::from_secs(10), 1, 2, secs(10))
            .cascading_failure(SimTime::from_secs(15), 1, 2, secs(10))
            .worker_recover(SimTime::from_secs(60), 6);
        assert!(s.validate(16).is_ok());
    }

    #[test]
    fn validate_rejects_bad_hazards() {
        let cases = [
            Hazard {
                check_interval: SimDuration::ZERO,
                ..Hazard::default()
            },
            Hazard {
                fail_rate: -0.1,
                ..Hazard::default()
            },
            Hazard {
                min_slowdown: 0.5,
                ..Hazard::default()
            },
            Hazard {
                min_slowdown: 3.0,
                max_slowdown: 2.0,
                ..Hazard::default()
            },
        ];
        for h in cases {
            let s = Scenario::new("bad", base()).with_hazard(h);
            assert!(
                matches!(s.validate(8), Err(ScenarioError::InvalidHazard { .. })),
                "{h:?} should be rejected"
            );
        }
        assert!(Scenario::new("ok", base())
            .with_hazard(Hazard::default())
            .validate(8)
            .is_ok());
    }

    #[test]
    fn hazard_process_is_deterministic_and_load_coupled() {
        let spec = Hazard {
            seed: 42,
            fail_rate: 0.05,
            degrade_rate: 0.1,
            load_coupling: 8.0,
            ..Hazard::default()
        };
        let fleet = FleetHealth {
            alive: 8,
            failed: 0,
            degraded: 0,
        };
        let run = |util: f64| -> usize {
            let mut p = HazardProcess::new(spec);
            (0..200)
                .map(|_| p.step(SimDuration::from_secs(2), util, fleet).len())
                .sum()
        };
        // Identical seeds and utilization trajectories replay identically.
        assert_eq!(run(0.9), run(0.9));
        // Load coupling: a saturated fleet draws more faults than an idle
        // one over the same stream length.
        assert!(
            run(1.0) > run(0.0),
            "saturated {} vs idle {}",
            run(1.0),
            run(0.0)
        );
    }

    #[test]
    fn hazard_guards_keep_events_valid() {
        let spec = Hazard {
            fail_rate: 1e6, // fires every step
            degrade_rate: 1e6,
            recover_rate: 1e6,
            restore_rate: 1e6,
            ..Hazard::default()
        };
        let mut p = HazardProcess::new(spec);
        // Two alive workers: no failure may fire (pool floor), and with
        // every worker already degraded no further degradation fires.
        let ev = p.step(
            SimDuration::from_secs(2),
            1.0,
            FleetHealth {
                alive: 2,
                failed: 0,
                degraded: 2,
            },
        );
        assert!(
            !ev.iter().any(|e| matches!(
                e,
                ScenarioEvent::Capacity(CapacityEvent::Fail(_) | CapacityEvent::Degrade(..))
            )),
            "{ev:?}"
        );
        // Nothing failed/degraded: no recover/restore.
        let ev = p.step(
            SimDuration::from_secs(2),
            0.0,
            FleetHealth {
                alive: 8,
                failed: 0,
                degraded: 0,
            },
        );
        assert!(
            !ev.iter().any(|e| matches!(
                e,
                ScenarioEvent::Capacity(CapacityEvent::Recover(_) | CapacityEvent::Restore(_))
            )),
            "{ev:?}"
        );
        // Hazard checks sit at half-phase so they never collide with
        // control ticks at whole multiples of the interval.
        assert_eq!(spec.first_check(), SimTime::from_secs(1));
    }

    #[test]
    fn difficulty_coupling_draws_valid_shifts() {
        let spec = Hazard {
            difficulty_coupling: 1e6, // fires every step
            ..Hazard::default()
        };
        let fleet = FleetHealth {
            alive: 8,
            failed: 0,
            degraded: 0,
        };
        let mut p = HazardProcess::new(spec);
        let mut shifts = Vec::new();
        for _ in 0..50 {
            for ev in p.step(SimDuration::from_secs(2), 0.5, fleet) {
                if let ScenarioEvent::Difficulty(delta) = ev {
                    ev.validate().expect("drawn shifts are valid events");
                    shifts.push(delta);
                }
            }
        }
        assert!(!shifts.is_empty(), "coupling at 1e6 must fire shifts");
        assert!(shifts
            .iter()
            .all(|d| (0.0..=Hazard::MAX_DRAWN_DIFFICULTY).contains(d)));
        // The drawn offsets wander, they are not a constant.
        assert!(shifts.iter().any(|d| (d - shifts[0]).abs() > 1e-9));
    }

    #[test]
    fn difficulty_coupling_zero_preserves_legacy_stream() {
        // The knob's extra draws are gated on `> 0.0`: a spec without it
        // must replay the exact event sequence it produced before the knob
        // existed, which the incident-replay loop depends on.
        let legacy = Hazard {
            seed: 7,
            fail_rate: 0.05,
            degrade_rate: 0.1,
            ..Hazard::default()
        };
        let fleet = FleetHealth {
            alive: 8,
            failed: 2,
            degraded: 1,
        };
        let run = |spec: Hazard| -> Vec<Vec<ScenarioEvent>> {
            let mut p = HazardProcess::new(spec);
            (0..100)
                .map(|_| p.step(SimDuration::from_secs(2), 0.7, fleet))
                .collect()
        };
        assert_eq!(run(legacy), run(legacy));
        // The first step's capacity draws come from the same five leading
        // uniforms whether or not the knob is on (the extra draws happen
        // after them), so enabling the knob perturbs later steps only.
        let coupled = Hazard {
            difficulty_coupling: 0.5,
            ..legacy
        };
        let first_capacity = |steps: Vec<Vec<ScenarioEvent>>| -> Vec<ScenarioEvent> {
            steps[0]
                .iter()
                .filter(|e| matches!(e, ScenarioEvent::Capacity(_)))
                .copied()
                .collect()
        };
        assert_eq!(first_capacity(run(coupled)), first_capacity(run(legacy)));
    }

    #[test]
    fn validate_rejects_bad_difficulty_coupling() {
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            let s = Scenario::new("bad", base()).with_hazard(Hazard {
                difficulty_coupling: bad,
                ..Hazard::default()
            });
            assert!(
                matches!(s.validate(8), Err(ScenarioError::InvalidHazard { .. })),
                "difficulty_coupling {bad} should be rejected"
            );
        }
    }

    #[test]
    fn incident_log_roundtrips_into_a_scenario() {
        let log = vec![
            Incident {
                at: SimTime::from_secs(10),
                event: ScenarioEvent::Capacity(CapacityEvent::Fail(1)),
            },
            Incident {
                at: SimTime::from_secs(12),
                event: ScenarioEvent::Capacity(CapacityEvent::Degrade(2, 2.5)),
            },
            Incident {
                at: SimTime::from_secs(20),
                event: ScenarioEvent::Difficulty(0.3),
            },
            Incident {
                at: SimTime::from_secs(30),
                event: ScenarioEvent::Capacity(CapacityEvent::Recover(1)),
            },
            Incident {
                at: SimTime::from_secs(40),
                event: ScenarioEvent::Capacity(CapacityEvent::Restore(2)),
            },
        ];
        let s = Scenario::from_incident_log("replayed", base(), &log);
        assert!(s.hazard().is_none());
        assert_eq!(s.perturbations().len(), 5);
        assert!(s.validate(8).is_ok());
        // The lowered timeline reproduces the log exactly.
        let timeline = s.timeline();
        assert_eq!(timeline.len(), log.len());
        for (inc, &(at, ev)) in log.iter().zip(&timeline) {
            assert_eq!(inc.at, at);
            assert_eq!(inc.event, ev);
        }
    }

    #[test]
    fn replay_keeps_demand_perturbations_but_drops_hazard() {
        let original = Scenario::new("stress", base())
            .flash_crowd(SimTime::from_secs(30), secs(5), secs(10), 2.0)
            .worker_fail(SimTime::from_secs(20), 1)
            .with_hazard(Hazard::default());
        let log = vec![
            Incident {
                at: SimTime::from_secs(20),
                event: ScenarioEvent::Capacity(CapacityEvent::Fail(1)),
            },
            Incident {
                at: SimTime::from_secs(33),
                event: ScenarioEvent::Capacity(CapacityEvent::Degrade(1, 1.8)),
            },
        ];
        let replay = original.replay(&log);
        assert_eq!(replay.name(), "stress-replay");
        assert!(replay.hazard().is_none());
        // Demand envelope identical, capacity timeline from the log only.
        assert_eq!(
            replay.demand_multiplier(SimTime::from_secs(40)),
            original.demand_multiplier(SimTime::from_secs(40))
        );
        assert_eq!(replay.effective_trace(), original.effective_trace());
        assert_eq!(
            replay.capacity_events(),
            vec![
                (SimTime::from_secs(20), CapacityEvent::Fail(1)),
                (SimTime::from_secs(33), CapacityEvent::Degrade(1, 1.8)),
            ]
        );
    }

    #[test]
    fn cascading_failure_staggers_follow_ons_inside_the_window() {
        let s = Scenario::new("cascade", base()).cascading_failure(
            SimTime::from_secs(20),
            2,
            4,
            secs(20),
        );
        let ev = s.capacity_events();
        assert_eq!(ev.len(), 5);
        assert_eq!(ev[0], (SimTime::from_secs(20), CapacityEvent::Fail(2)));
        for (i, &(at, e)) in ev.iter().enumerate().skip(1) {
            assert_eq!(e, CapacityEvent::Fail(1));
            assert_eq!(at, SimTime::from_secs(20 + 5 * i as u64));
        }
        // 6 correlated failures exhaust an 8-pool at the last follow-on...
        assert!(matches!(
            s.validate(7),
            Err(ScenarioError::PoolExhausted { .. })
        ));
        // ...but a larger fleet absorbs the cascade.
        assert!(s.validate(8).is_ok());
    }

    #[test]
    fn cascading_failure_zero_window_or_no_follow_ons() {
        let s = Scenario::new("burst", base()).cascading_failure(
            SimTime::from_secs(10),
            1,
            2,
            SimDuration::ZERO,
        );
        // Everything lands at the initial instant.
        assert!(s
            .capacity_events()
            .iter()
            .all(|&(at, _)| at == SimTime::from_secs(10)));
        let s =
            Scenario::new("solo", base()).cascading_failure(SimTime::from_secs(10), 2, 0, secs(30));
        assert_eq!(s.capacity_events().len(), 1);
    }

    #[test]
    fn error_display() {
        let e = ScenarioError::PoolExhausted {
            at: SimTime::from_secs(5),
            alive: 1,
        };
        assert!(format!("{e}").contains("1 workers"));
        assert!(format!("{}", ScenarioError::ZeroWorkers).contains("at least one"));
        let e = ScenarioError::InvalidShare { share: 1.5 };
        assert!(format!("{e}").contains("1.5"));
    }

    #[test]
    fn style_shift_lowers_into_trend_windows() {
        let s = Scenario::new("trend", base())
            .style_shift(SimTime::from_secs(20), secs(30), 3, 0.8)
            .worker_fail(SimTime::from_secs(50), 1);
        let windows = s.style_shift_windows();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].module, 3);
        assert_eq!(windows[0].share, 0.8);
        assert!(windows[0].contains(SimTime::from_secs(30)));
        assert!(!windows[0].contains(SimTime::from_secs(50)));
        // A style shift never touches demand or the capacity timeline.
        assert_eq!(s.demand_multiplier(SimTime::from_secs(30)), 1.0);
        assert_eq!(s.capacity_events().len(), 1);
        assert!(s.validate(8).is_ok());
        assert_eq!(s.perturbations()[0].kind(), "style-shift");
        assert_eq!(s.perturbations()[0].onset(), SimTime::from_secs(20));
    }

    #[test]
    fn validate_rejects_bad_style_shift_shares() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let s =
                Scenario::new("bad", base()).style_shift(SimTime::from_secs(5), secs(10), 0, bad);
            assert!(
                matches!(s.validate(8), Err(ScenarioError::InvalidShare { .. })),
                "share {bad} should be rejected"
            );
        }
    }

    #[test]
    fn replay_keeps_style_shifts() {
        let original = Scenario::new("trend", base())
            .style_shift(SimTime::from_secs(20), secs(30), 1, 0.9)
            .with_hazard(Hazard::default());
        let replay = original.replay(&[]);
        assert!(replay.hazard().is_none());
        assert_eq!(replay.style_shift_windows(), original.style_shift_windows());
    }

    #[test]
    fn style_shift_flash_crowd_composes_crowd_and_trend() {
        let s = style_shift_flash_crowd(&base(), 2);
        assert_eq!(s.name(), "style-shift-flash-crowd");
        assert!(s.validate(8).is_ok());
        let windows = s.style_shift_windows();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].module, 2);
        // The trend covers the crowd's full amplitude.
        assert!(s.demand_multiplier(SimTime::from_secs(50)) > 2.0);
        assert!(windows[0].contains(SimTime::from_secs(50)));
    }
}
