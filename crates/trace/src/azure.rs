//! Synthetic Azure-Functions-style diurnal traces.
//!
//! The paper drives its dynamic experiments with the Microsoft Azure
//! Functions trace, scaled shape-preservingly to system capacity (§4.1,
//! Fig. 5). The production trace is not redistributable, so this module
//! synthesizes demand curves with the same macroscopic structure: a smooth
//! diurnal swell to a single peak, secondary ripples, and bin-level noise —
//! then rescales to the artifact's `{A}to{B}qps` convention.

use diffserve_simkit::rng::{seeded_rng, Normal, Sampler};
use diffserve_simkit::time::SimDuration;

use crate::trace::{Trace, TraceError};

/// Configuration for [`synthesize_azure_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AzureTraceConfig {
    /// Trough demand after rescaling (the `A` in `trace_{A}to{B}qps`).
    pub min_qps: f64,
    /// Peak demand after rescaling (the `B` in `trace_{A}to{B}qps`).
    pub max_qps: f64,
    /// Total trace length.
    pub duration: SimDuration,
    /// Where the peak falls as a fraction of the duration (paper's Fig. 5
    /// trace peaks slightly past the middle; default 0.55).
    pub peak_position: f64,
    /// Relative amplitude of secondary ripples (default 0.12).
    pub ripple: f64,
    /// Relative standard deviation of per-bin noise (default 0.05).
    pub noise: f64,
    /// RNG seed for the noise.
    pub seed: u64,
}

impl Default for AzureTraceConfig {
    fn default() -> Self {
        AzureTraceConfig {
            min_qps: 4.0,
            max_qps: 32.0,
            duration: SimDuration::from_secs(350),
            peak_position: 0.55,
            ripple: 0.12,
            noise: 0.05,
            seed: 0xA2CE,
        }
    }
}

/// Synthesizes a diurnal demand trace with 1-second bins.
///
/// The curve rises from the trough to a single peak at
/// `config.peak_position` and falls back, with sinusoidal ripples and
/// Gaussian bin noise, then is affinely rescaled so the minimum and maximum
/// equal `min_qps` / `max_qps` exactly — mirroring the paper's
/// shape-preserving transformation of the Azure trace.
///
/// # Errors
///
/// Returns a [`TraceError`] if the configuration produces an invalid trace
/// (zero duration, inverted or negative QPS range).
pub fn synthesize_azure_trace(config: &AzureTraceConfig) -> Result<Trace, TraceError> {
    if config.duration.is_zero() {
        return Err(TraceError::ZeroBinWidth);
    }
    if !(config.min_qps.is_finite()
        && config.max_qps.is_finite()
        && config.min_qps >= 0.0
        && config.min_qps <= config.max_qps)
    {
        return Err(TraceError::InvalidRate {
            bin: 0,
            value: config.min_qps,
        });
    }
    let n = (config.duration.as_secs_f64().ceil() as usize).max(2);
    let peak = config.peak_position.clamp(0.05, 0.95);
    let noise = Normal::new(0.0, config.noise.max(0.0)).expect("validated std");
    let mut rng = seeded_rng(config.seed);

    let mut bins = Vec::with_capacity(n);
    for i in 0..n {
        let x = i as f64 / (n - 1) as f64;
        // Asymmetric bell peaking at `peak`: rise and fall are half-cosines
        // with different widths, matching the Azure trace's slow ramp-up and
        // faster drain.
        let phase = if x <= peak {
            x / peak * std::f64::consts::PI
        } else {
            std::f64::consts::PI * (1.0 + (x - peak) / (1.0 - peak))
        };
        let bell = 0.5 * (1.0 - phase.cos());
        let ripple = config.ripple * (x * 23.0).sin() * bell;
        let jitter = noise.draw(&mut rng);
        bins.push((bell + ripple + jitter).max(0.0));
    }
    let raw = Trace::from_qps(bins, SimDuration::from_secs(1))?;
    Ok(raw.rescaled(config.min_qps, config.max_qps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffserve_simkit::time::SimTime;

    #[test]
    fn respects_qps_range() {
        let t = synthesize_azure_trace(&AzureTraceConfig::default()).unwrap();
        assert!((t.min_qps() - 4.0).abs() < 1e-9);
        assert!((t.max_qps() - 32.0).abs() < 1e-9);
        assert_eq!(t.len(), 350);
    }

    #[test]
    fn peak_is_near_configured_position() {
        let t = synthesize_azure_trace(&AzureTraceConfig {
            noise: 0.0,
            ripple: 0.0,
            ..Default::default()
        })
        .unwrap();
        let (peak_idx, _) = t
            .bins()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let frac = peak_idx as f64 / t.len() as f64;
        assert!((frac - 0.55).abs() < 0.05, "peak at {frac}");
    }

    #[test]
    fn starts_and_ends_near_trough() {
        let t = synthesize_azure_trace(&AzureTraceConfig {
            noise: 0.0,
            ripple: 0.0,
            ..Default::default()
        })
        .unwrap();
        assert!(t.qps_at(SimTime::ZERO) < 6.0);
        assert!(t.bins()[t.len() - 1] < 6.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthesize_azure_trace(&AzureTraceConfig::default()).unwrap();
        let b = synthesize_azure_trace(&AzureTraceConfig::default()).unwrap();
        assert_eq!(a, b);
        let c = synthesize_azure_trace(&AzureTraceConfig {
            seed: 99,
            ..Default::default()
        })
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn cascade3_profile() {
        // The artifact uses 1→8 QPS for the heavier Cascade 3.
        let t = synthesize_azure_trace(&AzureTraceConfig {
            min_qps: 1.0,
            max_qps: 8.0,
            ..Default::default()
        })
        .unwrap();
        assert!((t.min_qps() - 1.0).abs() < 1e-9);
        assert!((t.max_qps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_inverted_range() {
        let cfg = AzureTraceConfig {
            min_qps: 10.0,
            max_qps: 5.0,
            ..Default::default()
        };
        assert!(synthesize_azure_trace(&cfg).is_err());
    }
}
