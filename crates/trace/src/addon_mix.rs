//! Seeded per-query add-on assignment: which LoRA/ControlNet module (if
//! any) each query in the arrival stream requires.
//!
//! Production diffusion traffic is not homogeneous — a sizeable fraction of
//! prompts carry an add-on module (a LoRA style, a ControlNet conditioner)
//! that a worker must have loaded before it can serve the query
//! (SwiftDiffusion). [`AddonMix`] models that traffic shape as a *stateless*
//! seeded draw: given a query id and its arrival instant it returns the
//! same module requirement on every engine, so the discrete-event simulator
//! and the thread-based testbed see the identical add-on stream without
//! sharing any RNG state.
//!
//! Popularity is Zipf-like (module `i` drawn with weight `1/(i+1)`), the
//! regime where a small module cache earns its keep. A [`TrendWindow`]
//! overrides the popularity ranking for a time span — the "trending LoRA"
//! that [`Perturbation::StyleShift`](crate::Perturbation::StyleShift)
//! lowers into — steering a `share` of adopting queries to one module.
//!
//! # Examples
//!
//! ```
//! use diffserve_trace::AddonMix;
//! use diffserve_simkit::time::SimTime;
//!
//! let mix = AddonMix::new(42, 8, 0.5);
//! // Stateless: the same (query id, instant) always draws the same module.
//! let at = SimTime::from_secs(3);
//! assert_eq!(mix.draw(17, at), mix.draw(17, at));
//! // Roughly half the stream adopts an add-on at adoption 0.5.
//! let adopted = (0..1000).filter(|&q| mix.draw(q, at).is_some()).count();
//! assert!((300..700).contains(&adopted));
//! ```

use diffserve_simkit::rng::{derive_seed, seeded_rng};
use diffserve_simkit::time::{SimDuration, SimTime};
use rand::Rng;

/// RNG stream tag for add-on draws, so module assignment never shares a
/// stream with arrival generation, routing, or the hazard engine.
pub const ADDON_SEED_STREAM: u64 = 0xADD0;

/// A time span during which a single trending module captures a fixed share
/// of all adopting queries, overriding the steady-state Zipf popularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendWindow {
    /// When the trend starts.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// The trending module's catalog id.
    pub module: usize,
    /// Fraction of *adopting* queries that request the trending module
    /// while the window is active, in `(0, 1]`.
    pub share: f64,
}

impl TrendWindow {
    /// Whether the window covers instant `at` (half-open: `[start,
    /// start + duration)`).
    pub fn contains(&self, at: SimTime) -> bool {
        at >= self.start && at < self.start + self.duration
    }
}

/// The seeded generator assigning an optional add-on module to each query.
///
/// The draw is a pure function of `(seed, query id, arrival instant)`: three
/// uniforms are taken from a throwaway RNG keyed by the query id, deciding
/// adoption, trend capture, and the Zipf popularity pick in a fixed order.
/// No draw state is carried between queries, so both engines — and any
/// replay — assign identical modules without coordinating.
#[derive(Debug, Clone, PartialEq)]
pub struct AddonMix {
    /// Parent seed (typically the experiment seed).
    pub seed: u64,
    /// Number of modules in the catalog; draws return ids in
    /// `0..num_modules`.
    pub num_modules: usize,
    /// Fraction of queries that require *some* add-on, in `[0, 1]`.
    pub adoption: f64,
    /// Active trend windows, checked in order (first covering window wins).
    pub trends: Vec<TrendWindow>,
}

impl AddonMix {
    /// Creates a mix with no trend windows.
    pub fn new(seed: u64, num_modules: usize, adoption: f64) -> Self {
        AddonMix {
            seed,
            num_modules,
            adoption,
            trends: Vec::new(),
        }
    }

    /// Appends a trend window.
    pub fn with_trend(mut self, window: TrendWindow) -> Self {
        self.trends.push(window);
        self
    }

    /// Checks the mix parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a static message (the core
    /// crate wraps it into its own config error type).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.num_modules == 0 {
            return Err("add-on mix must name at least one module");
        }
        if !self.adoption.is_finite() || !(0.0..=1.0).contains(&self.adoption) {
            return Err("add-on adoption must lie in [0, 1]");
        }
        for w in &self.trends {
            if !w.share.is_finite() || w.share <= 0.0 || w.share > 1.0 {
                return Err("trend share must lie in (0, 1]");
            }
            if w.module >= self.num_modules {
                return Err("trend module must exist in the catalog");
            }
        }
        Ok(())
    }

    /// Draws the add-on requirement for query `qid` arriving at `at`.
    ///
    /// Returns `None` for the `1 - adoption` fraction of plain queries.
    /// The draw order is fixed (adoption, trend, popularity) so adding or
    /// removing trend windows never perturbs which queries adopt.
    pub fn draw(&self, qid: u64, at: SimTime) -> Option<usize> {
        if self.num_modules == 0 {
            return None;
        }
        let mut rng = seeded_rng(derive_seed(derive_seed(self.seed, ADDON_SEED_STREAM), qid));
        let u_adopt: f64 = rng.gen_range(0.0..1.0);
        let u_trend: f64 = rng.gen_range(0.0..1.0);
        let u_pick: f64 = rng.gen_range(0.0..1.0);
        if u_adopt >= self.adoption {
            return None;
        }
        for w in &self.trends {
            if w.contains(at) && u_trend < w.share {
                return Some(w.module.min(self.num_modules - 1));
            }
        }
        // Zipf-like popularity: module i with weight 1/(i+1), walked as a
        // normalized cumulative sum.
        let total: f64 = (1..=self.num_modules).map(|i| 1.0 / i as f64).sum();
        let mut acc = 0.0;
        for i in 0..self.num_modules {
            acc += 1.0 / ((i + 1) as f64 * total);
            if u_pick < acc {
                return Some(i);
            }
        }
        Some(self.num_modules - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: u64, dur: u64, module: usize, share: f64) -> TrendWindow {
        TrendWindow {
            start: SimTime::from_secs(start),
            duration: SimDuration::from_secs(dur),
            module,
            share,
        }
    }

    #[test]
    fn draw_is_stateless_and_deterministic() {
        let mix = AddonMix::new(7, 6, 0.6);
        let at = SimTime::from_secs(5);
        for q in 0..200 {
            assert_eq!(mix.draw(q, at), mix.draw(q, at));
        }
        // Different seeds give different assignments somewhere.
        let other = AddonMix::new(8, 6, 0.6);
        assert!((0..200).any(|q| mix.draw(q, at) != other.draw(q, at)));
    }

    #[test]
    fn adoption_controls_the_fraction_with_addons() {
        let at = SimTime::ZERO;
        let frac = |adoption: f64| {
            let mix = AddonMix::new(3, 8, adoption);
            (0..2000).filter(|&q| mix.draw(q, at).is_some()).count() as f64 / 2000.0
        };
        assert_eq!(frac(0.0), 0.0);
        assert_eq!(frac(1.0), 1.0);
        assert!((frac(0.5) - 0.5).abs() < 0.05);
    }

    #[test]
    fn popularity_is_zipf_ranked() {
        let mix = AddonMix::new(11, 5, 1.0);
        let at = SimTime::ZERO;
        let mut counts = [0usize; 5];
        for q in 0..5000 {
            counts[mix.draw(q, at).unwrap()] += 1;
        }
        // Module 0 is the head of the distribution; module 4 the tail.
        assert!(counts[0] > counts[4] * 2, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn trend_window_captures_its_share_while_active() {
        let mix = AddonMix::new(5, 8, 1.0).with_trend(window(10, 20, 7, 0.9));
        let inside = SimTime::from_secs(15);
        let outside = SimTime::from_secs(40);
        let hits =
            |at: SimTime| (0..2000).filter(|&q| mix.draw(q, at) == Some(7)).count() as f64 / 2000.0;
        assert!(hits(inside) > 0.8, "trend share inside: {}", hits(inside));
        // Module 7 is the Zipf tail: rare outside the window.
        assert!(hits(outside) < 0.1, "tail share outside: {}", hits(outside));
        // Half-open window edges.
        assert!(window(10, 20, 7, 0.9).contains(SimTime::from_secs(10)));
        assert!(!window(10, 20, 7, 0.9).contains(SimTime::from_secs(30)));
    }

    #[test]
    fn trends_do_not_perturb_adoption() {
        // The adoption uniform is drawn first, so attaching a trend window
        // changes *which* module adopting queries get, never *whether* a
        // query adopts.
        let plain = AddonMix::new(9, 6, 0.4);
        let trending = plain.clone().with_trend(window(0, 100, 2, 0.8));
        let at = SimTime::from_secs(50);
        for q in 0..500 {
            assert_eq!(plain.draw(q, at).is_some(), trending.draw(q, at).is_some());
        }
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(AddonMix::new(1, 0, 0.5).validate().is_err());
        assert!(AddonMix::new(1, 4, -0.1).validate().is_err());
        assert!(AddonMix::new(1, 4, 1.1).validate().is_err());
        assert!(AddonMix::new(1, 4, f64::NAN).validate().is_err());
        assert!(AddonMix::new(1, 4, 0.5)
            .with_trend(window(0, 10, 2, 0.0))
            .validate()
            .is_err());
        assert!(AddonMix::new(1, 4, 0.5)
            .with_trend(window(0, 10, 2, 1.5))
            .validate()
            .is_err());
        assert!(AddonMix::new(1, 4, 0.5)
            .with_trend(window(0, 10, 9, 0.5))
            .validate()
            .is_err());
        assert!(AddonMix::new(1, 4, 0.5)
            .with_trend(window(0, 10, 2, 0.5))
            .validate()
            .is_ok());
    }

    #[test]
    fn zero_modules_draws_nothing() {
        let mix = AddonMix::new(1, 0, 1.0);
        assert_eq!(mix.draw(0, SimTime::ZERO), None);
    }
}
