//! # diffserve-linalg
//!
//! Small dense linear algebra for the DiffServe reproduction.
//!
//! The paper's evaluation metric (Fréchet Inception Distance) needs means,
//! covariances, and a positive-semi-definite matrix square root; the
//! discriminator substrate needs matrix products; and the MILP solver uses
//! dense elimination. This crate implements exactly that surface from
//! scratch — [`Mat`] plus [`cholesky`], [`lu_solve`], [`sym_eigen`]
//! (cyclic Jacobi), [`sqrtm_psd`], and [`determinant`] — because no external
//! linear-algebra crate is sanctioned for this workspace.
//!
//! # Examples
//!
//! ```
//! use diffserve_linalg::{sqrtm_psd, Mat};
//!
//! let a = Mat::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
//! let s = sqrtm_psd(&a)?;
//! assert!((s[(0, 0)] - 2.0).abs() < 1e-10);
//! assert!((s[(1, 1)] - 3.0).abs() < 1e-10);
//! # Ok::<(), diffserve_linalg::DecompError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod decomp;
pub mod matrix;

pub use decomp::{cholesky, determinant, lu_solve, sqrtm_psd, sym_eigen, DecompError, SymEigen};
pub use matrix::Mat;
