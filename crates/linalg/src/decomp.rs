//! Matrix decompositions: Cholesky, LU solve, Jacobi eigendecomposition,
//! and the PSD matrix square root needed by the Fréchet distance.

use crate::matrix::Mat;

/// Error from a failed decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// The input must be square.
    NotSquare,
    /// The input must be symmetric.
    NotSymmetric,
    /// Cholesky found a non-positive pivot: the matrix is not positive
    /// definite.
    NotPositiveDefinite,
    /// LU elimination hit a (near-)zero pivot: the matrix is singular.
    Singular,
    /// Jacobi sweeps failed to converge within the iteration budget.
    NoConvergence,
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            DecompError::NotSquare => "matrix is not square",
            DecompError::NotSymmetric => "matrix is not symmetric",
            DecompError::NotPositiveDefinite => "matrix is not positive definite",
            DecompError::Singular => "matrix is singular",
            DecompError::NoConvergence => "eigendecomposition did not converge",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DecompError {}

/// Cholesky factorization of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular `L` with `A = L Lᵀ`.
///
/// # Errors
///
/// Returns [`DecompError::NotSquare`] or [`DecompError::NotPositiveDefinite`].
///
/// # Examples
///
/// ```
/// use diffserve_linalg::{cholesky, Mat};
///
/// let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let l = cholesky(&a)?;
/// let reconstructed = l.matmul(&l.transpose());
/// assert!(a.max_abs_diff(&reconstructed) < 1e-12);
/// # Ok::<(), diffserve_linalg::DecompError>(())
/// ```
pub fn cholesky(a: &Mat) -> Result<Mat, DecompError> {
    if !a.is_square() {
        return Err(DecompError::NotSquare);
    }
    let n = a.rows();
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(DecompError::NotPositiveDefinite);
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` by LU decomposition with partial pivoting.
///
/// # Errors
///
/// Returns [`DecompError::NotSquare`] or [`DecompError::Singular`].
///
/// # Panics
///
/// Panics if `b.len()` does not match the matrix dimension.
pub fn lu_solve(a: &Mat, b: &[f64]) -> Result<Vec<f64>, DecompError> {
    if !a.is_square() {
        return Err(DecompError::NotSquare);
    }
    let n = a.rows();
    assert_eq!(b.len(), n, "rhs length must match matrix dimension");
    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut best = lu[(col, col)].abs();
        for r in (col + 1)..n {
            let v = lu[(r, col)].abs();
            if v > best {
                best = v;
                pivot_row = r;
            }
        }
        if best < 1e-12 {
            return Err(DecompError::Singular);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = lu[(col, j)];
                lu[(col, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            perm.swap(col, pivot_row);
            x.swap(col, pivot_row);
        }
        for r in (col + 1)..n {
            let factor = lu[(r, col)] / lu[(col, col)];
            lu[(r, col)] = factor;
            for j in (col + 1)..n {
                let upd = factor * lu[(col, j)];
                lu[(r, j)] -= upd;
            }
            x[r] -= factor * x[col];
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut sum = x[i];
        for j in (i + 1)..n {
            sum -= lu[(i, j)] * x[j];
        }
        x[i] = sum / lu[(i, i)];
    }
    Ok(x)
}

/// Result of a symmetric eigendecomposition: `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors stored as matrix columns, ordered to match
    /// [`SymEigen::values`].
    pub vectors: Mat,
}

/// Jacobi eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// Returns [`DecompError::NotSquare`], [`DecompError::NotSymmetric`], or
/// [`DecompError::NoConvergence`] if the off-diagonal mass does not vanish
/// within 100 sweeps (never observed for the ≤64×64 matrices this workspace
/// uses).
pub fn sym_eigen(a: &Mat) -> Result<SymEigen, DecompError> {
    if !a.is_square() {
        return Err(DecompError::NotSquare);
    }
    let scale = a.frobenius_norm().max(1.0);
    if !a.is_symmetric(1e-8 * scale) {
        return Err(DecompError::NotSymmetric);
    }
    let n = a.rows();
    let mut m = a.clone();
    m.symmetrize();
    let mut v = Mat::identity(n);

    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-12 * scale {
            let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eigenvalues"));
            let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let vectors = Mat::from_fn(n, n, |r, c| v[(r, pairs[c].1)]);
            return Ok(SymEigen { values, vectors });
        }
        // One cyclic sweep of Jacobi rotations.
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(DecompError::NoConvergence)
}

/// Square root of a symmetric positive semi-definite matrix.
///
/// Computed as `V diag(√max(λ, 0)) Vᵀ`; tiny negative eigenvalues from
/// floating-point noise are clamped to zero, which is the standard practice
/// in FID implementations.
///
/// # Errors
///
/// Propagates eigendecomposition failures.
pub fn sqrtm_psd(a: &Mat) -> Result<Mat, DecompError> {
    let eig = sym_eigen(a)?;
    let sqrt_vals: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
    let d = Mat::from_diag(&sqrt_vals);
    let vt = eig.vectors.transpose();
    Ok(eig.vectors.matmul(&d).matmul(&vt))
}

/// Determinant via LU with partial pivoting (0.0 for singular matrices).
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn determinant(a: &Mat) -> f64 {
    assert!(a.is_square(), "determinant requires a square matrix");
    let n = a.rows();
    let mut lu = a.clone();
    let mut det = 1.0;
    for col in 0..n {
        let mut pivot_row = col;
        let mut best = lu[(col, col)].abs();
        for r in (col + 1)..n {
            let v = lu[(r, col)].abs();
            if v > best {
                best = v;
                pivot_row = r;
            }
        }
        if best < 1e-300 {
            return 0.0;
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = lu[(col, j)];
                lu[(col, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            det = -det;
        }
        det *= lu[(col, col)];
        for r in (col + 1)..n {
            let factor = lu[(r, col)] / lu[(col, col)];
            for j in (col + 1)..n {
                let upd = factor * lu[(col, j)];
                lu[(r, j)] -= upd;
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn random_spd(n: usize, seed: u64) -> Mat {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b = Mat::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        // BᵀB + n·I is symmetric positive definite.
        let mut spd = b.transpose().matmul(&b);
        for i in 0..n {
            spd[(i, i)] += n as f64;
        }
        spd
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = random_spd(6, 1);
        let l = cholesky(&a).unwrap();
        let r = l.matmul(&l.transpose());
        assert!(a.max_abs_diff(&r) < 1e-9);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&a), Err(DecompError::NotPositiveDefinite));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert_eq!(cholesky(&Mat::zeros(2, 3)), Err(DecompError::NotSquare));
    }

    #[test]
    fn lu_solve_known_system() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = lu_solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn lu_solve_requires_pivoting() {
        // Zero on the initial pivot position forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn lu_solve_detects_singular() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(DecompError::Singular));
    }

    #[test]
    fn eigen_diagonal_matrix() {
        let a = Mat::from_diag(&[3.0, 1.0, 2.0]);
        let eig = sym_eigen(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 2.0).abs() < 1e-10);
        assert!((eig.values[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = random_spd(8, 2);
        let eig = sym_eigen(&a).unwrap();
        let d = Mat::from_diag(&eig.values);
        let r = eig.vectors.matmul(&d).matmul(&eig.vectors.transpose());
        assert!(a.max_abs_diff(&r) < 1e-8);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_spd(7, 3);
        let eig = sym_eigen(&a).unwrap();
        let vtv = eig.vectors.transpose().matmul(&eig.vectors);
        assert!(vtv.max_abs_diff(&Mat::identity(7)) < 1e-9);
    }

    #[test]
    fn eigen_rejects_asymmetric() {
        let a = Mat::from_rows(&[&[1.0, 5.0], &[0.0, 1.0]]);
        assert_eq!(sym_eigen(&a).unwrap_err(), DecompError::NotSymmetric);
    }

    #[test]
    fn sqrtm_squares_back() {
        let a = random_spd(6, 4);
        let s = sqrtm_psd(&a).unwrap();
        let r = s.matmul(&s);
        assert!(a.max_abs_diff(&r) < 1e-8);
        assert!(s.is_symmetric(1e-8));
    }

    #[test]
    fn sqrtm_identity() {
        let s = sqrtm_psd(&Mat::identity(4)).unwrap();
        assert!(s.max_abs_diff(&Mat::identity(4)) < 1e-10);
    }

    #[test]
    fn determinant_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((determinant(&a) + 2.0).abs() < 1e-12);
        assert_eq!(determinant(&Mat::identity(5)), 1.0);
        let singular = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(determinant(&singular), 0.0);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            DecompError::NotSquare,
            DecompError::NotSymmetric,
            DecompError::NotPositiveDefinite,
            DecompError::Singular,
            DecompError::NoConvergence,
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn cholesky_roundtrip_random(seed in 0u64..500, n in 2usize..8) {
            let a = random_spd(n, seed);
            let l = cholesky(&a).unwrap();
            let r = l.matmul(&l.transpose());
            prop_assert!(a.max_abs_diff(&r) < 1e-8);
        }

        #[test]
        fn lu_solve_residual_small(seed in 0u64..500, n in 2usize..8) {
            let a = random_spd(n, seed);
            let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let x = lu_solve(&a, &b).unwrap();
            let ax = a.matvec(&x);
            for i in 0..n {
                prop_assert!((ax[i] - b[i]).abs() < 1e-8);
            }
        }

        #[test]
        fn sqrtm_random_spd(seed in 0u64..200, n in 2usize..8) {
            let a = random_spd(n, seed);
            let s = sqrtm_psd(&a).unwrap();
            prop_assert!(a.max_abs_diff(&s.matmul(&s)) < 1e-7);
        }

        #[test]
        fn eigen_trace_equals_sum(seed in 0u64..200, n in 2usize..8) {
            let a = random_spd(n, seed);
            let eig = sym_eigen(&a).unwrap();
            let sum: f64 = eig.values.iter().sum();
            prop_assert!((sum - a.trace()).abs() < 1e-8);
        }
    }
}
