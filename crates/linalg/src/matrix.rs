//! Dense row-major matrices over `f64`.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64`.
///
/// Sized for the workloads in this workspace: feature covariances (≤ 64×64),
/// simplex tableaus (hundreds of columns), and tiny MLP weights. All
/// operations are plain loops — clarity over BLAS.
///
/// # Examples
///
/// ```
/// use diffserve_linalg::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "from_rows requires non-empty rows");
        let mut m = Mat::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has inconsistent length");
            m.data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Creates a square diagonal matrix from `diag`.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is empty.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Mat::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Entry-wise scaling.
    pub fn scale(&self, s: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry-wise difference with `other`.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Returns `true` if `self` is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`. Useful after accumulating
    /// floating-point asymmetries in covariance estimates.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Raw data in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data in row-major order.
    ///
    /// Intended for optimizers that update parameter matrices as flat
    /// vectors; the dimensions cannot change through this view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add dims");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub dims");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Mat {
    type Output = Mat;
    fn mul(self, rhs: f64) -> Mat {
        self.scale(rhs)
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "{}]", if self.cols > 8 { ", ..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Statistics over a data matrix whose rows are observations.
impl Mat {
    /// Column means of a data matrix (rows = samples).
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, m) in means.iter_mut().enumerate() {
                *m += self[(i, j)];
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Sample covariance (denominator `n - 1`) of a data matrix
    /// (rows = samples, cols = features).
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two samples.
    pub fn covariance(&self) -> Mat {
        assert!(self.rows >= 2, "covariance requires at least two samples");
        let means = self.column_means();
        let mut cov = Mat::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            for a in 0..self.cols {
                let da = self[(i, a)] - means[a];
                for b in a..self.cols {
                    cov[(a, b)] += da * (self[(i, b)] - means[b]);
                }
            }
        }
        let denom = (self.rows - 1) as f64;
        for a in 0..self.cols {
            for b in a..self.cols {
                cov[(a, b)] /= denom;
                cov[(b, a)] = cov[(a, b)];
            }
        }
        cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i3 = Mat::identity(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn trace_and_norm() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.trace(), 7.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Mat::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Mat::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 2.0, Mat::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn symmetry_checks() {
        let mut a = Mat::from_rows(&[&[1.0, 2.0], &[2.0 + 1e-12, 1.0]]);
        assert!(a.is_symmetric(1e-9));
        assert!(!Mat::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).is_symmetric(1e-9));
        a.symmetrize();
        assert_eq!(a[(0, 1)], a[(1, 0)]);
    }

    #[test]
    fn covariance_of_known_data() {
        // Two perfectly correlated features.
        let d = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let c = d.covariance();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        assert!(c.is_symmetric(1e-12));
    }

    #[test]
    fn column_means() {
        let d = Mat::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
        assert_eq!(d.column_means(), vec![2.0, 20.0]);
    }

    #[test]
    fn from_diag_places_entries() {
        let d = Mat::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Mat::identity(2)).is_empty());
    }
}
