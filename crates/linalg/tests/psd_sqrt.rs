//! PSD matrix square-root round-trips. `sqrtm_psd` sits on the FID critical
//! path (`diffserve-metrics` computes tr((Σ₁Σ₂)^½) through it), so the
//! square-root of known PSD matrices must reconstruct exactly and the
//! round-trip sqrt(A)·sqrt(A) must hold to tight tolerance.

use diffserve_linalg::{sqrtm_psd, sym_eigen, Mat};

#[test]
fn sqrt_of_diagonal_is_elementwise() {
    let a = Mat::from_diag(&[4.0, 9.0, 0.25, 0.0]);
    let s = sqrtm_psd(&a).expect("diagonal PSD");
    for (i, want) in [2.0, 3.0, 0.5, 0.0].into_iter().enumerate() {
        assert!((s[(i, i)] - want).abs() < 1e-12, "entry {i}: {}", s[(i, i)]);
    }
    assert!(
        s.max_abs_diff(&s.transpose()) < 1e-12,
        "sqrt must stay symmetric"
    );
}

#[test]
fn known_2x2_root_is_recovered() {
    // A = B·B for B = [[2, 1], [1, 3]]; the principal root of A is B itself.
    let b = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
    let a = b.matmul(&b);
    let s = sqrtm_psd(&a).expect("SPD input");
    assert!(
        s.max_abs_diff(&b) < 1e-10,
        "expected the principal root, diff {}",
        s.max_abs_diff(&b)
    );
}

#[test]
fn round_trip_reconstructs_structured_psd_matrices() {
    // Gram matrices X·Xᵀ are PSD by construction, including rank-deficient
    // ones (more rows than columns ⇒ rank ≤ cols).
    let factors = [
        Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]),
        Mat::from_rows(&[&[0.5, -1.5, 2.5], &[1.0, 0.0, -1.0], &[2.0, 2.0, 2.0]]),
        Mat::from_rows(&[&[1e-3, 0.0], &[0.0, 1e3], &[1.0, 1.0]]),
    ];
    for (k, x) in factors.iter().enumerate() {
        let mut a = x.matmul(&x.transpose());
        a.symmetrize();
        let s = sqrtm_psd(&a).expect("Gram matrix is PSD");
        let rt = s.matmul(&s);
        let scale = a.frobenius_norm().max(1.0);
        assert!(
            a.max_abs_diff(&rt) < 1e-8 * scale,
            "factor {k}: round-trip diff {}",
            a.max_abs_diff(&rt)
        );
        // The principal root must itself be PSD: symmetric with
        // non-negative spectrum.
        assert!(s.is_symmetric(1e-9));
        let eig = sym_eigen(&s).expect("symmetric root");
        assert!(
            eig.values.iter().all(|&l| l > -1e-8 * scale),
            "factor {k}: negative root eigenvalue {:?}",
            eig.values
        );
    }
}

#[test]
fn sqrt_commutes_with_spectral_scaling() {
    // sqrt(c²·A) = c·sqrt(A) for c ≥ 0.
    let x = Mat::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
    let mut a = x.matmul(&x.transpose());
    a.symmetrize();
    let s = sqrtm_psd(&a).expect("PSD");
    let scaled = sqrtm_psd(&a.scale(9.0)).expect("PSD");
    assert!(
        scaled.max_abs_diff(&s.scale(3.0)) < 1e-9,
        "diff {}",
        scaled.max_abs_diff(&s.scale(3.0))
    );
}

#[test]
fn negative_eigenvalues_are_clamped_to_zero() {
    // Eigenvalues ±1: the documented contract clamps the negative branch
    // (standard FID practice), leaving the root of the projection onto the
    // positive eigenspace: ½·[[1, 1], [1, 1]].
    let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
    let s = sqrtm_psd(&a).expect("clamped root");
    let want = Mat::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
    assert!(
        s.max_abs_diff(&want) < 1e-10,
        "diff {}",
        s.max_abs_diff(&want)
    );
}
