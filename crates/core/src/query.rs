//! Queries and responses flowing through the serving system.

use diffserve_imagegen::Prompt;
use diffserve_simkit::time::SimTime;

/// Identifier of a query within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// Which cascade member produced the final response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelTier {
    /// The lightweight diffusion model.
    Light,
    /// The heavyweight diffusion model.
    Heavy,
}

impl ModelTier {
    /// The other tier.
    pub fn other(self) -> ModelTier {
        match self {
            ModelTier::Light => ModelTier::Heavy,
            ModelTier::Heavy => ModelTier::Light,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelTier::Light => "light",
            ModelTier::Heavy => "heavy",
        }
    }
}

/// Per-worker health: how fast the worker currently runs relative to its
/// nameplate profile. A healthy worker has `speed_factor == 1.0`; a
/// degraded one (thermal throttling, noisy neighbor, sick straggler) has
/// `speed_factor < 1.0` and every batch it executes takes
/// `1 / speed_factor` times its nameplate latency. Both execution engines
/// thread this through dispatch, and the control plane sums it into the
/// fleet's *effective* capacity so the allocator solves against degraded
/// throughput instead of nameplate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerHealth {
    /// Fraction of nameplate speed the worker delivers, in `(0, 1]`.
    pub speed_factor: f64,
}

impl Default for WorkerHealth {
    fn default() -> Self {
        WorkerHealth::healthy()
    }
}

impl WorkerHealth {
    /// Full nameplate speed.
    pub fn healthy() -> Self {
        WorkerHealth { speed_factor: 1.0 }
    }

    /// Degraded to `1 / slowdown` of nameplate speed.
    ///
    /// # Panics
    ///
    /// Panics unless `slowdown` is finite and `>= 1`.
    pub fn degraded(slowdown: f64) -> Self {
        assert!(
            slowdown.is_finite() && slowdown >= 1.0,
            "slowdown must be finite and >= 1, got {slowdown}"
        );
        WorkerHealth {
            speed_factor: 1.0 / slowdown,
        }
    }

    /// Whether the worker currently runs below nameplate speed.
    pub fn is_degraded(self) -> bool {
        self.speed_factor < 1.0
    }

    /// The service-time multiplier this health implies (`>= 1`).
    pub fn slowdown(self) -> f64 {
        1.0 / self.speed_factor
    }
}

/// A query in flight: a prompt plus its arrival time and deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Unique id within the run.
    pub id: QueryId,
    /// The text prompt (synthetic stand-in).
    pub prompt: Prompt,
    /// When the query entered the system.
    pub arrival: SimTime,
    /// Hard latency deadline (`arrival + SLO`).
    pub deadline: SimTime,
}

/// A completed response.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedResponse {
    /// The query this answers.
    pub id: QueryId,
    /// Arrival time of the query.
    pub arrival: SimTime,
    /// Completion time.
    pub completion: SimTime,
    /// Feature vector of the returned image (for FID).
    pub features: Vec<f64>,
    /// Latent quality of the returned image.
    pub quality: f64,
    /// Which model produced the response. For quality-ladder runs this is
    /// the legacy two-bucket view: `Light` iff the entry tier answered.
    pub tier: ModelTier,
    /// 0-based ladder tier that produced the response; `0`/`1` on legacy
    /// two-tier runs (matching [`CompletedResponse::tier`]), deeper values
    /// on N-tier ladders.
    pub tier_index: usize,
    /// Discriminator confidence of the light output, when one was scored.
    pub confidence: Option<f64>,
    /// Total GPU-seconds of model execution this query consumed across
    /// every tier it touched (light generation, discriminator scoring, and
    /// — for escalated queries — the heavy pass, net of any resumed steps).
    /// Single-query nameplate cost; batching amortization and worker
    /// degradation are excluded so the number compares escalation *modes*
    /// rather than scheduler luck.
    pub gpu_time: f64,
    /// Heavy-tier denoise steps skipped by resuming from the light tier's
    /// latents. Zero for light-tier completions and for restart-mode
    /// escalations.
    pub reused_steps: u32,
}

impl CompletedResponse {
    /// End-to-end latency in seconds.
    pub fn latency_secs(&self) -> f64 {
        self.completion.saturating_since(self.arrival).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_other_flips() {
        assert_eq!(ModelTier::Light.other(), ModelTier::Heavy);
        assert_eq!(ModelTier::Heavy.other(), ModelTier::Light);
        assert_eq!(ModelTier::Light.name(), "light");
    }

    #[test]
    fn latency_computation() {
        let r = CompletedResponse {
            id: QueryId(1),
            arrival: SimTime::from_secs(10),
            completion: SimTime::from_secs(12),
            features: vec![],
            quality: 0.5,
            tier: ModelTier::Heavy,
            tier_index: 1,
            confidence: Some(0.3),
            gpu_time: 1.9,
            reused_steps: 0,
        };
        assert!((r.latency_secs() - 2.0).abs() < 1e-12);
    }
}
