//! Prepared cascade artifacts shared across simulation runs.

use diffserve_imagegen::{
    CascadeSpec, DeferralProfile, Discriminator, DiscriminatorConfig, PromptDataset,
};
use diffserve_metrics::GaussianStats;
use diffserve_simkit::rng::derive_seed;

/// Everything a serving run needs that is prepared *offline* in the paper:
/// the prompt dataset, the trained discriminator, the profiled deferral
/// curve `f(t)`, and the FID reference Gaussian.
#[derive(Debug, Clone)]
pub struct CascadeRuntime {
    /// The light/heavy pairing with latency and SLO metadata.
    pub spec: CascadeSpec,
    /// Synthetic prompt dataset (queries + FID reference features).
    pub dataset: PromptDataset,
    /// Trained cascade discriminator.
    pub discriminator: Discriminator,
    /// Offline-profiled deferral curve `f(t)` (updated online by the
    /// controller).
    pub deferral: DeferralProfile,
    /// Gaussian fit of the FID reference set, reused by every window.
    pub reference: GaussianStats,
}

impl CascadeRuntime {
    /// Prepares a cascade: synthesizes the dataset, trains the
    /// discriminator, and profiles `f(t)` on prompts held out from
    /// discriminator training.
    ///
    /// # Panics
    ///
    /// Panics if `dataset_size` is too small to hold both the
    /// discriminator training set and a held-out profiling set.
    ///
    /// # Examples
    ///
    /// ```
    /// use diffserve_core::CascadeRuntime;
    /// use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
    ///
    /// // Reduced scale so the doctest trains in milliseconds; experiments
    /// // use 5000 prompts and the default discriminator config.
    /// let runtime = CascadeRuntime::prepare(
    ///     cascade1(FeatureSpec::default()),
    ///     200,
    ///     7,
    ///     DiscriminatorConfig { train_prompts: 100, epochs: 2, ..Default::default() },
    /// );
    /// // f(t) is profiled on the held-out prompts only.
    /// assert_eq!(runtime.deferral.sample_count(), 100);
    /// assert!(runtime.deferral.fraction_deferred(1.1) >= 1.0);
    /// ```
    pub fn prepare(
        spec: CascadeSpec,
        dataset_size: usize,
        seed: u64,
        disc_config: DiscriminatorConfig,
    ) -> Self {
        assert!(
            dataset_size > disc_config.train_prompts + 64,
            "dataset of {dataset_size} leaves no held-out prompts after {} training prompts",
            disc_config.train_prompts
        );
        let feature_spec = *spec.light.spec();
        let dataset = PromptDataset::synthesize(
            spec.dataset,
            dataset_size,
            derive_seed(seed, 0xDA7A),
            feature_spec,
        );
        let discriminator = Discriminator::train(&dataset, &spec.light, &spec.heavy, disc_config);

        // Profile f(t) on held-out prompts, exactly like the paper's offline
        // initialization.
        let held_out = &dataset.prompts()[disc_config.train_prompts..];
        let confidences: Vec<f64> = held_out
            .iter()
            .map(|p| discriminator.confidence(&spec.light.generate(p).features))
            .collect();
        let deferral = DeferralProfile::from_confidences(confidences)
            .expect("held-out profiling set is non-empty by the dataset-size assertion");

        let reference = GaussianStats::fit(dataset.real_features(), 1e-6)
            .expect("reference set has enough samples");

        CascadeRuntime {
            spec,
            dataset,
            discriminator,
            deferral,
            reference,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffserve_imagegen::{cascade1, FeatureSpec};

    fn quick_runtime() -> CascadeRuntime {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            1000,
            7,
            DiscriminatorConfig {
                train_prompts: 400,
                epochs: 10,
                ..Default::default()
            },
        )
    }

    #[test]
    fn deferral_profile_is_roughly_uniform() {
        // Calibrated confidences are near-uniform, so f(t) ≈ t.
        let rt = quick_runtime();
        for t in [0.2, 0.5, 0.8] {
            let f = rt.deferral.fraction_deferred(t);
            assert!((f - t).abs() < 0.15, "f({t}) = {f}, expected ≈ {t}");
        }
    }

    #[test]
    fn profiling_uses_held_out_prompts() {
        let rt = quick_runtime();
        assert_eq!(rt.deferral.sample_count(), 600);
    }

    #[test]
    fn reference_dimensions_match() {
        let rt = quick_runtime();
        assert_eq!(rt.reference.dim(), diffserve_imagegen::features::DIM);
    }

    #[test]
    #[should_panic(expected = "held-out")]
    fn undersized_dataset_panics() {
        let _ = CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            400,
            7,
            DiscriminatorConfig {
                train_prompts: 400,
                epochs: 2,
                ..Default::default()
            },
        );
    }
}
