//! Prepared cascade artifacts shared across simulation runs.

use diffserve_imagegen::{
    CascadeSpec, DeferralProfile, DiffusionModel, Discriminator, DiscriminatorConfig,
    PromptDataset, TierLadder,
};
use diffserve_metrics::GaussianStats;
use diffserve_simkit::rng::derive_seed;

/// Per-boundary artifacts for an N-tier quality ladder.
///
/// `models[k]` is tier `k`, cheapest first; `discriminators[k]` and
/// `deferrals[k]` belong to the escalation boundary between tiers `k` and
/// `k+1` (so both vectors have length N-1). Boundary `0`'s artifacts are
/// always identical to the legacy cascade's `discriminator`/`deferral`
/// fields — a two-tier ladder is the legacy cascade.
#[derive(Debug, Clone)]
pub struct LadderArtifacts {
    /// The model tiers, cheapest first.
    pub models: Vec<DiffusionModel>,
    /// One discriminator per boundary, each trained to tell tier-`k`
    /// outputs from terminal-tier outputs.
    pub discriminators: Vec<Discriminator>,
    /// One offline deferral profile `f_k(t)` per boundary, profiled from
    /// boundary-`k` confidences on the held-out prompts.
    pub deferrals: Vec<DeferralProfile>,
}

impl LadderArtifacts {
    /// Number of model tiers (N).
    pub fn num_tiers(&self) -> usize {
        self.models.len()
    }

    /// Number of escalation boundaries (N-1).
    pub fn boundaries(&self) -> usize {
        self.models.len() - 1
    }
}

/// Everything a serving run needs that is prepared *offline* in the paper:
/// the prompt dataset, the trained discriminator, the profiled deferral
/// curve `f(t)`, and the FID reference Gaussian.
#[derive(Debug, Clone)]
pub struct CascadeRuntime {
    /// The light/heavy pairing with latency and SLO metadata.
    pub spec: CascadeSpec,
    /// Synthetic prompt dataset (queries + FID reference features).
    pub dataset: PromptDataset,
    /// Trained cascade discriminator.
    pub discriminator: Discriminator,
    /// Offline-profiled deferral curve `f(t)` (updated online by the
    /// controller).
    pub deferral: DeferralProfile,
    /// Gaussian fit of the FID reference set, reused by every window.
    pub reference: GaussianStats,
    /// N-tier ladder artifacts, present only when the runtime was prepared
    /// with [`CascadeRuntime::prepare_ladder`]. `None` (every legacy
    /// construction) keeps both serving engines on the exact two-tier
    /// cascade code path.
    pub ladder: Option<LadderArtifacts>,
}

impl CascadeRuntime {
    /// Prepares a cascade: synthesizes the dataset, trains the
    /// discriminator, and profiles `f(t)` on prompts held out from
    /// discriminator training.
    ///
    /// # Panics
    ///
    /// Panics if `dataset_size` is too small to hold both the
    /// discriminator training set and a held-out profiling set.
    ///
    /// # Examples
    ///
    /// ```
    /// use diffserve_core::CascadeRuntime;
    /// use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
    ///
    /// // Reduced scale so the doctest trains in milliseconds; experiments
    /// // use 5000 prompts and the default discriminator config.
    /// let runtime = CascadeRuntime::prepare(
    ///     cascade1(FeatureSpec::default()),
    ///     200,
    ///     7,
    ///     DiscriminatorConfig { train_prompts: 100, epochs: 2, ..Default::default() },
    /// );
    /// // f(t) is profiled on the held-out prompts only.
    /// assert_eq!(runtime.deferral.sample_count(), 100);
    /// assert!(runtime.deferral.fraction_deferred(1.1) >= 1.0);
    /// ```
    pub fn prepare(
        spec: CascadeSpec,
        dataset_size: usize,
        seed: u64,
        disc_config: DiscriminatorConfig,
    ) -> Self {
        assert!(
            dataset_size > disc_config.train_prompts + 64,
            "dataset of {dataset_size} leaves no held-out prompts after {} training prompts",
            disc_config.train_prompts
        );
        let feature_spec = *spec.light.spec();
        let dataset = PromptDataset::synthesize(
            spec.dataset,
            dataset_size,
            derive_seed(seed, 0xDA7A),
            feature_spec,
        );
        let discriminator = Discriminator::train(&dataset, &spec.light, &spec.heavy, disc_config);

        // Profile f(t) on held-out prompts, exactly like the paper's offline
        // initialization.
        let held_out = &dataset.prompts()[disc_config.train_prompts..];
        let confidences: Vec<f64> = held_out
            .iter()
            .map(|p| discriminator.confidence(&spec.light.generate(p).features))
            .collect();
        let deferral = DeferralProfile::from_confidences(confidences)
            .expect("held-out profiling set is non-empty by the dataset-size assertion");

        let reference = GaussianStats::fit(dataset.real_features(), 1e-6)
            .expect("reference set has enough samples");

        CascadeRuntime {
            spec,
            dataset,
            discriminator,
            deferral,
            reference,
            ladder: None,
        }
    }

    /// Prepares an N-tier quality ladder: synthesizes the dataset once,
    /// then trains one discriminator and profiles one deferral curve per
    /// boundary (each on the same held-out prompt split the legacy cascade
    /// uses).
    ///
    /// A two-tier ladder reuses the legacy preparation code paths verbatim,
    /// so its artifacts — and every downstream serving decision — are
    /// bit-identical to [`CascadeRuntime::prepare`] on the equivalent
    /// [`CascadeSpec`].
    ///
    /// # Panics
    ///
    /// Panics if the ladder fails [`TierLadder::validate`] or if
    /// `dataset_size` is too small to hold both the discriminator training
    /// set and a held-out profiling set.
    pub fn prepare_ladder(
        ladder: TierLadder,
        dataset_size: usize,
        seed: u64,
        disc_config: DiscriminatorConfig,
    ) -> Self {
        ladder.validate().expect("valid tier ladder");
        let mut runtime =
            CascadeRuntime::prepare(ladder.cascade_view(), dataset_size, seed, disc_config);

        let terminal = &ladder.tiers[ladder.num_tiers() - 1];
        let held_out = &runtime.dataset.prompts()[disc_config.train_prompts..];
        let mut discriminators = Vec::with_capacity(ladder.boundaries());
        let mut deferrals = Vec::with_capacity(ladder.boundaries());
        for (k, tier) in ladder.tiers[..ladder.num_tiers() - 1].iter().enumerate() {
            if k == 0 {
                // Boundary 0 is exactly the legacy cascade's artifacts.
                discriminators.push(runtime.discriminator.clone());
                deferrals.push(runtime.deferral.clone());
                continue;
            }
            let disc = Discriminator::train(&runtime.dataset, tier, terminal, disc_config);
            let confidences: Vec<f64> = held_out
                .iter()
                .map(|p| disc.confidence(&tier.generate(p).features))
                .collect();
            let deferral = DeferralProfile::from_confidences(confidences)
                .expect("held-out profiling set is non-empty by the dataset-size assertion");
            discriminators.push(disc);
            deferrals.push(deferral);
        }

        runtime.ladder = Some(LadderArtifacts {
            models: ladder.tiers,
            discriminators,
            deferrals,
        });
        runtime
    }

    /// Number of model tiers this runtime serves (2 for a legacy cascade).
    pub fn num_tiers(&self) -> usize {
        self.ladder.as_ref().map_or(2, LadderArtifacts::num_tiers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffserve_imagegen::{cascade1, FeatureSpec};

    fn quick_runtime() -> CascadeRuntime {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            1000,
            7,
            DiscriminatorConfig {
                train_prompts: 400,
                epochs: 10,
                ..Default::default()
            },
        )
    }

    #[test]
    fn deferral_profile_is_roughly_uniform() {
        // Calibrated confidences are near-uniform, so f(t) ≈ t.
        let rt = quick_runtime();
        for t in [0.2, 0.5, 0.8] {
            let f = rt.deferral.fraction_deferred(t);
            assert!((f - t).abs() < 0.15, "f({t}) = {f}, expected ≈ {t}");
        }
    }

    #[test]
    fn profiling_uses_held_out_prompts() {
        let rt = quick_runtime();
        assert_eq!(rt.deferral.sample_count(), 600);
    }

    #[test]
    fn reference_dimensions_match() {
        let rt = quick_runtime();
        assert_eq!(rt.reference.dim(), diffserve_imagegen::features::DIM);
    }

    #[test]
    fn two_tier_ladder_artifacts_match_legacy() {
        use diffserve_imagegen::{cascade1, TierLadder};
        let spec = FeatureSpec::default();
        let legacy = quick_runtime();
        let ladder = CascadeRuntime::prepare_ladder(
            TierLadder::from_cascade(&cascade1(spec)),
            1000,
            7,
            DiscriminatorConfig {
                train_prompts: 400,
                epochs: 10,
                ..Default::default()
            },
        );
        let artifacts = ladder.ladder.as_ref().expect("ladder artifacts");
        assert_eq!(artifacts.num_tiers(), 2);
        assert_eq!(artifacts.boundaries(), 1);
        assert_eq!(ladder.num_tiers(), 2);
        // Boundary 0 is the legacy discriminator/profile bit-for-bit.
        let p = &legacy.dataset.prompts()[11];
        let img = legacy.spec.light.generate(p);
        assert_eq!(
            legacy.discriminator.confidence(&img.features),
            artifacts.discriminators[0].confidence(&img.features)
        );
        for t in [0.1, 0.4, 0.8] {
            assert_eq!(
                legacy.deferral.fraction_deferred(t),
                artifacts.deferrals[0].fraction_deferred(t)
            );
        }
    }

    #[test]
    fn three_tier_ladder_prepares_per_boundary_artifacts() {
        use diffserve_imagegen::ladder3;
        let rt = CascadeRuntime::prepare_ladder(
            ladder3(FeatureSpec::default()),
            700,
            7,
            DiscriminatorConfig {
                train_prompts: 300,
                epochs: 4,
                ..Default::default()
            },
        );
        let artifacts = rt.ladder.as_ref().expect("ladder artifacts");
        assert_eq!(artifacts.num_tiers(), 3);
        assert_eq!(artifacts.discriminators.len(), 2);
        assert_eq!(artifacts.deferrals.len(), 2);
        // Both boundaries were profiled on the held-out split.
        for d in &artifacts.deferrals {
            assert_eq!(d.sample_count(), 400);
        }
        // The embedded cascade view spans the ladder's endpoints.
        assert_eq!(rt.spec.light.name(), artifacts.models[0].name());
        assert_eq!(rt.spec.heavy.name(), artifacts.models[2].name());
    }

    #[test]
    #[should_panic(expected = "held-out")]
    fn undersized_dataset_panics() {
        let _ = CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            400,
            7,
            DiscriminatorConfig {
                train_prompts: 400,
                epochs: 2,
                ..Default::default()
            },
        );
    }
}
