//! Heterogeneous-cluster allocation (paper §5, "Scalability of DiffServe").
//!
//! The paper notes that deploying DiffServe on mixed GPU fleets needs "a
//! slightly more complex MILP formulation ... to account for different
//! server classes and model runtimes on each class", with no fundamental
//! limitation. This module implements that extension: worker classes with
//! per-class speed factors, and an allocator that assigns each class's
//! workers to a tier while maximizing the confidence threshold under the
//! same Eq. 1–4 constraints.

use diffserve_imagegen::{DeferralProfile, LatencyProfile};

use crate::config::ConfigError;

/// A homogeneous group of workers within a heterogeneous cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerClass {
    /// Display name (e.g. `"A100"`, `"V100"`).
    pub name: String,
    /// Number of workers of this class.
    pub count: usize,
    /// Relative execution speed (1.0 = the profile's reference GPU; 0.5 =
    /// half as fast, so execution latencies double).
    pub speed: f64,
}

impl WorkerClass {
    /// Creates a class.
    ///
    /// # Errors
    ///
    /// Rejects a class with zero workers, or a speed that is not finite
    /// and positive — a `speed` of `0.0` would make every latency infinite
    /// and silently poison the allocator's comparisons downstream.
    pub fn new(name: impl Into<String>, count: usize, speed: f64) -> Result<Self, ConfigError> {
        if count == 0 {
            return Err(ConfigError::new("class needs at least one worker"));
        }
        if !(speed > 0.0 && speed.is_finite()) {
            return Err(ConfigError::new("speed must be positive"));
        }
        Ok(WorkerClass {
            name: name.into(),
            count,
            speed,
        })
    }

    /// Execution latency of `profile` at batch `b` on this class.
    pub fn exec_latency_secs(&self, profile: &LatencyProfile, b: usize) -> f64 {
        profile.exec_latency(b).as_secs_f64() / self.speed
    }

    /// Throughput of `profile` at batch `b` on this class.
    pub fn throughput(&self, profile: &LatencyProfile, b: usize) -> f64 {
        b as f64 / self.exec_latency_secs(profile, b)
    }
}

/// Inputs to a heterogeneous allocation decision.
#[derive(Debug, Clone)]
pub struct HeteroInputs<'a> {
    /// Over-provisioned demand estimate (QPS).
    pub demand_qps: f64,
    /// Latency SLO in seconds.
    pub slo: f64,
    /// Queuing-delay estimates for the light and heavy stages.
    pub queue_delays: (f64, f64),
    /// Worker classes in the cluster.
    pub classes: &'a [WorkerClass],
    /// Deferral profile `f(t)`.
    pub deferral: &'a DeferralProfile,
    /// Light-model execution profile (reference GPU).
    pub light: LatencyProfile,
    /// Heavy-model execution profile (reference GPU).
    pub heavy: LatencyProfile,
    /// Per-image discriminator latency on the reference GPU.
    pub discriminator_latency: f64,
    /// Candidate batch sizes.
    pub batch_sizes: &'a [usize],
    /// Candidate thresholds (ascending).
    pub thresholds: &'a [f64],
}

/// A heterogeneous allocation: per-class worker counts per tier.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroAllocation {
    /// Confidence threshold.
    pub threshold: f64,
    /// `light_per_class[c]` workers of class `c` host the light model.
    pub light_per_class: Vec<usize>,
    /// `heavy_per_class[c]` workers of class `c` host the heavy model.
    pub heavy_per_class: Vec<usize>,
    /// Light-stage batch size.
    pub light_batch: usize,
    /// Heavy-stage batch size.
    pub heavy_batch: usize,
}

impl HeteroAllocation {
    /// Total light workers across classes.
    pub fn light_workers(&self) -> usize {
        self.light_per_class.iter().sum()
    }

    /// Total heavy workers across classes.
    pub fn heavy_workers(&self) -> usize {
        self.heavy_per_class.iter().sum()
    }
}

/// Solves the heterogeneous allocation by scanning batch pairs and, for
/// each, assigning classes to tiers to maximize the feasible threshold.
///
/// Strategy per `(b₁, b₂)`: heavier (faster) classes are the scarce
/// resource for the heavy tier, so classes are considered fastest-first for
/// the heavy side after the light tier takes the *slowest* workers that
/// still satisfy demand — fast GPUs waste the least time on the light
/// model's fixed overheads.
///
/// Returns `None` when no configuration satisfies the constraints.
pub fn solve_heterogeneous(inputs: &HeteroInputs<'_>) -> Option<HeteroAllocation> {
    let d = inputs.demand_qps.max(1e-9);
    let nc = inputs.classes.len();
    if nc == 0 {
        return None;
    }
    // Class order: slowest first (light tier consumes from the front,
    // heavy capacity accumulates from the back).
    let mut order: Vec<usize> = (0..nc).collect();
    order.sort_by(|&a, &b| {
        inputs.classes[a]
            .speed
            .partial_cmp(&inputs.classes[b].speed)
            .expect("finite speeds")
    });

    let disc = inputs.discriminator_latency;
    let mut best: Option<HeteroAllocation> = None;

    for &b1 in inputs.batch_sizes {
        for &b2 in inputs.batch_sizes {
            // Latency constraint uses the *slowest class that might host*
            // each tier — conservative, as the paper's per-class runtime
            // accounting would be.
            let slowest = order[0];
            let lat = inputs.classes[slowest].exec_latency_secs(&inputs.light, b1)
                + disc * b1 as f64
                + inputs.classes[slowest].exec_latency_secs(&inputs.heavy, b2)
                + inputs.queue_delays.0
                + inputs.queue_delays.1;
            if lat > inputs.slo {
                continue;
            }

            // Assign light workers slowest-first until demand is covered.
            let mut light_per_class = vec![0usize; nc];
            let mut covered = 0.0;
            'outer: for &c in &order {
                for _ in 0..inputs.classes[c].count {
                    if covered >= d {
                        break 'outer;
                    }
                    let per = {
                        let e = inputs.classes[c].exec_latency_secs(&inputs.light, b1)
                            + disc * b1 as f64 / inputs.classes[c].speed;
                        b1 as f64 / e
                    };
                    light_per_class[c] += 1;
                    covered += per;
                }
            }
            if covered < d {
                continue; // Even the whole cluster cannot host the light stage.
            }
            // Everything else goes heavy.
            let mut heavy_per_class = vec![0usize; nc];
            let mut heavy_capacity = 0.0;
            for c in 0..nc {
                let spare = inputs.classes[c].count - light_per_class[c];
                heavy_per_class[c] = spare;
                heavy_capacity += spare as f64 * inputs.classes[c].throughput(&inputs.heavy, b2);
            }
            if heavy_per_class.iter().sum::<usize>() == 0 {
                continue; // Escalations need at least one host.
            }
            let max_fraction = (heavy_capacity / d).min(1.0);
            let mut t_star = None;
            for &t in inputs.thresholds.iter().rev() {
                if inputs.deferral.fraction_deferred(t) <= max_fraction + 1e-12 {
                    t_star = Some(t);
                    break;
                }
            }
            let Some(threshold) = t_star else { continue };
            let candidate = HeteroAllocation {
                threshold,
                light_per_class,
                heavy_per_class,
                light_batch: b1,
                heavy_batch: b2,
            };
            let better = best
                .as_ref()
                .is_none_or(|b| threshold > b.threshold + 1e-12);
            if better {
                best = Some(candidate);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffserve_imagegen::DeferralProfile;

    fn uniform() -> DeferralProfile {
        DeferralProfile::from_confidences((0..1000).map(|i| i as f64 / 1000.0).collect()).unwrap()
    }

    fn grid() -> Vec<f64> {
        (0..46).map(|i| 0.9 * i as f64 / 45.0).collect()
    }

    fn inputs<'a>(
        classes: &'a [WorkerClass],
        deferral: &'a DeferralProfile,
        thresholds: &'a [f64],
        batches: &'a [usize],
        demand: f64,
    ) -> HeteroInputs<'a> {
        HeteroInputs {
            demand_qps: demand,
            slo: 5.0,
            queue_delays: (0.2, 0.5),
            classes,
            deferral,
            light: LatencyProfile::new(0.10, 0.55),
            heavy: LatencyProfile::new(1.78, 0.12),
            discriminator_latency: 0.01,
            batch_sizes: batches,
            thresholds,
        }
    }

    #[test]
    fn homogeneous_reduces_to_flat_allocation() {
        let classes = [WorkerClass::new("A100", 16, 1.0).unwrap()];
        let deferral = uniform();
        let thresholds = grid();
        let batches = [1usize, 2, 4, 8, 16];
        let a = solve_heterogeneous(&inputs(&classes, &deferral, &thresholds, &batches, 10.0))
            .expect("feasible");
        assert_eq!(a.light_workers() + a.heavy_workers(), 16);
        assert!(a.threshold > 0.0);
    }

    #[test]
    fn mixed_fleet_beats_slow_only_fleet() {
        let deferral = uniform();
        let thresholds = grid();
        let batches = [1usize, 2, 4, 8, 16];
        let slow_only = [WorkerClass::new("V100", 16, 0.5).unwrap()];
        let mixed = [
            WorkerClass::new("V100", 8, 0.5).unwrap(),
            WorkerClass::new("A100", 8, 1.0).unwrap(),
        ];
        let slow = solve_heterogeneous(&inputs(&slow_only, &deferral, &thresholds, &batches, 8.0))
            .expect("feasible");
        let mix = solve_heterogeneous(&inputs(&mixed, &deferral, &thresholds, &batches, 8.0))
            .expect("feasible");
        assert!(
            mix.threshold >= slow.threshold,
            "mixed fleet should sustain at least the slow fleet's threshold: {} vs {}",
            mix.threshold,
            slow.threshold
        );
    }

    #[test]
    fn light_tier_prefers_slow_workers() {
        // Fast GPUs should end up on the heavy tier where their speed buys
        // the most deferral capacity.
        let classes = [
            WorkerClass::new("V100", 8, 0.5).unwrap(),
            WorkerClass::new("A100", 8, 1.0).unwrap(),
        ];
        let deferral = uniform();
        let thresholds = grid();
        let batches = [1usize, 2, 4, 8, 16];
        let a = solve_heterogeneous(&inputs(&classes, &deferral, &thresholds, &batches, 6.0))
            .expect("feasible");
        // All A100s should serve heavy; V100s cover the light stage.
        assert_eq!(
            a.heavy_per_class[1], 8,
            "A100s belong on the heavy tier: {a:?}"
        );
        assert!(a.light_per_class[0] >= 1);
    }

    #[test]
    fn infeasible_when_demand_exceeds_cluster() {
        let classes = [WorkerClass::new("T4", 2, 0.25).unwrap()];
        let deferral = uniform();
        let thresholds = grid();
        let batches = [1usize, 2, 4];
        assert!(
            solve_heterogeneous(&inputs(&classes, &deferral, &thresholds, &batches, 500.0))
                .is_none()
        );
    }

    #[test]
    fn class_speed_scales_latency() {
        let slow = WorkerClass::new("V100", 1, 0.5).unwrap();
        let profile = LatencyProfile::new(1.0, 0.0);
        assert!((slow.exec_latency_secs(&profile, 1) - 2.0).abs() < 1e-12);
        assert!((slow.throughput(&profile, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_classes() {
        assert!(WorkerClass::new("broken", 1, 0.0).is_err());
        assert!(WorkerClass::new("broken", 1, f64::NAN).is_err());
        assert!(WorkerClass::new("broken", 1, f64::INFINITY).is_err());
        assert!(WorkerClass::new("empty", 0, 1.0).is_err());
        assert!(WorkerClass::new("ok", 1, 0.5).is_ok());
    }
}
