//! Run reports: the measurements every experiment consumes.

use diffserve_linalg::Mat;
use diffserve_metrics::{frechet_distance, GaussianStats, SloTracker};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::IncidentLog;

use crate::addons::AddonStats;
use crate::policy::Policy;
use crate::query::{CompletedResponse, ModelTier};

/// Aggregate and time-series results of one serving run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The policy that produced this run.
    pub policy: Policy,
    /// Queries that entered the system.
    pub total_queries: u64,
    /// Queries completed (on time or late).
    pub completed: u64,
    /// Queries preemptively dropped.
    pub dropped: u64,
    /// Queries completed after their deadline.
    pub late: u64,
    /// Overall SLO violation ratio (late + dropped over total).
    pub violation_ratio: f64,
    /// Mean completion latency in seconds.
    pub mean_latency: f64,
    /// FID of all completed responses against the reference set.
    pub fid: f64,
    /// Windowed FID over time: `(window start seconds, fid)`. Windows with
    /// too few responses are omitted.
    pub fid_series: Vec<(f64, f64)>,
    /// Windowed SLO violation ratio over time.
    pub violation_series: Vec<(f64, f64)>,
    /// Windowed observed demand (QPS) over time.
    pub demand_series: Vec<(f64, f64)>,
    /// Confidence threshold chosen by the controller over time.
    pub threshold_series: Vec<(f64, f64)>,
    /// Deferral-estimation error over time: at each control tick, the mean
    /// absolute gap between the deferral profile `f(t)` the allocator
    /// solved against and the empirical profile of the confidences the
    /// window actually produced (a one-step-ahead prediction error). With
    /// the online estimator enabled this shrinks back after a difficulty
    /// shift; with the offline profile it stays elevated. Empty for
    /// policies that never run the cascade.
    pub deferral_error_series: Vec<(f64, f64)>,
    /// Mean of the windowed FID series (the paper's "Avg FID" bars).
    pub mean_windowed_fid: f64,
    /// Fraction of completed responses served by the heavy model.
    pub heavy_fraction: f64,
    /// Mean end-to-end latency (seconds) of heavy-tier completions only —
    /// the escalated-query latency that restart-vs-resume escalation
    /// changes. `0.0` when nothing escalated.
    pub mean_heavy_latency: f64,
    /// Escalated queries whose heavy pass resumed from light-tier latents
    /// (skipped at least one denoise step). Always `0` in restart mode.
    pub resumed_queries: u64,
    /// Mean heavy denoise steps skipped per resumed query; `0.0` when no
    /// query resumed.
    pub mean_reused_steps: f64,
    /// Mean single-query GPU-seconds consumed per completed query (see
    /// [`CompletedResponse::gpu_time`]) — the efficiency axis the
    /// `ext_pipeline` benchmark compares across escalation modes.
    pub gpu_time_per_query: f64,
    /// Every perturbation the run's fault engine actually fired — scheduled
    /// scenario events, mid-run injections, and hazard-drawn faults alike —
    /// stamped with its firing instant.
    /// [`Scenario::from_incident_log`](diffserve_trace::Scenario::from_incident_log)
    /// turns this back into a replayable scenario (bit-exact on the
    /// discrete-event simulator), closing the loop from "a weird run
    /// happened" to "it's now a regression test".
    pub incident_log: IncidentLog,
    /// Per-tier add-on module-cache accounting (hits, misses, swap
    /// seconds). All-zero when [`SystemConfig::addons`] is unset or no
    /// query carried an add-on.
    ///
    /// [`SystemConfig::addons`]: crate::config::SystemConfig::addons
    pub addon_stats: AddonStats,
    /// Per-ladder-tier completion statistics, cheapest tier first, derived
    /// from each response's [`CompletedResponse::tier_index`]. Two entries
    /// on legacy runs; empty when nothing completed.
    pub tier_breakdown: Vec<TierStats>,
}

/// Completion statistics of one ladder tier within a [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TierStats {
    /// 0-based ladder tier (0 = cheapest).
    pub tier: usize,
    /// Responses this tier produced.
    pub completions: u64,
    /// Mean end-to-end latency (seconds) of this tier's completions;
    /// `0.0` with none.
    pub mean_latency: f64,
    /// FID of this tier's completions against the reference set; `NaN`
    /// with fewer than two.
    pub fid: f64,
    /// Responses that completed *deeper* than this tier — queries that
    /// escalated past (or, under predictive routing, skipped) it.
    pub escalated_past: u64,
}

/// FID of a set of completed responses against the reference Gaussian;
/// `NaN` with fewer than two responses.
pub fn fid_of_responses(
    responses: &[CompletedResponse],
    reference: &GaussianStats,
    ridge: f64,
) -> f64 {
    if responses.len() < 2 {
        return f64::NAN;
    }
    let rows: Vec<&[f64]> = responses.iter().map(|r| r.features.as_slice()).collect();
    let m = Mat::from_rows(&rows);
    match GaussianStats::fit(&m, ridge) {
        Ok(g) => frechet_distance(&g, reference).unwrap_or(f64::NAN),
        Err(_) => f64::NAN,
    }
}

/// Windowed FID over completion time. Windows with fewer than
/// `min_samples` responses are omitted (their covariance would be noise).
pub fn windowed_fid(
    responses: &[CompletedResponse],
    reference: &GaussianStats,
    window: SimDuration,
    min_samples: usize,
) -> Vec<(f64, f64)> {
    if responses.is_empty() {
        return Vec::new();
    }
    let end = responses
        .iter()
        .map(|r| r.completion)
        .max()
        .expect("non-empty responses");
    let nwin = (end.as_micros() / window.as_micros() + 1) as usize;
    let mut buckets: Vec<Vec<&CompletedResponse>> = vec![Vec::new(); nwin];
    for r in responses {
        let w = (r.completion.as_micros() / window.as_micros()) as usize;
        buckets[w].push(r);
    }
    let mut series = Vec::new();
    for (w, bucket) in buckets.iter().enumerate() {
        if bucket.len() < min_samples.max(2) {
            continue;
        }
        let rows: Vec<&[f64]> = bucket.iter().map(|r| r.features.as_slice()).collect();
        let m = Mat::from_rows(&rows);
        if let Ok(g) = GaussianStats::fit(&m, 1e-3) {
            if let Ok(d) = frechet_distance(&g, reference) {
                series.push((w as f64 * window.as_secs_f64(), d));
            }
        }
    }
    series
}

impl RunReport {
    /// Assembles a report from raw run observations. Shared by the
    /// discrete-event simulator and the thread-based cluster runtime so the
    /// two are compared on identical accounting.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        policy: Policy,
        total_queries: u64,
        slo: &SloTracker,
        responses: &[CompletedResponse],
        reference: &GaussianStats,
        window: SimDuration,
        demand_series: Vec<(f64, f64)>,
        threshold_series: Vec<(f64, f64)>,
        deferral_error_series: Vec<(f64, f64)>,
        incident_log: IncidentLog,
        addon_stats: AddonStats,
    ) -> RunReport {
        let fid = fid_of_responses(responses, reference, 1e-6);
        let fid_series = windowed_fid(responses, reference, window, 24);
        let mean_windowed_fid = if fid_series.is_empty() {
            fid
        } else {
            fid_series.iter().map(|(_, f)| f).sum::<f64>() / fid_series.len() as f64
        };
        let heavy_count = responses
            .iter()
            .filter(|r| r.tier == ModelTier::Heavy)
            .count();
        let heavy_latency_sum: f64 = responses
            .iter()
            .filter(|r| r.tier == ModelTier::Heavy)
            .map(|r| r.latency_secs())
            .sum();
        let resumed: Vec<&CompletedResponse> =
            responses.iter().filter(|r| r.reused_steps > 0).collect();
        let gpu_time_sum: f64 = responses.iter().map(|r| r.gpu_time).sum();
        let violation_series = slo
            .windowed_violation_ratio(window)
            .into_iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect();
        let num_tiers = responses
            .iter()
            .map(|r| r.tier_index + 1)
            .max()
            .unwrap_or(0);
        let tier_breakdown = (0..num_tiers)
            .map(|t| {
                let members: Vec<CompletedResponse> = responses
                    .iter()
                    .filter(|r| r.tier_index == t)
                    .cloned()
                    .collect();
                TierStats {
                    tier: t,
                    completions: members.len() as u64,
                    mean_latency: if members.is_empty() {
                        0.0
                    } else {
                        members.iter().map(|r| r.latency_secs()).sum::<f64>() / members.len() as f64
                    },
                    fid: fid_of_responses(&members, reference, 1e-6),
                    escalated_past: responses.iter().filter(|r| r.tier_index > t).count() as u64,
                }
            })
            .collect();
        RunReport {
            policy,
            total_queries,
            completed: slo.on_time() + slo.late(),
            dropped: slo.dropped(),
            late: slo.late(),
            violation_ratio: slo.violation_ratio(),
            mean_latency: slo.mean_latency(),
            fid,
            fid_series,
            violation_series,
            demand_series,
            threshold_series,
            deferral_error_series,
            incident_log,
            addon_stats,
            mean_windowed_fid,
            heavy_fraction: if responses.is_empty() {
                0.0
            } else {
                heavy_count as f64 / responses.len() as f64
            },
            mean_heavy_latency: if heavy_count == 0 {
                0.0
            } else {
                heavy_latency_sum / heavy_count as f64
            },
            resumed_queries: resumed.len() as u64,
            mean_reused_steps: if resumed.is_empty() {
                0.0
            } else {
                resumed.iter().map(|r| r.reused_steps as f64).sum::<f64>() / resumed.len() as f64
            },
            gpu_time_per_query: if responses.is_empty() {
                0.0
            } else {
                gpu_time_sum / responses.len() as f64
            },
            tier_breakdown,
        }
    }

    /// Seconds after a perturbation at `event_time` until the windowed SLO
    /// violation ratio first returns to at most `target` — the scenario
    /// harness's recovery-time metric. Returns `None` if no window at or
    /// after `event_time` recovers (or the series is empty).
    ///
    /// Windows are keyed by their start time, so the result is quantized to
    /// the run's `metrics_window`.
    ///
    /// # Examples
    ///
    /// ```
    /// use diffserve_core::{Policy, RunReport};
    ///
    /// let mut report = RunReport::empty(Policy::DiffServe);
    /// report.violation_series = vec![(0.0, 0.0), (20.0, 0.5), (40.0, 0.3), (60.0, 0.05)];
    /// // Perturbation at t=20s; the system is back under 10% violations at t=60s.
    /// assert_eq!(report.recovery_time_after(20.0, 0.1), Some(40.0));
    /// assert_eq!(report.recovery_time_after(20.0, 0.01), None);
    /// ```
    pub fn recovery_time_after(&self, event_time: f64, target: f64) -> Option<f64> {
        self.violation_series
            .iter()
            .filter(|&&(t, _)| t >= event_time)
            .find(|&&(_, v)| v <= target)
            .map(|&(t, _)| t - event_time)
    }

    /// An all-zero report for `policy` — a starting point for tests and
    /// doctests that fill in specific fields.
    pub fn empty(policy: Policy) -> RunReport {
        RunReport {
            policy,
            total_queries: 0,
            completed: 0,
            dropped: 0,
            late: 0,
            violation_ratio: 0.0,
            mean_latency: 0.0,
            fid: f64::NAN,
            fid_series: Vec::new(),
            violation_series: Vec::new(),
            demand_series: Vec::new(),
            threshold_series: Vec::new(),
            deferral_error_series: Vec::new(),
            incident_log: Vec::new(),
            addon_stats: AddonStats::default(),
            mean_windowed_fid: f64::NAN,
            heavy_fraction: 0.0,
            mean_heavy_latency: 0.0,
            resumed_queries: 0,
            mean_reused_steps: 0.0,
            gpu_time_per_query: 0.0,
            tier_breakdown: Vec::new(),
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<18} queries={:<6} fid={:<6.2} slo_viol={:<6.3} mean_lat={:<5.2}s heavy={:<5.3} dropped={}",
            self.policy.name(),
            self.total_queries,
            self.fid,
            self.violation_ratio,
            self.mean_latency,
            self.heavy_fraction,
            self.dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_key_numbers() {
        let r = RunReport {
            policy: Policy::DiffServe,
            total_queries: 100,
            completed: 95,
            dropped: 5,
            late: 2,
            violation_ratio: 0.07,
            mean_latency: 1.5,
            fid: 17.25,
            fid_series: vec![],
            violation_series: vec![],
            demand_series: vec![],
            threshold_series: vec![],
            deferral_error_series: vec![],
            incident_log: vec![],
            addon_stats: AddonStats::default(),
            mean_windowed_fid: 17.0,
            heavy_fraction: 0.6,
            mean_heavy_latency: 2.1,
            resumed_queries: 0,
            mean_reused_steps: 0.0,
            gpu_time_per_query: 0.9,
            tier_breakdown: Vec::new(),
        };
        let s = r.summary();
        assert!(s.contains("DiffServe"));
        assert!(s.contains("17.25"));
        assert!(s.contains("0.070"));
    }
}
