//! The resource manager (paper §3.3).
//!
//! Given the demand estimate, queue-delay estimates, and the deferral
//! profile `f(t)`, the allocator picks the confidence threshold `t`, worker
//! counts `x₁/x₂`, and batch sizes `b₁/b₂` that maximize `t` subject to the
//! paper's constraints:
//!
//! * throughput: `x₁·T₁(b₁) ≥ D` (Eq. 2) and `x₂·T₂(b₂) ≥ D·f(t)` (Eq. 3)
//! * capacity: `x₁ + x₂ ≤ S` (Eq. 4)
//! * latency: `e(b₁) + q₁ + e(b₂) + q₂ ≤ SLO` (Eq. 1)
//!
//! Two interchangeable solvers are provided: the MILP formulation solved
//! with `diffserve-milp` (the paper uses Gurobi), and an exhaustive search
//! over the configuration grid (the paper notes ~9K configurations for its
//! setting). Property tests assert they find the same optimal threshold.

use diffserve_imagegen::{DeferralProfile, LatencyProfile};
use diffserve_milp::{solve_milp_warm, Direction, MilpOptions, Problem, Sense, VarKind, WarmStart};

/// Inputs to one allocation decision.
#[derive(Debug, Clone)]
pub struct AllocatorInputs<'a> {
    /// Over-provisioned demand estimate `λD` in QPS.
    pub demand_qps: f64,
    /// Estimated queuing delay ahead of the light stage, seconds.
    pub queue_delay_light: f64,
    /// Estimated queuing delay ahead of the heavy stage, seconds.
    pub queue_delay_heavy: f64,
    /// Latency SLO in seconds.
    pub slo: f64,
    /// Total workers `S`.
    pub total_workers: usize,
    /// Deferral profile `f(t)`.
    pub deferral: &'a DeferralProfile,
    /// Light-model execution profile.
    pub light: LatencyProfile,
    /// Heavy-model execution profile.
    pub heavy: LatencyProfile,
    /// Effective heavy execution profile for escalations that *resume*
    /// from light-tier latents (stage-level serving). When set, the
    /// cascade latency constraint (Eq. 1) charges this cheaper profile —
    /// every escalated query carries latents, so the discount is exact —
    /// while the throughput constraint (Eq. 3) deliberately stays on the
    /// nameplate [`heavy`](Self::heavy) profile: savings are not banked as
    /// capacity, so the deferral mix the threshold encodes is unchanged.
    /// `None` in restart mode.
    pub resume_heavy: Option<LatencyProfile>,
    /// Per-image discriminator latency in seconds (added to the light stage).
    pub discriminator_latency: f64,
    /// Candidate batch sizes.
    pub batch_sizes: &'a [usize],
    /// Candidate confidence thresholds (ascending).
    pub thresholds: &'a [f64],
}

/// One allocation decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Confidence threshold `t`.
    pub threshold: f64,
    /// Workers hosting the light model (with discriminator).
    pub light_workers: usize,
    /// Workers hosting the heavy model.
    pub heavy_workers: usize,
    /// Light-stage batch size.
    pub light_batch: usize,
    /// Heavy-stage batch size.
    pub heavy_batch: usize,
    /// `true` if every constraint was satisfiable; `false` if this is the
    /// best-effort overload fallback.
    pub feasible: bool,
}

impl Allocation {
    /// Fraction of queries this allocation defers to the heavy model.
    pub fn deferral_fraction(&self, deferral: &DeferralProfile) -> f64 {
        deferral.fraction_deferred(self.threshold)
    }
}

/// Effective light-stage execution latency: model + discriminator scoring
/// for the whole batch.
fn light_stage_latency(inputs: &AllocatorInputs<'_>, b: usize) -> f64 {
    inputs.light.exec_latency(b).as_secs_f64() + inputs.discriminator_latency * b as f64
}

/// Light-stage throughput including discriminator overhead.
fn light_stage_throughput(inputs: &AllocatorInputs<'_>, b: usize) -> f64 {
    b as f64 / light_stage_latency(inputs, b)
}

/// Heavy execution latency as charged by the cascade latency constraint:
/// the resume-discounted profile when stage-level serving is on, the
/// nameplate profile otherwise.
fn heavy_slo_latency(inputs: &AllocatorInputs<'_>, b: usize) -> f64 {
    inputs
        .resume_heavy
        .as_ref()
        .unwrap_or(&inputs.heavy)
        .exec_latency(b)
        .as_secs_f64()
}

/// Exhaustive solver: scans every `(b₁, b₂)` pair, gives all spare workers
/// to the heavy tier (the objective only rewards a higher threshold), and
/// reads the largest feasible threshold off the deferral profile.
///
/// Returns `None` when no configuration satisfies the constraints — the
/// caller then falls back to [`overload_fallback`].
pub fn solve_exhaustive(inputs: &AllocatorInputs<'_>) -> Option<Allocation> {
    let d = inputs.demand_qps.max(1e-9);
    let s = inputs.total_workers;
    let mut best: Option<Allocation> = None;

    for &b1 in inputs.batch_sizes {
        let t1 = light_stage_throughput(inputs, b1);
        let x1_min = (d / t1).ceil().max(1.0) as usize;
        if x1_min + 1 > s {
            continue; // Need at least one heavy worker too.
        }
        for &b2 in inputs.batch_sizes {
            // Latency constraint (Eq. 1): worst case traverses both stages.
            // An escalated query resumes from latents when stage-level
            // serving is on, so the heavy leg charges the effective profile.
            let latency = light_stage_latency(inputs, b1)
                + inputs.queue_delay_light
                + heavy_slo_latency(inputs, b2)
                + inputs.queue_delay_heavy;
            if latency > inputs.slo {
                continue;
            }
            let x2 = s - x1_min;
            let t2 = inputs.heavy.throughput(b2);
            let max_fraction = ((x2 as f64 * t2) / d).min(1.0);
            // Largest grid threshold with f(t) within heavy capacity.
            let mut t_star = None;
            for &t in inputs.thresholds.iter().rev() {
                if inputs.deferral.fraction_deferred(t) <= max_fraction + 1e-12 {
                    t_star = Some(t);
                    break;
                }
            }
            let Some(threshold) = t_star else { continue };
            let candidate = Allocation {
                threshold,
                light_workers: x1_min,
                heavy_workers: x2,
                light_batch: b1,
                heavy_batch: b2,
                feasible: true,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    threshold > b.threshold + 1e-12
                        // Tie-break: smaller batches → lower latency slack.
                        || ((threshold - b.threshold).abs() <= 1e-12
                            && (candidate.light_batch, candidate.heavy_batch)
                                < (b.light_batch, b.heavy_batch))
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best
}

/// Tick-to-tick solver state for [`solve_milp_allocation_warm`].
///
/// Carries two independent [`WarmStart`] handles — one for the full MILP
/// (with the `z_l` threshold selectors) and one for the threshold-pinned
/// residual problem — plus the previous tick's optimal threshold value
/// (the "pin"). The two problem shapes differ, so their bases are never
/// interchangeable; keeping both means every solve the state routes to
/// restarts from a same-shaped basis.
#[derive(Debug, Clone, Default)]
pub struct AllocWarmState {
    full: WarmStart,
    pinned: WarmStart,
    pin: Option<f64>,
}

impl AllocWarmState {
    /// An empty state; the first solve through it runs the full MILP cold.
    pub fn new() -> Self {
        AllocWarmState::default()
    }

    /// Drop all carried state; the next solve runs the full MILP cold.
    pub fn clear(&mut self) {
        self.full.clear();
        self.pinned.clear();
        self.pin = None;
    }

    /// `true` once a solve through this handle has found an optimum.
    pub fn is_primed(&self) -> bool {
        self.pin.is_some()
    }

    /// The previous tick's optimal threshold, if that solve was feasible.
    pub fn pinned_threshold(&self) -> Option<f64> {
        self.pin
    }
}

/// Variable handles for one allocation MILP. `z` is empty when the
/// threshold is pinned (the residual problem has no threshold choice).
struct MilpVars {
    y: Vec<diffserve_milp::VarId>,
    v: Vec<diffserve_milp::VarId>,
    z: Vec<diffserve_milp::VarId>,
    w1: Vec<diffserve_milp::VarId>,
    w2: Vec<diffserve_milp::VarId>,
}

/// Build the allocation MILP (paper Eq. 5).
///
/// With `pin = None` this is the full formulation: binary selectors `y_j`
/// (light batch), `v_k` (heavy batch), `z_l` (threshold level); integer
/// worker counts `w1_j`, `w2_k` active only under their selected batch
/// size. The products in Eqs. 2–3 linearize because throughput
/// coefficients are constants per batch size.
///
/// With `pin = Some(l)` the threshold is fixed at grid level `l`: the
/// `z` selectors and the one-threshold constraint disappear, and the
/// deferred-load term `D·f(t_l)` folds into the heavy-throughput rhs.
/// The objective keeps the same uniqueness penalties on `y/v/w1/w2` and
/// drops only the (now constant) `t_l` term, so the residual optimum is
/// exactly the full MILP's optimum conditioned on `z_l = 1`.
fn build_allocation_milp(inputs: &AllocatorInputs<'_>, pin: Option<usize>) -> (Problem, MilpVars) {
    let d = inputs.demand_qps.max(1e-9);
    let s = inputs.total_workers as f64;
    let nb = inputs.batch_sizes.len();
    let nt = if pin.is_some() {
        0
    } else {
        inputs.thresholds.len()
    };

    let mut p = Problem::new(Direction::Maximize);
    let y: Vec<_> = (0..nb).map(|j| p.add_binary(format!("y{j}"))).collect();
    let v: Vec<_> = (0..nb).map(|k| p.add_binary(format!("v{k}"))).collect();
    let z: Vec<_> = (0..nt).map(|l| p.add_binary(format!("z{l}"))).collect();
    let w1: Vec<_> = (0..nb)
        .map(|j| p.add_var(format!("w1_{j}"), VarKind::Integer, 0.0, s))
        .collect();
    let w2: Vec<_> = (0..nb)
        .map(|k| p.add_var(format!("w2_{k}"), VarKind::Integer, 0.0, s))
        .collect();

    // Exactly one batch size per tier, one threshold level.
    let ones = |vars: &[diffserve_milp::VarId]| -> Vec<(diffserve_milp::VarId, f64)> {
        vars.iter().map(|&id| (id, 1.0)).collect()
    };
    p.add_constraint("one-light-batch", &ones(&y), Sense::Eq, 1.0);
    p.add_constraint("one-heavy-batch", &ones(&v), Sense::Eq, 1.0);
    if pin.is_none() {
        p.add_constraint("one-threshold", &ones(&z), Sense::Eq, 1.0);
    }

    // Workers only under the selected batch size: w1_j ≤ S·y_j.
    for j in 0..nb {
        p.add_constraint(
            format!("light-active-{j}"),
            &[(w1[j], 1.0), (y[j], -s)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(
            format!("heavy-active-{j}"),
            &[(w2[j], 1.0), (v[j], -s)],
            Sense::Le,
            0.0,
        );
    }

    // Eq. 2: Σ_j T1(B_j)·w1_j ≥ D.
    let light_tp: Vec<(diffserve_milp::VarId, f64)> = (0..nb)
        .map(|j| (w1[j], light_stage_throughput(inputs, inputs.batch_sizes[j])))
        .collect();
    p.add_constraint("light-throughput", &light_tp, Sense::Ge, d);

    // Eq. 3: Σ_k T2(B_k)·w2_k − D·Σ_l f(t_l)·z_l ≥ 0, or with the
    // threshold pinned at level l, Σ_k T2(B_k)·w2_k ≥ D·f(t_l).
    let mut heavy_tp: Vec<(diffserve_milp::VarId, f64)> = (0..nb)
        .map(|k| (w2[k], inputs.heavy.throughput(inputs.batch_sizes[k])))
        .collect();
    let heavy_rhs = match pin {
        Some(l) => d * inputs.deferral.fraction_deferred(inputs.thresholds[l]),
        None => {
            for (&z_l, &t_l) in z.iter().zip(inputs.thresholds.iter()) {
                heavy_tp.push((z_l, -d * inputs.deferral.fraction_deferred(t_l)));
            }
            0.0
        }
    };
    p.add_constraint("heavy-throughput", &heavy_tp, Sense::Ge, heavy_rhs);

    // Eq. 4: Σ w1 + Σ w2 ≤ S.
    let mut cap = ones(&w1);
    cap.extend(ones(&w2));
    p.add_constraint("capacity", &cap, Sense::Le, s);
    // At least one worker per tier so routed queries always have a host.
    p.add_constraint("light-nonempty", &ones(&w1), Sense::Ge, 1.0);
    p.add_constraint("heavy-nonempty", &ones(&w2), Sense::Ge, 1.0);

    // Eq. 1: Σ_j e1(B_j)·y_j + Σ_k e2(B_k)·v_k ≤ SLO − q1 − q2. An infinite
    // SLO (the AIMD ablation, where reactive batching owns latency) waives
    // the constraint.
    let lat_budget = inputs.slo - inputs.queue_delay_light - inputs.queue_delay_heavy;
    if lat_budget.is_finite() {
        let mut lat: Vec<(diffserve_milp::VarId, f64)> = (0..nb)
            .map(|j| (y[j], light_stage_latency(inputs, inputs.batch_sizes[j])))
            .collect();
        for (&v_k, &b_k) in v.iter().zip(inputs.batch_sizes.iter()) {
            lat.push((v_k, heavy_slo_latency(inputs, b_k)));
        }
        p.add_constraint("latency", &lat, Sense::Le, lat_budget);
    }

    // Objective (Eq. 5): maximize the threshold. Tiny lexicographic
    // penalties make the optimum unique and identical to the exhaustive
    // solver's tie-breaking (smaller batches first, then minimal light
    // workers with the remainder on the heavy tier). The penalty scales are
    // far below the threshold grid spacing, so they can never trade away
    // objective value. The pinned residual keeps the identical penalties
    // (its threshold term is a constant, omitted).
    let mut obj: Vec<(diffserve_milp::VarId, f64)> =
        (0..nt).map(|l| (z[l], inputs.thresholds[l])).collect();
    for j in 0..nb {
        obj.push((y[j], -1e-4 * j as f64));
        obj.push((v[j], -1e-5 * j as f64));
    }
    for j in 0..nb {
        obj.push((w1[j], -1e-6));
        obj.push((w2[j], 1e-7));
    }
    p.set_objective(&obj);

    (p, MilpVars { y, v, z, w1, w2 })
}

/// Read an [`Allocation`] off a MILP solution. `pin` supplies the
/// threshold level when the problem had no `z` selectors.
fn extract_allocation(
    inputs: &AllocatorInputs<'_>,
    vars: &MilpVars,
    values: &[f64],
    pin: Option<usize>,
) -> Allocation {
    let nb = inputs.batch_sizes.len();
    let pick = |sel: &[diffserve_milp::VarId]| -> usize {
        sel.iter()
            .position(|&id| values[id.index()] > 0.5)
            .expect("exactly-one constraint guarantees a selection")
    };
    let j = pick(&vars.y);
    let k = pick(&vars.v);
    let l = match pin {
        Some(l) => l,
        None => pick(&vars.z),
    };
    let light_workers: usize = (0..nb).map(|i| values[vars.w1[i].index()] as usize).sum();
    let heavy_workers: usize = (0..nb).map(|i| values[vars.w2[i].index()] as usize).sum();
    Allocation {
        threshold: inputs.thresholds[l],
        light_workers,
        heavy_workers,
        light_batch: inputs.batch_sizes[j],
        heavy_batch: inputs.batch_sizes[k],
        feasible: true,
    }
}

/// MILP solver for the allocation problem (paper Eq. 5), built on
/// `diffserve-milp`. Solves cold (`build_allocation_milp` documents the
/// formulation); see [`solve_milp_allocation_warm`] for the tick-to-tick
/// fast path.
///
/// Returns `None` if the MILP is infeasible.
pub fn solve_milp_allocation(inputs: &AllocatorInputs<'_>) -> Option<Allocation> {
    solve_milp_allocation_warm(inputs, &mut AllocWarmState::new())
}

/// Solve one full-MILP tick through `state.full`, recording the pin.
fn solve_full(inputs: &AllocatorInputs<'_>, state: &mut AllocWarmState) -> Option<Allocation> {
    let (p, vars) = build_allocation_milp(inputs, None);
    let alloc = solve_milp_warm(&p, &MilpOptions::default(), &mut state.full)
        .ok()
        .map(|sol| extract_allocation(inputs, &vars, &sol.values, None));
    state.pin = alloc.as_ref().map(|a| a.threshold);
    alloc
}

/// Solve the residual MILP with the threshold pinned at grid level `l`.
/// `None` means that level is infeasible.
fn solve_pinned_level(
    inputs: &AllocatorInputs<'_>,
    l: usize,
    warm: &mut WarmStart,
) -> Option<Allocation> {
    let (p, vars) = build_allocation_milp(inputs, Some(l));
    solve_milp_warm(&p, &MilpOptions::default(), warm)
        .ok()
        .map(|sol| extract_allocation(inputs, &vars, &sol.values, Some(l)))
}

/// Find the largest feasible threshold level by galloping out from the
/// previous tick's level `l0`, then binary-searching the bracket.
///
/// Correct because residual feasibility is monotone in the level: the
/// only `l`-dependent constraint is Eq. 3's deferred load `D·f(t_l)`,
/// and `f` is nondecreasing over the ascending threshold grid, so every
/// level below a feasible one is feasible and every level above an
/// infeasible one is infeasible. The full MILP's penalties are far below
/// the grid spacing, so its optimum also sits at the largest feasible
/// level — the two paths agree exactly.
fn pinned_search(
    inputs: &AllocatorInputs<'_>,
    l0: usize,
    warm: &mut WarmStart,
) -> Option<Allocation> {
    let nt = inputs.thresholds.len();
    // Establish a bracket: `lo` feasible (with its allocation), `hi`
    // infeasible. A steady-state tick resolves in two residual solves
    // (l0 feasible, l0+1 not).
    let (mut lo, mut lo_alloc, mut hi) = match solve_pinned_level(inputs, l0, warm) {
        Some(a) => {
            if l0 + 1 >= nt {
                return Some(a);
            }
            // Gallop upward for an infeasible ceiling.
            let (mut lo, mut lo_alloc) = (l0, a);
            let mut step = 1usize;
            loop {
                let cand = (lo + step).min(nt - 1);
                match solve_pinned_level(inputs, cand, warm) {
                    Some(a) => {
                        if cand == nt - 1 {
                            return Some(a);
                        }
                        lo = cand;
                        lo_alloc = a;
                        step *= 2;
                    }
                    None => break (lo, lo_alloc, cand),
                }
            }
        }
        None => {
            // Gallop downward for a feasible floor; level 0 infeasible
            // means the full MILP is infeasible too.
            let mut hi = l0;
            let mut step = 1usize;
            loop {
                if hi == 0 {
                    return None;
                }
                let cand = hi.saturating_sub(step);
                match solve_pinned_level(inputs, cand, warm) {
                    Some(a) => break (cand, a, hi),
                    None => {
                        hi = cand;
                        step *= 2;
                    }
                }
            }
        }
    };
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        match solve_pinned_level(inputs, mid, warm) {
            Some(a) => {
                lo = mid;
                lo_alloc = a;
            }
            None => hi = mid,
        }
    }
    Some(lo_alloc)
}

/// [`solve_milp_allocation`] with tick-to-tick solver state carried in an
/// [`AllocWarmState`].
///
/// Successive control ticks solve the same formulation under a slowly
/// drifting demand estimate, so the previous tick's optimum usually seeds
/// (and very often immediately proves) the next solve. Two mechanisms
/// stack:
///
/// 1. **Basis reuse** — each [`WarmStart`] handle carries the previous
///    optimum's simplex basis, so re-solves run a short dual-simplex
///    reoptimization instead of two-phase from scratch.
/// 2. **Threshold pinning** — when the previous tick's threshold is still
///    on the grid, the search runs over small *residual* MILPs with the
///    threshold fixed (`build_allocation_milp` with `pin`), locating
///    the largest feasible level by a gallop + binary search from the
///    previous level instead of re-solving the full formulation with all
///    `z_l` selectors.
///
/// The objective's lexicographic uniqueness penalties dwarf the solver's
/// optimality gap, so the warm-started solution is the *same* allocation
/// a cold solve would return — warm starting changes solve time, never
/// the plan.
///
/// Returns `None` if the MILP is infeasible.
pub fn solve_milp_allocation_warm(
    inputs: &AllocatorInputs<'_>,
    state: &mut AllocWarmState,
) -> Option<Allocation> {
    if let Some(pin_t) = state.pin {
        // The pin is only trusted when it still names a grid value
        // exactly; any drift in the grid falls back to the full MILP.
        if let Some(l0) = inputs.thresholds.iter().position(|&t| t == pin_t) {
            let alloc = pinned_search(inputs, l0, &mut state.pinned);
            state.pin = alloc.as_ref().map(|a| a.threshold);
            return alloc;
        }
    }
    solve_full(inputs, state)
}

/// Best-effort allocation under overload: threshold 0 (everything stays on
/// the light model), throughput-maximizing batch size, one heavy worker kept
/// so stragglers still have a host. The drop policy sheds what this cannot
/// serve.
pub fn overload_fallback(inputs: &AllocatorInputs<'_>) -> Allocation {
    let best_b = |profile: &LatencyProfile| {
        inputs
            .batch_sizes
            .iter()
            .copied()
            .max_by(|&a, &b| {
                profile
                    .throughput(a)
                    .partial_cmp(&profile.throughput(b))
                    .expect("finite throughputs")
            })
            .expect("non-empty batch sizes")
    };
    let light_batch = best_b(&inputs.light);
    let heavy_batch = best_b(&inputs.heavy);
    let heavy_workers = 1.min(inputs.total_workers.saturating_sub(1));
    Allocation {
        threshold: 0.0,
        light_workers: inputs.total_workers - heavy_workers,
        heavy_workers,
        light_batch,
        heavy_batch,
        feasible: false,
    }
}

/// Proteus allocation (query-agnostic model scaling): maximize the fraction
/// `p` of queries routed to the heavy model, subject to per-branch
/// throughput and latency constraints. Queries route *directly* to one
/// model — there is no cascade, so each branch only pays its own latency,
/// and a direct-to-heavy query carries no light-tier latents: the
/// [`resume_heavy`](AllocatorInputs::resume_heavy) discount never applies.
pub fn solve_proteus(inputs: &AllocatorInputs<'_>) -> Option<(Allocation, f64)> {
    let d = inputs.demand_qps.max(1e-9);
    let s = inputs.total_workers;
    let mut best: Option<(Allocation, f64)> = None;

    for &b1 in inputs.batch_sizes {
        let lat1 = inputs.light.exec_latency(b1).as_secs_f64() + inputs.queue_delay_light;
        if lat1 > inputs.slo {
            continue;
        }
        for &b2 in inputs.batch_sizes {
            let lat2 = inputs.heavy.exec_latency(b2).as_secs_f64() + inputs.queue_delay_heavy;
            if lat2 > inputs.slo {
                continue;
            }
            let t1 = inputs.light.throughput(b1);
            let t2 = inputs.heavy.throughput(b2);
            // Scan heavy fractions on a fine grid.
            for pi in (0..=100).rev() {
                let frac = pi as f64 / 100.0;
                let x2 = ((d * frac) / t2).ceil() as usize;
                let x1 = ((d * (1.0 - frac)) / t1).ceil().max(1.0) as usize;
                if x1 + x2 <= s && x2 >= 1 {
                    let candidate = (
                        Allocation {
                            threshold: frac, // reused as the heavy fraction
                            light_workers: x1.max(1),
                            heavy_workers: x2.max(1),
                            light_batch: b1,
                            heavy_batch: b2,
                            feasible: true,
                        },
                        frac,
                    );
                    let better = best.as_ref().is_none_or(|(_, bf)| frac > *bf);
                    if better {
                        best = Some(candidate);
                    }
                    break; // fractions below `frac` are worse for this (b1, b2)
                }
            }
        }
    }
    best
}

/// Inputs to one N-tier ladder allocation decision.
///
/// Generalizes [`AllocatorInputs`] to a quality ladder: `tiers[k]` is tier
/// `k`'s execution profile (cheapest first), `deferrals[k]` and
/// `discriminator_latency[k]` belong to the escalation boundary between
/// tiers `k` and `k+1` (both have length N-1). Every boundary shares the
/// same candidate `thresholds` grid.
#[derive(Debug, Clone)]
pub struct LadderInputs<'a> {
    /// Over-provisioned demand estimate `λD` in QPS at the entry tier.
    pub demand_qps: f64,
    /// Estimated queuing delay ahead of each tier, seconds (length N).
    pub queue_delays: Vec<f64>,
    /// Latency SLO in seconds.
    pub slo: f64,
    /// Total workers `S`.
    pub total_workers: usize,
    /// Per-boundary deferral profiles `f_k(t)` (length N-1).
    pub deferrals: Vec<&'a DeferralProfile>,
    /// Per-tier execution profiles, cheapest first (length N).
    pub tiers: Vec<LatencyProfile>,
    /// Per-image discriminator latency at each non-terminal tier
    /// (length N-1; the terminal tier runs no discriminator).
    pub discriminator_latency: Vec<f64>,
    /// Candidate batch sizes (shared by every tier).
    pub batch_sizes: &'a [usize],
    /// Candidate confidence thresholds (ascending; shared by every
    /// boundary).
    pub thresholds: &'a [f64],
    /// Cap on how many grid levels any boundary threshold may *rise* in
    /// one solve relative to the warm-start levels (`None` = unlimited,
    /// and cold solves are never capped). Falling is never limited — load
    /// shedding must take effect immediately — but climbing back toward
    /// higher quality is rate-limited so demand-estimate noise cannot flap
    /// workers between adjacent tiers tick after tick, burning fleet
    /// capacity on model-switch delays.
    pub max_raise_per_solve: Option<usize>,
    /// Fraction of total demand admitted *directly* at each tier (length
    /// N, summing to ≤ 1), as observed by the backend under predictive
    /// straight-to-tier routing. Empty means "everything enters at tier
    /// 0" (always-cheapest-first). The per-tier demand model folds these
    /// in so bypassed traffic is capacity-planned at the tier it actually
    /// lands on, not at the tiers it skipped.
    pub direct_fractions: Vec<f64>,
}

impl LadderInputs<'_> {
    /// Number of model tiers (N).
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Number of escalation boundaries (N-1).
    pub fn boundaries(&self) -> usize {
        self.tiers.len() - 1
    }

    /// Effective execution latency of tier `k` at batch `b`: model
    /// execution plus per-image discriminator scoring on non-terminal
    /// tiers.
    fn tier_stage_latency(&self, k: usize, b: usize) -> f64 {
        let base = self.tiers[k].exec_latency(b).as_secs_f64();
        match self.discriminator_latency.get(k) {
            Some(d) => base + d * b as f64,
            None => base,
        }
    }

    /// Tier-`k` serving throughput at batch `b`, discriminator included.
    fn tier_stage_throughput(&self, k: usize, b: usize) -> f64 {
        b as f64 / self.tier_stage_latency(k, b)
    }

    /// Per-tier demand under a threshold-level vector. Without direct
    /// routing, tier 0 sees the full demand and each deeper tier the
    /// fraction its boundary defers. With predictive straight-to-tier
    /// routing, tier `k`'s demand is the flow escalated out of tier `k-1`
    /// plus the share of total demand admitted directly at `k`.
    fn tier_demands(&self, levels: &[usize]) -> Vec<f64> {
        let total = self.demand_qps.max(1e-9);
        let direct = |k: usize| -> f64 {
            if self.direct_fractions.is_empty() {
                if k == 0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                self.direct_fractions.get(k).copied().unwrap_or(0.0)
            }
        };
        let mut demands = Vec::with_capacity(self.num_tiers());
        let mut d = total * direct(0);
        demands.push(d);
        for (k, &l) in levels.iter().enumerate() {
            d = d * self.deferrals[k].fraction_deferred(self.thresholds[l]) + total * direct(k + 1);
            demands.push(d);
        }
        demands
    }
}

/// One N-tier ladder allocation decision.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderAllocation {
    /// Per-boundary confidence thresholds (length N-1).
    pub thresholds: Vec<f64>,
    /// Per-tier worker counts (length N; spares sit on the deepest tier).
    pub workers: Vec<usize>,
    /// Per-tier batch sizes (length N).
    pub batches: Vec<usize>,
    /// `true` if every constraint was satisfiable; `false` if this is the
    /// best-effort overload fallback.
    pub feasible: bool,
}

/// Tick-to-tick state for [`solve_ladder`]: the previous tick's optimal
/// threshold levels (seeding the per-boundary gallop) and one shared
/// [`WarmStart`] basis — every fixed-level residual MILP has the same
/// shape (only the demand right-hand sides move), so a single handle
/// warm-starts them all.
#[derive(Debug, Clone, Default)]
pub struct LadderWarmState {
    levels: Option<Vec<usize>>,
    /// Worker split actuated by the previous solve; the next solve keeps
    /// it whenever it still covers every tier's minimal need, so demand
    /// noise does not flap workers (each move burns a model-switch delay).
    workers: Option<Vec<usize>>,
    milp: WarmStart,
}

impl LadderWarmState {
    /// An empty state; the first solve runs cold.
    pub fn new() -> Self {
        LadderWarmState::default()
    }

    /// Drop all carried state; the next solve runs cold.
    pub fn clear(&mut self) {
        self.levels = None;
        self.workers = None;
        self.milp.clear();
    }
}

/// Minimal worker/batch plan serving fixed per-tier demands, by exhaustive
/// scan over batch tuples. Minimizes total workers, tie-breaking on the
/// lexicographically smallest batch tuple. `None` when infeasible.
fn ladder_fixed_exhaustive(
    inputs: &LadderInputs<'_>,
    demands: &[f64],
) -> Option<(Vec<usize>, Vec<usize>)> {
    let n = inputs.num_tiers();
    let nb = inputs.batch_sizes.len();
    let queue_total: f64 = inputs.queue_delays.iter().sum();
    let mut best: Option<(usize, Vec<usize>, Vec<usize>)> = None;
    // Odometer over batch tuples, lexicographic so the first tuple found
    // at the minimal worker count is also the lexicographically smallest.
    let mut idx = vec![0usize; n];
    'tuples: loop {
        let batches: Vec<usize> = idx.iter().map(|&j| inputs.batch_sizes[j]).collect();
        let latency: f64 = (0..n)
            .map(|k| inputs.tier_stage_latency(k, batches[k]))
            .sum::<f64>()
            + queue_total;
        if latency <= inputs.slo {
            let workers: Vec<usize> = (0..n)
                .map(|k| {
                    (demands[k] / inputs.tier_stage_throughput(k, batches[k]))
                        .ceil()
                        .max(1.0) as usize
                })
                .collect();
            let total: usize = workers.iter().sum();
            if total <= inputs.total_workers && best.as_ref().is_none_or(|(t, _, _)| total < *t) {
                best = Some((total, workers, batches));
            }
        }
        // Advance the odometer.
        for k in (0..n).rev() {
            idx[k] += 1;
            if idx[k] < nb {
                continue 'tuples;
            }
            idx[k] = 0;
        }
        break;
    }
    best.map(|(_, workers, batches)| (workers, batches))
}

/// Minimal worker/batch plan serving fixed per-tier demands, as a MILP
/// warm-started from `warm`. The formulation is the per-tier product of
/// the legacy pinned residual: batch selectors `y_{k,j}`, workers
/// `w_{k,j}` active only under the selected batch, per-tier throughput and
/// non-emptiness, the shared capacity and cascade-latency rows. The
/// lexicographic batch penalties (`1e-4·10^{-k}·j`) replicate the
/// exhaustive solver's tie-breaking, so both inner solvers return the
/// identical plan.
fn ladder_fixed_milp(
    inputs: &LadderInputs<'_>,
    demands: &[f64],
    warm: &mut WarmStart,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let n = inputs.num_tiers();
    let nb = inputs.batch_sizes.len();
    let s = inputs.total_workers as f64;
    let mut p = Problem::new(Direction::Minimize);
    let y: Vec<Vec<_>> = (0..n)
        .map(|k| (0..nb).map(|j| p.add_binary(format!("y{k}_{j}"))).collect())
        .collect();
    let w: Vec<Vec<_>> = (0..n)
        .map(|k| {
            (0..nb)
                .map(|j| p.add_var(format!("w{k}_{j}"), VarKind::Integer, 0.0, s))
                .collect()
        })
        .collect();

    let mut cap: Vec<(diffserve_milp::VarId, f64)> = Vec::new();
    let mut lat: Vec<(diffserve_milp::VarId, f64)> = Vec::new();
    for k in 0..n {
        let one: Vec<_> = y[k].iter().map(|&id| (id, 1.0)).collect();
        p.add_constraint(format!("one-batch-{k}"), &one, Sense::Eq, 1.0);
        let nonempty: Vec<_> = w[k].iter().map(|&id| (id, 1.0)).collect();
        p.add_constraint(format!("nonempty-{k}"), &nonempty, Sense::Ge, 1.0);
        let tp: Vec<_> = (0..nb)
            .map(|j| {
                (
                    w[k][j],
                    inputs.tier_stage_throughput(k, inputs.batch_sizes[j]),
                )
            })
            .collect();
        p.add_constraint(format!("throughput-{k}"), &tp, Sense::Ge, demands[k]);
        for j in 0..nb {
            p.add_constraint(
                format!("active-{k}-{j}"),
                &[(w[k][j], 1.0), (y[k][j], -s)],
                Sense::Le,
                0.0,
            );
            cap.push((w[k][j], 1.0));
            lat.push((y[k][j], inputs.tier_stage_latency(k, inputs.batch_sizes[j])));
        }
    }
    p.add_constraint("capacity", &cap, Sense::Le, s);
    let lat_budget = inputs.slo - inputs.queue_delays.iter().sum::<f64>();
    if lat_budget.is_finite() {
        p.add_constraint("latency", &lat, Sense::Le, lat_budget);
    }

    // Minimize total workers; geometric batch penalties keep the optimum
    // unique and equal to the exhaustive tie-break (smaller batches on
    // earlier tiers win ties). The penalties sum to < 1, so they can
    // never trade away a worker.
    let mut obj: Vec<(diffserve_milp::VarId, f64)> = Vec::new();
    for k in 0..n {
        let scale = 1e-4 * 10f64.powi(-(k as i32));
        for j in 0..nb {
            obj.push((w[k][j], 1.0));
            obj.push((y[k][j], scale * j as f64));
        }
    }
    p.set_objective(&obj);

    let sol = solve_milp_warm(&p, &MilpOptions::default(), warm).ok()?;
    let mut workers = Vec::with_capacity(n);
    let mut batches = Vec::with_capacity(n);
    for k in 0..n {
        let j = (0..nb)
            .find(|&j| sol.values[y[k][j].index()] > 0.5)
            .expect("exactly-one constraint guarantees a selection");
        batches.push(inputs.batch_sizes[j]);
        workers.push((0..nb).map(|j| sol.values[w[k][j].index()] as usize).sum());
    }
    Some((workers, batches))
}

/// One fixed-level solve through the configured inner solver.
fn ladder_fixed(
    inputs: &LadderInputs<'_>,
    levels: &[usize],
    milp: bool,
    warm: &mut WarmStart,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let demands = inputs.tier_demands(levels);
    if milp {
        ladder_fixed_milp(inputs, &demands, warm)
    } else {
        ladder_fixed_exhaustive(inputs, &demands)
    }
}

/// Solve the N-tier ladder allocation: the threshold *vector* (one level
/// per boundary), per-tier worker counts, and per-tier batch sizes.
///
/// The outer search is coordinate maximization over the boundary
/// thresholds, warm-started from the previous tick's levels: for each
/// boundary in turn it finds the largest feasible grid level by a gallop +
/// binary search (PR 9's pinning, applied per boundary), holding the other
/// boundaries fixed. Feasibility is monotone decreasing in every level —
/// raising `t_k` only raises the demand on tiers deeper than `k` — so the
/// per-coordinate search is exact; two passes settle cross-boundary
/// interactions. Each feasibility probe is a fixed-level residual problem
/// solved by the configured inner solver (`milp` reuses one simplex basis
/// across every probe, tick after tick).
///
/// Spare workers land on the deepest tier. Returns `None` when even the
/// all-lowest-levels ladder is infeasible; callers then fall back to
/// [`ladder_overload_fallback`].
pub fn solve_ladder(
    inputs: &LadderInputs<'_>,
    milp: bool,
    state: &mut LadderWarmState,
) -> Option<LadderAllocation> {
    let nb = inputs.boundaries();
    let nt = inputs.thresholds.len();
    let warm_levels = match state.levels.take() {
        Some(l) if l.len() == nb && l.iter().all(|&x| x < nt) => Some(l),
        _ => None,
    };
    let mut levels = warm_levels.clone().unwrap_or_else(|| vec![0; nb]);
    // Re-anchor on a feasible point: the warm levels may have drifted
    // infeasible, and all-lowest-levels is the least-demand ladder — if
    // even that fails, no level vector is feasible (monotonicity).
    if ladder_fixed(inputs, &levels, milp, &mut state.milp).is_none() {
        levels = vec![0; nb];
        ladder_fixed(inputs, &levels, milp, &mut state.milp)?;
    }

    for _pass in 0..2 {
        for k in 0..nb {
            // Gallop upward from the current (feasible) level for an
            // infeasible ceiling, then binary-search the bracket.
            let (mut lo, mut hi) = (levels[k], nt);
            let mut step = 1usize;
            while lo + step < nt {
                let cand = lo + step;
                levels[k] = cand;
                if ladder_fixed(inputs, &levels, milp, &mut state.milp).is_some() {
                    lo = cand;
                    step *= 2;
                } else {
                    hi = cand;
                    break;
                }
            }
            if hi == nt && lo + 1 < nt {
                levels[k] = nt - 1;
                if ladder_fixed(inputs, &levels, milp, &mut state.milp).is_some() {
                    lo = nt - 1;
                } else {
                    hi = nt - 1;
                }
            }
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                levels[k] = mid;
                if ladder_fixed(inputs, &levels, milp, &mut state.milp).is_some() {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            levels[k] = lo;
        }
    }

    // Rate-limit raises against the previous tick's actuated levels:
    // clamping *down* from the coordinate-maximized point only lowers
    // deep-tier demand, so the clamped vector stays feasible
    // (monotonicity) and the final solve below cannot fail.
    if let (Some(cap), Some(prev)) = (inputs.max_raise_per_solve, &warm_levels) {
        for (l, &p) in levels.iter_mut().zip(prev) {
            *l = (*l).min(p + cap);
        }
    }

    let (mut workers, batches) = ladder_fixed(inputs, &levels, milp, &mut state.milp)
        .expect("final levels were verified feasible coordinate-wise");
    // Worker-split hysteresis: if the previously actuated split still
    // covers every tier's minimal need, keep it — extra workers on a tier
    // only add slack, while re-splitting on every demand-estimate wiggle
    // burns a model-switch delay per moved worker.
    let keep_prev = state.workers.take().filter(|prev| {
        prev.len() == workers.len()
            && prev.iter().sum::<usize>() == inputs.total_workers
            && prev.iter().zip(&workers).all(|(&p, &need)| p >= need)
    });
    if let Some(prev) = keep_prev {
        workers = prev;
    } else {
        let spare = inputs.total_workers - workers.iter().sum::<usize>();
        *workers.last_mut().expect("at least two tiers") += spare;
    }
    let thresholds = levels.iter().map(|&l| inputs.thresholds[l]).collect();
    state.levels = Some(levels);
    state.workers = Some(workers.clone());
    Some(LadderAllocation {
        thresholds,
        workers,
        batches,
        feasible: true,
    })
}

/// Best-effort ladder allocation under overload: every boundary threshold
/// drops to 0 (nothing escalates), batches maximize per-tier throughput,
/// one worker stays on each deeper tier so stragglers keep a host, and the
/// rest of the fleet serves the entry tier.
///
/// When the predictive router is bypassing traffic
/// ([`LadderInputs::direct_fractions`] has mass beyond tier 0) the
/// all-entry-tier shape would starve exactly the tiers still receiving
/// direct arrivals, so the fleet is instead apportioned to tiers in
/// proportion to direct load over per-tier service rate (with thresholds
/// floored, a tier's load is exactly its direct-admission share).
pub fn ladder_overload_fallback(inputs: &LadderInputs<'_>) -> LadderAllocation {
    let n = inputs.num_tiers();
    let batches: Vec<usize> = (0..n)
        .map(|k| {
            inputs
                .batch_sizes
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    inputs.tiers[k]
                        .throughput(a)
                        .partial_cmp(&inputs.tiers[k].throughput(b))
                        .expect("finite throughputs")
                })
                .expect("non-empty batch sizes")
        })
        .collect();
    let has_bypass = inputs.direct_fractions.iter().skip(1).any(|&f| f > 0.0);
    let mut workers = vec![0usize; n];
    if has_bypass {
        let load: Vec<f64> = (0..n)
            .map(|k| {
                let d = inputs.direct_fractions.get(k).copied().unwrap_or(0.0);
                d / inputs.tiers[k].throughput(batches[k]).max(1e-9)
            })
            .collect();
        let total_load: f64 = load.iter().sum();
        let w = inputs.total_workers;
        let quotas: Vec<f64> = load.iter().map(|l| w as f64 * l / total_load).collect();
        for (wk, q) in workers.iter_mut().zip(&quotas) {
            *wk = q.floor() as usize;
        }
        let remaining = w - workers.iter().sum::<usize>();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            (quotas[b] - workers[b] as f64)
                .partial_cmp(&(quotas[a] - workers[a] as f64))
                .expect("finite quotas")
        });
        for &k in order.iter().cycle().take(remaining) {
            workers[k] += 1;
        }
    } else {
        let deep = (n - 1).min(inputs.total_workers.saturating_sub(1));
        for k in (n - deep..n).rev() {
            workers[k] = 1;
        }
        workers[0] = inputs.total_workers - deep;
    }
    LadderAllocation {
        thresholds: vec![0.0; inputs.boundaries()],
        workers,
        batches,
        feasible: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffserve_imagegen::DeferralProfile;

    fn uniform_profile() -> DeferralProfile {
        // Calibrated confidences are uniform by construction.
        DeferralProfile::from_confidences((0..1000).map(|i| i as f64 / 1000.0).collect()).unwrap()
    }

    fn cascade1_inputs<'a>(
        deferral: &'a DeferralProfile,
        batches: &'a [usize],
        thresholds: &'a [f64],
        demand: f64,
    ) -> AllocatorInputs<'a> {
        AllocatorInputs {
            demand_qps: demand,
            queue_delay_light: 0.2,
            queue_delay_heavy: 0.5,
            slo: 5.0,
            total_workers: 16,
            deferral,
            light: LatencyProfile::new(0.10, 0.55),
            heavy: LatencyProfile::new(1.78, 0.12),
            resume_heavy: None,
            discriminator_latency: 0.01,
            batch_sizes: batches,
            thresholds,
        }
    }

    fn grid(n: usize, cap: f64) -> Vec<f64> {
        (0..n).map(|i| cap * i as f64 / (n - 1) as f64).collect()
    }

    #[test]
    fn exhaustive_finds_feasible_allocation() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(51, 0.9);
        let inputs = cascade1_inputs(&deferral, &batches, &thresholds, 10.0);
        let a = solve_exhaustive(&inputs).expect("feasible at 10 qps");
        assert!(a.feasible);
        assert!(a.light_workers >= 1 && a.heavy_workers >= 1);
        assert!(a.light_workers + a.heavy_workers <= 16);
        assert!(a.threshold > 0.0);
        // Heavy capacity must cover the deferred fraction.
        let f = deferral.fraction_deferred(a.threshold);
        let heavy_capacity = a.heavy_workers as f64 * inputs.heavy.throughput(a.heavy_batch);
        assert!(heavy_capacity >= 10.0 * f - 1e-9);
    }

    #[test]
    fn milp_matches_exhaustive_threshold() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(26, 0.9);
        for demand in [2.0, 6.0, 12.0, 20.0, 30.0] {
            let inputs = cascade1_inputs(&deferral, &batches, &thresholds, demand);
            let ex = solve_exhaustive(&inputs);
            let milp = solve_milp_allocation(&inputs);
            match (ex, milp) {
                (Some(e), Some(m)) => {
                    assert!(
                        (e.threshold - m.threshold).abs() < 1e-9,
                        "demand {demand}: exhaustive t={} vs milp t={}",
                        e.threshold,
                        m.threshold
                    );
                }
                (None, None) => {}
                (e, m) => panic!("solver disagreement at demand {demand}: {e:?} vs {m:?}"),
            }
        }
    }

    #[test]
    fn warm_started_allocations_match_cold_solves_exactly() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(26, 0.9);
        let mut warm = AllocWarmState::new();
        // A drifting demand path like a control loop produces, including an
        // infeasible overload spike mid-sequence: carrying the handle across
        // every tick must never change the plan a cold solve would pick.
        for demand in [6.0, 6.3, 6.1, 7.0, 12.0, 500.0, 11.5, 6.0, 6.0] {
            let inputs = cascade1_inputs(&deferral, &batches, &thresholds, demand);
            let cold = solve_milp_allocation(&inputs);
            let warmed = solve_milp_allocation_warm(&inputs, &mut warm);
            assert_eq!(warmed, cold, "demand {demand}");
            assert_eq!(
                warm.pinned_threshold(),
                cold.map(|a| a.threshold),
                "pin must track the optimal threshold at demand {demand}"
            );
        }
        assert!(warm.is_primed());
    }

    #[test]
    fn pinned_search_engages_and_matches_cold_across_large_swings() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(51, 0.9);
        let mut warm = AllocWarmState::new();
        // Big jumps force the gallop to cross many grid levels in both
        // directions; every tick after the first runs the pinned path.
        for demand in [4.0, 30.0, 4.0, 18.0, 2.0, 25.0, 25.0] {
            let inputs = cascade1_inputs(&deferral, &batches, &thresholds, demand);
            let cold = solve_milp_allocation(&inputs);
            let warmed = solve_milp_allocation_warm(&inputs, &mut warm);
            assert_eq!(warmed, cold, "demand {demand}");
        }
    }

    #[test]
    fn changing_the_grid_invalidates_the_pin_but_not_the_answer() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let coarse = grid(11, 0.9);
        let fine = grid(51, 0.9);
        let mut warm = AllocWarmState::new();
        let a = solve_milp_allocation_warm(
            &cascade1_inputs(&deferral, &batches, &coarse, 8.0),
            &mut warm,
        )
        .expect("feasible");
        assert_eq!(warm.pinned_threshold(), Some(a.threshold));
        // Whether or not the coarse optimum happens to sit bit-for-bit on
        // the fine grid, the warm answer must equal cold on the new grid.
        let inputs = cascade1_inputs(&deferral, &batches, &fine, 8.0);
        let cold = solve_milp_allocation(&inputs);
        let warmed = solve_milp_allocation_warm(&inputs, &mut warm);
        assert_eq!(warmed, cold);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(24))]

        /// Random demand walks through one carried [`AllocWarmState`]:
        /// the pinned-search fast path must return bit-identical
        /// allocations to a cold full-MILP solve at every tick, demand
        /// spikes into infeasibility included.
        #[test]
        fn warm_allocations_bit_identical_on_random_demand_ladders(
            demands in proptest::collection::vec(1u32..2000, 1..12)
        ) {
            let deferral = uniform_profile();
            let batches = [1usize, 2, 4, 8, 16];
            let thresholds = grid(26, 0.9);
            let mut warm = AllocWarmState::new();
            for &raw in &demands {
                // 0.1 .. 200.0 qps: spans deep feasibility, the boundary,
                // and hopeless overload on the 16-worker fixture.
                let demand = raw as f64 / 10.0;
                let inputs = cascade1_inputs(&deferral, &batches, &thresholds, demand);
                let cold = solve_milp_allocation(&inputs);
                let warmed = solve_milp_allocation_warm(&inputs, &mut warm);
                proptest::prop_assert_eq!(warmed, cold, "demand {}", demand);
            }
        }
    }

    #[test]
    fn cleared_state_resolves_cold_to_the_same_plan() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(26, 0.9);
        let inputs = cascade1_inputs(&deferral, &batches, &thresholds, 9.0);
        let mut warm = AllocWarmState::new();
        let first = solve_milp_allocation_warm(&inputs, &mut warm);
        warm.clear();
        assert!(!warm.is_primed());
        let second = solve_milp_allocation_warm(&inputs, &mut warm);
        assert_eq!(first, second);
    }

    #[test]
    fn higher_demand_lowers_threshold() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(51, 0.9);
        let low = solve_exhaustive(&cascade1_inputs(&deferral, &batches, &thresholds, 4.0))
            .expect("low demand feasible");
        let high = solve_exhaustive(&cascade1_inputs(&deferral, &batches, &thresholds, 28.0))
            .expect("high demand feasible");
        assert!(
            low.threshold >= high.threshold,
            "threshold should not increase with demand: {} vs {}",
            low.threshold,
            high.threshold
        );
    }

    #[test]
    fn infeasible_demand_returns_none_and_fallback_works() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(11, 0.9);
        // 16 workers cannot serve 500 qps through the light stage.
        let inputs = cascade1_inputs(&deferral, &batches, &thresholds, 500.0);
        assert!(solve_exhaustive(&inputs).is_none());
        assert!(solve_milp_allocation(&inputs).is_none());
        let fb = overload_fallback(&inputs);
        assert!(!fb.feasible);
        assert_eq!(fb.threshold, 0.0);
        assert_eq!(fb.light_workers + fb.heavy_workers, 16);
        assert!(fb.heavy_workers >= 1);
    }

    #[test]
    fn tight_slo_forces_small_batches() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(11, 0.9);
        let mut inputs = cascade1_inputs(&deferral, &batches, &thresholds, 6.0);
        inputs.slo = 2.5; // e2(2) = 1.78·(0.12+0.88·2) = 3.35 > budget
        inputs.queue_delay_light = 0.0;
        inputs.queue_delay_heavy = 0.0;
        let a = solve_exhaustive(&inputs).expect("feasible with b2 = 1");
        assert_eq!(a.heavy_batch, 1);
    }

    #[test]
    fn resume_discount_rescues_an_slo_infeasible_at_nameplate() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(11, 0.9);
        // Nameplate e2(1) = 1.78 s plus the cheapest light leg (0.11 s)
        // overruns a 1.5 s budget: no cascade configuration fits. The
        // resume discount (50 % of the denoise schedule) serves the heavy
        // leg in 0.89 s, which does.
        let mut inputs = cascade1_inputs(&deferral, &batches, &thresholds, 6.0);
        inputs.slo = 1.5;
        inputs.queue_delay_light = 0.0;
        inputs.queue_delay_heavy = 0.0;
        assert!(solve_exhaustive(&inputs).is_none(), "nameplate infeasible");
        assert!(solve_milp_allocation(&inputs).is_none());
        inputs.resume_heavy = Some(LatencyProfile::new(0.89, 0.24));
        let resume = solve_exhaustive(&inputs).expect("discount makes the SLO reachable");
        assert!(resume.feasible);
        let milp = solve_milp_allocation(&inputs).expect("MILP agrees");
        assert!((milp.threshold - resume.threshold).abs() < 1e-9);
    }

    #[test]
    fn resume_discount_threshold_stays_within_restart_bounds() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(51, 0.9);
        // The discount only relaxes the latency constraint, so the plan it
        // finds is sandwiched between restart's and the plan restart would
        // pick with the latency constraint waived: it can unlock a larger
        // (more efficient) heavy batch the nameplate bound rejected, but it
        // can never conjure capacity a latency-unconstrained restart solve
        // would not also find.
        for demand in [4.0, 10.0, 20.0] {
            let restart =
                solve_exhaustive(&cascade1_inputs(&deferral, &batches, &thresholds, demand))
                    .expect("restart feasible");
            let mut unconstrained = cascade1_inputs(&deferral, &batches, &thresholds, demand);
            unconstrained.slo = f64::INFINITY;
            let ceiling = solve_exhaustive(&unconstrained).expect("waived latency feasible");
            let mut discounted = cascade1_inputs(&deferral, &batches, &thresholds, demand);
            discounted.resume_heavy = Some(LatencyProfile::new(0.89, 0.24));
            let resume = solve_exhaustive(&discounted).expect("discounted feasible");
            assert!(
                resume.threshold >= restart.threshold - 1e-9,
                "demand {demand}: relaxing a constraint cannot lower the optimum: {} vs {}",
                resume.threshold,
                restart.threshold
            );
            assert!(
                resume.threshold <= ceiling.threshold + 1e-9,
                "demand {demand}: discount must not exceed the capacity ceiling: {} vs {}",
                resume.threshold,
                ceiling.threshold
            );
        }
    }

    #[test]
    fn proteus_prefers_heavy_at_low_demand() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8];
        let thresholds = grid(11, 0.9);
        let low = solve_proteus(&cascade1_inputs(&deferral, &batches, &thresholds, 2.0))
            .expect("feasible");
        let high = solve_proteus(&cascade1_inputs(&deferral, &batches, &thresholds, 25.0))
            .expect("feasible");
        assert!(low.1 > high.1, "heavy fraction should fall with demand");
        assert!(
            low.1 > 0.8,
            "ample capacity should go mostly heavy: {}",
            low.1
        );
    }

    #[test]
    fn fallback_picks_throughput_maximizing_batches() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(11, 0.9);
        let inputs = cascade1_inputs(&deferral, &batches, &thresholds, 500.0);
        let fb = overload_fallback(&inputs);
        // The fallback maximizes shed-free throughput per tier: for both
        // profiles (affine latency, overhead < 1) throughput is increasing
        // in batch size, so it must pick the largest candidate.
        let best = |p: &LatencyProfile| {
            batches
                .iter()
                .copied()
                .max_by(|&a, &b| p.throughput(a).partial_cmp(&p.throughput(b)).unwrap())
                .unwrap()
        };
        assert_eq!(fb.light_batch, best(&inputs.light));
        assert_eq!(fb.heavy_batch, best(&inputs.heavy));
        assert_eq!(fb.light_batch, 16);
    }

    #[test]
    fn fallback_keeps_exactly_one_heavy_straggler_host() {
        let deferral = uniform_profile();
        let batches = [1usize, 4];
        let thresholds = grid(5, 0.9);
        for workers in [2usize, 3, 16] {
            let mut inputs = cascade1_inputs(&deferral, &batches, &thresholds, 100.0);
            inputs.total_workers = workers;
            let fb = overload_fallback(&inputs);
            assert_eq!(fb.heavy_workers, 1, "workers={workers}");
            assert_eq!(fb.light_workers, workers - 1, "workers={workers}");
            assert!(!fb.feasible);
            assert_eq!(fb.threshold, 0.0);
        }
        // Degenerate single-worker pool: everything goes light.
        let mut inputs = cascade1_inputs(&deferral, &batches, &thresholds, 100.0);
        inputs.total_workers = 1;
        let fb = overload_fallback(&inputs);
        assert_eq!((fb.light_workers, fb.heavy_workers), (1, 0));
    }

    #[test]
    fn proteus_allocation_satisfies_its_constraints() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(11, 0.9);
        for demand in [2.0, 8.0, 16.0, 28.0] {
            let inputs = cascade1_inputs(&deferral, &batches, &thresholds, demand);
            let (a, frac) = solve_proteus(&inputs).expect("feasible demand");
            // Worker budget.
            assert!(a.light_workers + a.heavy_workers <= inputs.total_workers);
            assert!(a.light_workers >= 1 && a.heavy_workers >= 1);
            // Per-branch throughput: each branch must cover its share.
            let light_cap = a.light_workers as f64 * inputs.light.throughput(a.light_batch);
            let heavy_cap = a.heavy_workers as f64 * inputs.heavy.throughput(a.heavy_batch);
            assert!(
                light_cap >= demand * (1.0 - frac) - 1e-9,
                "demand {demand}: light {light_cap} < {}",
                demand * (1.0 - frac)
            );
            assert!(
                heavy_cap >= demand * frac - 1e-9,
                "demand {demand}: heavy {heavy_cap} < {}",
                demand * frac
            );
            // Per-branch latency (no cascade: each branch pays only itself).
            assert!(
                inputs.light.exec_latency(a.light_batch).as_secs_f64() + inputs.queue_delay_light
                    <= inputs.slo
            );
            assert!(
                inputs.heavy.exec_latency(a.heavy_batch).as_secs_f64() + inputs.queue_delay_heavy
                    <= inputs.slo
            );
        }
    }

    #[test]
    fn proteus_infeasible_when_slo_unreachable() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4];
        let thresholds = grid(5, 0.9);
        let mut inputs = cascade1_inputs(&deferral, &batches, &thresholds, 4.0);
        // Heavier queue delays than the SLO on both branches: no batch fits.
        inputs.slo = 1.0;
        inputs.queue_delay_light = 2.0;
        inputs.queue_delay_heavy = 2.0;
        assert!(solve_proteus(&inputs).is_none());
    }

    #[test]
    fn proteus_fraction_is_monotone_in_capacity() {
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(11, 0.9);
        let mut fracs = Vec::new();
        for workers in [4usize, 8, 16, 32] {
            let mut inputs = cascade1_inputs(&deferral, &batches, &thresholds, 10.0);
            inputs.total_workers = workers;
            let (_, frac) = solve_proteus(&inputs).expect("feasible");
            fracs.push(frac);
        }
        for w in fracs.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "more workers should not lower the heavy share: {fracs:?}"
            );
        }
    }

    #[test]
    fn allocation_deferral_fraction_reads_profile() {
        let deferral = uniform_profile();
        let a = Allocation {
            threshold: 0.4,
            light_workers: 2,
            heavy_workers: 2,
            light_batch: 4,
            heavy_batch: 2,
            feasible: true,
        };
        assert!((a.deferral_fraction(&deferral) - 0.4).abs() < 0.01);
    }

    fn ladder3_inputs<'a>(
        deferrals: &'a [DeferralProfile],
        batches: &'a [usize],
        thresholds: &'a [f64],
        demand: f64,
    ) -> LadderInputs<'a> {
        LadderInputs {
            demand_qps: demand,
            queue_delays: vec![0.2, 0.3, 0.2],
            slo: 5.0,
            total_workers: 16,
            deferrals: deferrals.iter().collect(),
            tiers: vec![
                LatencyProfile::new(0.10, 0.55),
                LatencyProfile::new(0.85, 0.15),
                LatencyProfile::new(1.78, 0.12),
            ],
            discriminator_latency: vec![0.01, 0.01],
            batch_sizes: batches,
            thresholds,
            max_raise_per_solve: None,
            direct_fractions: Vec::new(),
        }
    }

    fn two_tier_ladder_inputs<'a>(
        deferral: &'a DeferralProfile,
        batches: &'a [usize],
        thresholds: &'a [f64],
        demand: f64,
    ) -> LadderInputs<'a> {
        LadderInputs {
            demand_qps: demand,
            queue_delays: vec![0.2, 0.5],
            slo: 5.0,
            total_workers: 16,
            deferrals: vec![deferral],
            tiers: vec![
                LatencyProfile::new(0.10, 0.55),
                LatencyProfile::new(1.78, 0.12),
            ],
            discriminator_latency: vec![0.01],
            batch_sizes: batches,
            thresholds,
            max_raise_per_solve: None,
            direct_fractions: Vec::new(),
        }
    }

    #[test]
    fn two_tier_ladder_matches_legacy_threshold() {
        // On a two-tier ladder the boundary threshold the coordinate
        // search maximizes is exactly the legacy objective, so both
        // solvers must land on the same grid level.
        let deferral = uniform_profile();
        let batches = [1usize, 2, 4, 8, 16];
        let thresholds = grid(26, 0.9);
        for demand in [2.0, 6.0, 12.0, 20.0] {
            let legacy =
                solve_exhaustive(&cascade1_inputs(&deferral, &batches, &thresholds, demand))
                    .expect("legacy feasible");
            let ladder = solve_ladder(
                &two_tier_ladder_inputs(&deferral, &batches, &thresholds, demand),
                false,
                &mut LadderWarmState::new(),
            )
            .expect("ladder feasible");
            assert_eq!(ladder.thresholds.len(), 1);
            assert!(
                (ladder.thresholds[0] - legacy.threshold).abs() < 1e-9,
                "demand {demand}: ladder t={} vs legacy t={}",
                ladder.thresholds[0],
                legacy.threshold
            );
            assert_eq!(ladder.workers.iter().sum::<usize>(), 16, "spares placed");
        }
    }

    #[test]
    fn ladder_milp_and_exhaustive_inner_solvers_agree() {
        let deferrals = vec![uniform_profile(), uniform_profile()];
        let batches = [1usize, 2, 4, 8];
        let thresholds = grid(11, 0.9);
        for demand in [2.0, 5.0, 9.0, 14.0] {
            let inputs = ladder3_inputs(&deferrals, &batches, &thresholds, demand);
            let ex = solve_ladder(&inputs, false, &mut LadderWarmState::new());
            let milp = solve_ladder(&inputs, true, &mut LadderWarmState::new());
            assert_eq!(ex, milp, "demand {demand}");
        }
    }

    #[test]
    fn ladder_warm_solves_match_cold_decisions() {
        // A warm start must never change *what the solver decides*: the
        // coordinate search re-maximizes from the warm point, so
        // thresholds, batches, and feasibility match a cold solve bit
        // for bit. The worker split is the one sanctioned divergence —
        // hysteresis keeps the previously actuated split while it still
        // covers every tier's need — so instead of exact equality we pin
        // the contract: same fleet total, and per-tier capacity covers
        // the deferred demand chain at the (identical) thresholds.
        let deferrals = vec![uniform_profile(), uniform_profile()];
        let batches = [1usize, 2, 4, 8];
        let thresholds = grid(26, 0.9);
        let mut warm = LadderWarmState::new();
        for (i, demand) in [4.0, 4.2, 4.1, 8.0, 500.0, 7.5, 4.0]
            .into_iter()
            .enumerate()
        {
            let inputs = ladder3_inputs(&deferrals, &batches, &thresholds, demand);
            let cold = solve_ladder(&inputs, true, &mut LadderWarmState::new());
            let warmed = solve_ladder(&inputs, true, &mut warm);
            if i == 0 {
                assert_eq!(warmed, cold, "first solve has no warm state to reuse");
            }
            match (&warmed, &cold) {
                (Some(w), Some(c)) => {
                    assert_eq!(w.thresholds, c.thresholds, "demand {demand}");
                    assert_eq!(w.batches, c.batches, "demand {demand}");
                    assert_eq!(w.feasible, c.feasible, "demand {demand}");
                    assert_eq!(
                        w.workers.iter().sum::<usize>(),
                        c.workers.iter().sum::<usize>(),
                        "demand {demand}: fleet total"
                    );
                    let mut d = demand;
                    for k in 0..w.workers.len() {
                        if k > 0 {
                            d *= inputs.deferrals[k - 1].fraction_deferred(w.thresholds[k - 1]);
                        }
                        let cap =
                            w.workers[k] as f64 * inputs.tier_stage_throughput(k, w.batches[k]);
                        assert!(cap >= d - 1e-9, "demand {demand} tier {k}: {cap} < {d}");
                    }
                }
                (None, None) => {}
                _ => panic!("demand {demand}: warm {warmed:?} vs cold {cold:?}"),
            }
        }
        warm.clear();
        let inputs = ladder3_inputs(&deferrals, &batches, &thresholds, 4.0);
        assert_eq!(
            solve_ladder(&inputs, true, &mut warm),
            solve_ladder(&inputs, true, &mut LadderWarmState::new()),
            "clear() drops the warm split entirely"
        );
    }

    #[test]
    fn ladder_respects_capacity_and_latency() {
        let deferrals = vec![uniform_profile(), uniform_profile()];
        let batches = [1usize, 2, 4, 8];
        let thresholds = grid(11, 0.9);
        let inputs = ladder3_inputs(&deferrals, &batches, &thresholds, 8.0);
        let a = solve_ladder(&inputs, false, &mut LadderWarmState::new()).expect("feasible");
        assert!(a.feasible);
        assert_eq!(a.workers.len(), 3);
        assert_eq!(a.workers.iter().sum::<usize>(), 16);
        assert!(a.workers.iter().all(|&w| w >= 1));
        // Per-tier capacity covers the deferred demand chain.
        let mut d = 8.0f64;
        for k in 0..3 {
            if k > 0 {
                d *= inputs.deferrals[k - 1].fraction_deferred(a.thresholds[k - 1]);
            }
            let cap = a.workers[k] as f64 * inputs.tier_stage_throughput(k, a.batches[k]);
            assert!(cap >= d - 1e-9, "tier {k}: capacity {cap} < demand {d}");
        }
        // Worst-case cascade latency fits the SLO.
        let lat: f64 = (0..3)
            .map(|k| inputs.tier_stage_latency(k, a.batches[k]))
            .sum::<f64>()
            + inputs.queue_delays.iter().sum::<f64>();
        assert!(lat <= inputs.slo + 1e-9);
    }

    #[test]
    fn ladder_overload_falls_back() {
        let deferrals = vec![uniform_profile(), uniform_profile()];
        let batches = [1usize, 2, 4, 8];
        let thresholds = grid(11, 0.9);
        let inputs = ladder3_inputs(&deferrals, &batches, &thresholds, 5000.0);
        assert!(solve_ladder(&inputs, false, &mut LadderWarmState::new()).is_none());
        let fb = ladder_overload_fallback(&inputs);
        assert!(!fb.feasible);
        assert_eq!(fb.thresholds, vec![0.0, 0.0]);
        assert_eq!(fb.workers.iter().sum::<usize>(), 16);
        assert_eq!(&fb.workers[1..], &[1, 1], "stragglers keep a host");
    }
}
