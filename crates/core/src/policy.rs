//! Serving policies: DiffServe and every baseline from Table 1, plus the
//! resource-allocation ablations of Fig. 8.

/// The serving policies compared in the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Clipper serving only the lightweight model (static, query-agnostic).
    ClipperLight,
    /// Clipper serving only the heavyweight model (static, query-agnostic).
    ClipperHeavy,
    /// Proteus: dynamic allocation between variants, but *random* routing
    /// that ignores query content.
    Proteus,
    /// DiffServe with a cascade but peak-provisioned static allocation and a
    /// fixed confidence threshold.
    DiffServeStatic,
    /// Full DiffServe: query-aware cascade + dynamic MILP allocation.
    DiffServe,
}

impl Policy {
    /// All policies, in the paper's presentation order.
    pub fn all() -> [Policy; 5] {
        [
            Policy::ClipperLight,
            Policy::ClipperHeavy,
            Policy::Proteus,
            Policy::DiffServeStatic,
            Policy::DiffServe,
        ]
    }

    /// Display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            Policy::ClipperLight => "Clipper-Light",
            Policy::ClipperHeavy => "Clipper-Heavy",
            Policy::Proteus => "Proteus",
            Policy::DiffServeStatic => "DiffServe-Static",
            Policy::DiffServe => "DiffServe",
        }
    }

    /// Whether the policy adapts its allocation to demand (Table 1).
    pub fn is_dynamic(self) -> bool {
        matches!(self, Policy::Proteus | Policy::DiffServe)
    }

    /// Whether the policy routes queries by their content (Table 1).
    pub fn is_query_aware(self) -> bool {
        matches!(self, Policy::DiffServeStatic | Policy::DiffServe)
    }

    /// Whether the policy runs the light→heavy cascade.
    pub fn uses_cascade(self) -> bool {
        self.is_query_aware()
    }
}

/// How queuing delay is estimated in the latency constraint (§3.3 / Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueModel {
    /// Little's law over measured queue lengths and arrival rates — the
    /// DiffServe design.
    LittlesLaw,
    /// Prior-work heuristic: assume queuing delay equals twice the
    /// execution latency (the "No queuing model" ablation).
    TwiceExecution,
}

/// How batch sizes are chosen (§3.3 / Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// The MILP co-optimizes batch sizes — the DiffServe design.
    Milp,
    /// Clipper's additive-increase / multiplicative-decrease heuristic,
    /// reacting to observed SLO timeouts.
    Aimd,
}

/// Ablation switches for the resource allocator (all default to the full
/// DiffServe design).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationKnobs {
    /// Fix the confidence threshold instead of letting the MILP tune it
    /// (the "Static threshold" ablation). `None` = tuned.
    pub static_threshold: Option<f64>,
    /// Queuing-delay estimator.
    pub queue_model: QueueModel,
    /// Batch-size selection.
    pub batch_policy: BatchPolicy,
    /// Solve the allocation against the fleet's *nameplate* capacity,
    /// ignoring the effective-capacity signal degraded workers report (the
    /// degradation-blindness ablation). `false` = the DiffServe design:
    /// the planner sees effective throughput and sheds deferrals instead
    /// of deadlines under a brownout.
    pub nameplate_capacity: bool,
    /// Route by raw queue depth, ignoring [`WorkerHealth::speed_factor`] —
    /// the health-blind JSQ this codebase shipped before routing learned to
    /// weigh a degraded worker's queue slots by its slowdown. `false` = the
    /// fixed design (effective-load JSQ). Kept as an ablation so regression
    /// tests can demonstrate the brownout SLO gap.
    ///
    /// [`WorkerHealth::speed_factor`]: crate::query::WorkerHealth::speed_factor
    pub health_blind_routing: bool,
    /// Route add-on-carrying queries by queue depth alone, ignoring which
    /// workers have the required module cached (the affinity-blindness
    /// ablation). `false` = the add-on-aware design: the router trades
    /// cached-module affinity against speed-weighted queue depth. Only
    /// consulted when [`SystemConfig::addons`] is set — without add-ons
    /// the knob is inert and routing is unchanged.
    ///
    /// [`SystemConfig::addons`]: crate::config::SystemConfig::addons
    pub affinity_blind_routing: bool,
}

impl Default for AblationKnobs {
    fn default() -> Self {
        AblationKnobs {
            static_threshold: None,
            queue_model: QueueModel::LittlesLaw,
            batch_policy: BatchPolicy::Milp,
            nameplate_capacity: false,
            health_blind_routing: false,
            affinity_blind_routing: false,
        }
    }
}

impl AblationKnobs {
    /// The Fig. 8 "Static threshold" variant.
    pub fn static_threshold(t: f64) -> Self {
        AblationKnobs {
            static_threshold: Some(t),
            ..Default::default()
        }
    }

    /// The Fig. 8 "AIMD" variant.
    pub fn aimd() -> Self {
        AblationKnobs {
            batch_policy: BatchPolicy::Aimd,
            ..Default::default()
        }
    }

    /// The Fig. 8 "No queuing model" variant.
    pub fn no_queue_model() -> Self {
        AblationKnobs {
            queue_model: QueueModel::TwiceExecution,
            ..Default::default()
        }
    }

    /// The degradation-blindness ablation: the planner solves against
    /// nameplate capacity even when workers report degraded throughput.
    pub fn nameplate() -> Self {
        AblationKnobs {
            nameplate_capacity: true,
            ..Default::default()
        }
    }

    /// The health-blind routing ablation: JSQ over raw queue depth, as
    /// shipped before the router weighed load by worker slowdown.
    pub fn health_blind() -> Self {
        AblationKnobs {
            health_blind_routing: true,
            ..Default::default()
        }
    }

    /// The affinity-blind routing ablation: add-on-carrying queries route
    /// by queue depth alone, ignoring module-cache residency.
    pub fn affinity_blind() -> Self {
        AblationKnobs {
            affinity_blind_routing: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_taxonomy() {
        // Reproduces Table 1 of the paper.
        assert!(!Policy::ClipperLight.is_dynamic());
        assert!(!Policy::ClipperLight.is_query_aware());
        assert!(!Policy::ClipperHeavy.is_dynamic());
        assert!(!Policy::ClipperHeavy.is_query_aware());
        assert!(Policy::Proteus.is_dynamic());
        assert!(!Policy::Proteus.is_query_aware());
        assert!(!Policy::DiffServeStatic.is_dynamic());
        assert!(Policy::DiffServeStatic.is_query_aware());
        assert!(Policy::DiffServe.is_dynamic());
        assert!(Policy::DiffServe.is_query_aware());
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = Policy::all().iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn ablation_builders() {
        assert_eq!(
            AblationKnobs::static_threshold(0.5).static_threshold,
            Some(0.5)
        );
        assert_eq!(AblationKnobs::aimd().batch_policy, BatchPolicy::Aimd);
        assert_eq!(
            AblationKnobs::no_queue_model().queue_model,
            QueueModel::TwiceExecution
        );
        assert!(AblationKnobs::nameplate().nameplate_capacity);
        assert!(AblationKnobs::affinity_blind().affinity_blind_routing);
        let d = AblationKnobs::default();
        assert_eq!(d.static_threshold, None);
        assert_eq!(d.queue_model, QueueModel::LittlesLaw);
        assert_eq!(d.batch_policy, BatchPolicy::Milp);
        assert!(!d.nameplate_capacity);
        assert!(!d.affinity_blind_routing);
    }
}
