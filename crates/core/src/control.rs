//! The backend-agnostic control plane.
//!
//! DiffServe's controller runs the same pipeline every control interval
//! regardless of which execution engine hosts the workers:
//!
//! 1. **Demand estimation** — EWMA over the arrivals observed since the
//!    last tick, over-provisioned by λ (§3.3, via
//!    [`DemandEstimator`]).
//! 2. **Profile estimation** — the deferral profile `f(t)` the allocator
//!    solves against. The paper initializes `f` offline and *keeps updating
//!    it online* (§4.2, Eq. 3); [`ProfileEstimator`] implements both modes:
//!    a passthrough over the offline curve, and a streaming
//!    [`OnlineDeferralEstimator`] that re-estimates the curve from the
//!    confidences the cascade actually observes so the controller tracks
//!    difficulty drift.
//! 3. **Allocation planning** — one [`AllocPlanner`] trait wrapping
//!    [`solve_milp_allocation_warm`], [`solve_exhaustive`],
//!    [`solve_proteus`], and the [`overload_fallback`] behind a single
//!    `plan` call.
//! 4. **Plan actuation** — the backend-side half: a [`PlanActuator`]
//!    applies the returned [`ControlDirective`] to live serving state (the
//!    simulator's worker array, the testbed's shared [`ServingPlan`]).
//!
//! Historically this logic was written twice — interleaved with event
//! handling in `core::sim` and with thread plumbing in `cluster::runtime` —
//! so every controller improvement had to land in both. Now both backends
//! gather a [`ControlObservation`], call [`ControlLoop::step`], and actuate
//! the directive; the decision logic exists exactly once.
//!
//! [`ServingPlan`]: https://docs.rs/diffserve-cluster
//! [`OnlineDeferralEstimator`]: diffserve_imagegen::OnlineDeferralEstimator

use diffserve_imagegen::{DeferralProfile, LatencyProfile, OnlineDeferralEstimator};
use diffserve_simkit::time::SimTime;
use diffserve_trace::DemandEstimator;

use crate::allocator::{
    ladder_overload_fallback, overload_fallback, solve_exhaustive, solve_ladder,
    solve_milp_allocation_warm, solve_proteus, AllocWarmState, Allocation, AllocatorInputs,
    LadderAllocation, LadderInputs, LadderWarmState,
};
use crate::config::{LadderConfig, SystemConfig};
use crate::policy::{BatchPolicy, Policy, QueueModel};
use crate::query::ModelTier;
use crate::serve::SessionSpec;
use crate::sim::{AllocatorBackend, RunSettings};

/// Fresh confidence samples required in a control window before a
/// deferral-estimation-error point is recorded (fewer would make the
/// empirical CDF noise).
const MIN_ERROR_SAMPLES: usize = 8;

/// What a backend observed since the previous control tick — everything the
/// control pipeline needs, nothing backend-specific.
#[derive(Debug, Clone, Default)]
pub struct ControlObservation {
    /// The tick instant.
    pub now: SimTime,
    /// Queries that arrived since the last tick.
    pub arrivals: u64,
    /// Queries routed (or escalated) to the heavy tier since the last tick.
    pub heavy_arrivals: u64,
    /// SLO violations attributed to the light tier since the last tick
    /// (feeds AIMD batch adaptation).
    pub violations_light: u64,
    /// SLO violations attributed to the heavy tier since the last tick.
    pub violations_heavy: u64,
    /// Queries queued on alive light-tier workers right now.
    pub light_queue: usize,
    /// Queries queued on alive heavy-tier workers right now.
    pub heavy_queue: usize,
    /// Workers currently alive (the allocator's capacity `S`).
    pub alive_workers: usize,
    /// Sum of the alive workers' health speed factors — the fleet's
    /// *effective* capacity in worker-equivalents. Equals `alive_workers`
    /// when every worker runs at nameplate speed; drops below it under a
    /// brownout. `0.0` (the default) means "not reported" and the control
    /// pipeline falls back to nameplate capacity.
    pub effective_capacity: f64,
    /// Batch size currently operated by the light tier (the "no queuing
    /// model" ablation estimates delay from it).
    pub current_light_batch: usize,
    /// Batch size currently operated by the heavy tier.
    pub current_heavy_batch: usize,
    /// Discriminator confidences observed since the last tick — the online
    /// profile estimator's input stream.
    pub confidences: Vec<f64>,
    /// Queries queued on alive workers of each tier right now, entry tier
    /// first (length N on a ladder backend). Empty (the default) on legacy
    /// two-tier backends, which report through
    /// [`light_queue`](Self::light_queue)/[`heavy_queue`](Self::heavy_queue).
    pub tier_queues: Vec<usize>,
    /// Confidences observed at escalation boundaries **deeper than the
    /// first** since the last tick — `deep_confidences[i]` is boundary
    /// `i + 1`'s stream (boundary 0 reports through
    /// [`confidences`](Self::confidences)). Empty on two-tier backends.
    pub deep_confidences: Vec<Vec<f64>>,
    /// Queries admitted *directly* at each tier since the last tick
    /// (length N on a ladder backend) — the predictive router's
    /// straight-to-tier bypass flow. Empty on two-tier backends and when
    /// the router is off; the ladder planner then plans everything
    /// entry-first.
    pub tier_direct_arrivals: Vec<u64>,
}

/// What the control pipeline decided this tick; the backend's
/// [`PlanActuator`] applies it.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlDirective {
    /// Apply a solved cascade allocation (threshold, worker split, batch
    /// sizes).
    Apply(Allocation),
    /// Proteus: apply the allocation and route `heavy_fraction` of queries
    /// directly to the heavy tier.
    ApplyProteus {
        /// Worker split and batch sizes.
        allocation: Allocation,
        /// Fraction of arrivals routed to the heavy model.
        heavy_fraction: f64,
    },
    /// Apply a solved N-tier ladder allocation (per-boundary threshold
    /// vector, per-tier worker counts and batch sizes).
    ApplyLadder(LadderAllocation),
    /// Keep the current plan (static policies after bootstrap).
    Hold,
}

/// One allocation-planning strategy: demand and constraints in, a
/// [`ControlDirective`] out. Implementations wrap the solver entry points
/// ([`solve_milp_allocation_warm`], [`solve_exhaustive`], [`solve_proteus`]) and
/// fall back to [`overload_fallback`] when the problem is infeasible, so
/// callers never handle `None`.
pub trait AllocPlanner: std::fmt::Debug + Send {
    /// Plans one allocation from the tick's solver inputs. Takes `&mut
    /// self` so implementations can carry solver state between ticks (the
    /// MILP planner warm-starts each solve from the previous optimum).
    fn plan(&mut self, inputs: &AllocatorInputs<'_>) -> ControlDirective;
}

/// The cascade planner (DiffServe and DiffServe-Static): maximizes the
/// confidence threshold via the configured solver, degrading to the
/// overload fallback when infeasible.
///
/// The MILP backend keeps an [`AllocWarmState`] across ticks: the demand
/// estimate moves slowly between control intervals, so the previous tick's
/// threshold pins the next solve to a couple of small residual MILPs, each
/// restarted from the previous optimal simplex basis. The allocator's
/// uniqueness penalties guarantee the warm-started plan is identical to a
/// cold solve's.
#[derive(Debug, Clone)]
pub struct CascadePlanner {
    /// Which solver implementation to invoke.
    pub backend: AllocatorBackend,
    warm: AllocWarmState,
}

impl CascadePlanner {
    /// A planner with cold solver state.
    pub fn new(backend: AllocatorBackend) -> Self {
        CascadePlanner {
            backend,
            warm: AllocWarmState::new(),
        }
    }
}

impl AllocPlanner for CascadePlanner {
    fn plan(&mut self, inputs: &AllocatorInputs<'_>) -> ControlDirective {
        let solved = match self.backend {
            AllocatorBackend::Milp => solve_milp_allocation_warm(inputs, &mut self.warm),
            AllocatorBackend::Exhaustive => solve_exhaustive(inputs),
        };
        ControlDirective::Apply(solved.unwrap_or_else(|| overload_fallback(inputs)))
    }
}

/// The Proteus planner: maximizes the heavy routing fraction; under
/// overload everything routes light over the fallback allocation.
#[derive(Debug, Clone, Copy)]
pub struct ProteusPlanner;

impl AllocPlanner for ProteusPlanner {
    fn plan(&mut self, inputs: &AllocatorInputs<'_>) -> ControlDirective {
        match solve_proteus(inputs) {
            Some((allocation, heavy_fraction)) => ControlDirective::ApplyProteus {
                allocation,
                heavy_fraction,
            },
            None => ControlDirective::ApplyProteus {
                allocation: overload_fallback(inputs),
                heavy_fraction: 0.0,
            },
        }
    }
}

/// The backend-side half of the control pipeline: applies a
/// [`ControlDirective`] to live serving state. The simulator implements it
/// over its worker array (tier reassignment through the model-switch
/// protocol); the testbed over its shared `ServingPlan`.
pub trait PlanActuator {
    /// Applies the directive (a no-op for [`ControlDirective::Hold`]).
    fn actuate(&mut self, directive: &ControlDirective);
}

/// The deferral-profile stage of the pipeline: which `f(t)` the allocator
/// solves against.
#[derive(Debug, Clone)]
pub enum ProfileEstimator {
    /// Solve against the offline-profiled curve only (the pre-§4.2 mode).
    Offline,
    /// Refresh the curve online from observed confidences, falling back to
    /// the offline profile until the estimator warms up.
    Online(OnlineDeferralEstimator),
}

impl ProfileEstimator {
    /// Builds the estimator the configuration asks for.
    pub fn from_config(config: &SystemConfig) -> Self {
        if config.online_profile_refresh {
            ProfileEstimator::Online(OnlineDeferralEstimator::new(
                config.online_profile_window,
                config.online_profile_min_samples,
            ))
        } else {
            ProfileEstimator::Offline
        }
    }

    /// The online estimate, if this is a warmed-up online estimator.
    fn online_profile(&self) -> Option<&DeferralProfile> {
        match self {
            ProfileEstimator::Offline => None,
            ProfileEstimator::Online(est) => est.profile(),
        }
    }
}

/// The unified control plane driven by both serving backends.
///
/// Construct one from validated session inputs
/// ([`SessionSpec::control_loop`](crate::serve::SessionSpec::control_loop)),
/// call [`bootstrap`](ControlLoop::bootstrap) once before serving, then
/// [`step`](ControlLoop::step) every control interval with what the backend
/// observed; actuate the returned directive.
///
/// Owns the pipeline state: the demand EWMA, the profile estimator, AIMD
/// batch state, and the deferral-estimation-error series recorded for the
/// final [`RunReport`](crate::report::RunReport).
#[derive(Debug)]
pub struct ControlLoop {
    config: SystemConfig,
    settings: RunSettings,
    offline: DeferralProfile,
    light: LatencyProfile,
    heavy: LatencyProfile,
    resume_heavy: Option<LatencyProfile>,
    discriminator_latency: f64,
    demand: DemandEstimator,
    profile: ProfileEstimator,
    planner: Box<dyn AllocPlanner>,
    aimd_light_batch: usize,
    aimd_heavy_batch: usize,
    deferral_errors: Vec<(f64, f64)>,
    ladder: Option<LadderControl>,
}

/// Everything tier- or boundary-indexed the N-tier planner needs beyond
/// the legacy two-tier fields. Present only on ladder sessions with more
/// than two tiers; a two-tier ladder plans through the unchanged legacy
/// path.
#[derive(Debug)]
struct LadderControl {
    /// Per-tier execution profiles, cheapest first.
    tiers: Vec<LatencyProfile>,
    /// Per-boundary discriminator latencies, seconds.
    disc_latencies: Vec<f64>,
    /// Per-boundary offline deferral profiles `f_k(t)`.
    offline: Vec<DeferralProfile>,
    /// Online estimators for boundaries **deeper than the first**
    /// (boundary 0 rides the legacy [`ProfileEstimator`]); empty when
    /// online refresh is off.
    online: Vec<OnlineDeferralEstimator>,
    /// Warm levels + simplex basis carried across ticks.
    warm: LadderWarmState,
    /// EWMA of the per-tier direct-admission split (length N, sums to 1)
    /// observed through [`ControlObservation::tier_direct_arrivals`];
    /// empty until the first window reports admissions.
    direct_frac: Vec<f64>,
}

impl ControlLoop {
    /// Builds the control loop from its constituent parts. Most callers go
    /// through [`SessionSpec::control_loop`](crate::serve::SessionSpec::control_loop).
    pub fn new(
        config: SystemConfig,
        settings: RunSettings,
        offline: DeferralProfile,
        light: LatencyProfile,
        heavy: LatencyProfile,
        discriminator_latency: f64,
    ) -> Self {
        let planner: Box<dyn AllocPlanner> = match settings.policy {
            Policy::Proteus => Box::new(ProteusPlanner),
            _ => Box::new(CascadePlanner::new(settings.backend)),
        };
        let demand = DemandEstimator::new(config.ewma_alpha, config.over_provision);
        let profile = ProfileEstimator::from_config(&config);
        // With resume-from-latents enabled, an escalated query re-does only
        // `1 − DENOISE_FRAC · credit` of the heavy denoise schedule, so the
        // allocator's latency constraint should charge that cheaper
        // escalation path: shrink the heavy profile's per-query slope by
        // that factor while preserving the fixed batch overhead (`base' =
        // base·(ovh + (1−ovh)·k)`, `ovh' = base·ovh / base'`). `k ≥ 1 −
        // DENOISE_FRAC > 0` keeps the transformed profile valid.
        //
        // The discount is exact for the latency bound — every escalated
        // query carries latents, so its heavy pass serves nameplate minus
        // savings — but it is deliberately *not* fed into the throughput
        // constraint: spending the freed capacity on extra deferral would
        // shift the escalation mix the operator tuned the threshold cap
        // for, and the savings evaporate whenever queries reach the heavy
        // tier without latents (direct routing, replays). Capacity planning
        // stays on nameplate throughput; restart mode carries no discount
        // at all.
        let resume_heavy = if config.resume_from_latents {
            let k = 1.0 - diffserve_imagegen::DENOISE_FRAC * config.resume_step_credit;
            let base =
                heavy.base_latency * (heavy.batch_overhead + (1.0 - heavy.batch_overhead) * k);
            Some(LatencyProfile::new(
                base,
                heavy.base_latency * heavy.batch_overhead / base,
            ))
        } else {
            None
        };
        ControlLoop {
            demand,
            profile,
            planner,
            aimd_light_batch: 1,
            aimd_heavy_batch: 1,
            deferral_errors: Vec::new(),
            config,
            settings,
            offline,
            light,
            heavy,
            resume_heavy,
            discriminator_latency,
            ladder: None,
        }
    }

    /// Attaches N-tier ladder planning state: per-tier execution profiles
    /// (cheapest first), per-boundary discriminator latencies, and
    /// per-boundary offline deferral profiles. Once attached, dynamic
    /// ticks emit [`ControlDirective::ApplyLadder`] with an N-dimensional
    /// threshold vector instead of the two-tier
    /// [`ControlDirective::Apply`].
    ///
    /// Callers only attach ladders with more than two tiers
    /// ([`SessionSpec::control_loop`](crate::serve::SessionSpec::control_loop));
    /// a two-tier ladder stays on the legacy planner, which is bit-identical
    /// by construction.
    pub fn attach_ladder(
        &mut self,
        tiers: Vec<LatencyProfile>,
        disc_latencies: Vec<f64>,
        offline: Vec<DeferralProfile>,
    ) {
        assert_eq!(tiers.len(), offline.len() + 1, "one profile per boundary");
        assert_eq!(disc_latencies.len(), offline.len());
        let online = if self.config.online_profile_refresh {
            (1..offline.len())
                .map(|_| {
                    OnlineDeferralEstimator::new(
                        self.config.online_profile_window,
                        self.config.online_profile_min_samples,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        self.ladder = Some(LadderControl {
            tiers,
            disc_latencies,
            offline,
            online,
            warm: LadderWarmState::new(),
            direct_frac: Vec::new(),
        });
    }

    /// `true` when N-tier ladder planning is attached.
    pub fn ladder_active(&self) -> bool {
        self.ladder.is_some()
    }

    /// The initial allocation before any demand has been observed.
    /// `peak_demand` is what static provisioning plans for — the simulator
    /// passes the raw peak hint, the testbed additionally folds in the
    /// trace's known maximum and the over-provisioning factor.
    pub fn bootstrap(&mut self, peak_demand: f64) -> ControlDirective {
        let thresholds = self.threshold_grid();
        let batches = self.config.batch_sizes.clone();
        let workers = self.config.num_workers;
        match self.settings.policy {
            Policy::ClipperLight => ControlDirective::Apply(Allocation {
                threshold: 0.5,
                light_workers: workers,
                heavy_workers: 0,
                light_batch: self.clipper_batch(ModelTier::Light),
                heavy_batch: 1,
                feasible: true,
            }),
            Policy::ClipperHeavy => ControlDirective::Apply(Allocation {
                threshold: 0.5,
                light_workers: 0,
                heavy_workers: workers,
                light_batch: 1,
                heavy_batch: self.clipper_batch(ModelTier::Heavy),
                feasible: true,
            }),
            Policy::DiffServeStatic => {
                // Provisioned for the anticipated peak and never re-solved
                // (§4.1: "provisioned to accommodate maximum anticipated
                // demand").
                let slo = self.config.slo.as_secs_f64();
                if self.ladder.is_some() {
                    return self.plan_ladder(peak_demand, &[], slo, &thresholds, &batches, workers);
                }
                self.plan_allocation(peak_demand, 0.0, 0.0, slo, &thresholds, &batches, workers)
            }
            Policy::DiffServe | Policy::Proteus => {
                let slo = self.config.slo.as_secs_f64();
                if self.ladder.is_some() {
                    return self.plan_ladder(1.0, &[], slo, &thresholds, &batches, workers);
                }
                self.plan_allocation(1.0, 0.0, 0.0, slo, &thresholds, &batches, workers)
            }
        }
    }

    /// One control tick: demand estimation → profile estimation →
    /// allocation planning. Static policies still feed the estimators (so
    /// their telemetry stays comparable) but always return
    /// [`ControlDirective::Hold`].
    pub fn step(&mut self, obs: &ControlObservation) -> ControlDirective {
        let interval = self.config.control_interval;
        self.demand.observe(obs.arrivals, interval);
        let demand = self.demand.provisioned_estimate().max(0.5);

        // Queuing-delay estimates (Little's law or the Fig. 8 heuristic).
        let heavy_rate = (obs.heavy_arrivals as f64 / interval.as_secs_f64()).max(0.05);
        let light_rate = demand.max(0.05);
        let (q1, q2) = match self.settings.knobs.queue_model {
            QueueModel::LittlesLaw => (
                obs.light_queue as f64 / light_rate,
                obs.heavy_queue as f64 / heavy_rate,
            ),
            QueueModel::TwiceExecution => (
                2.0 * self.stage_latency(ModelTier::Light, obs.current_light_batch),
                2.0 * self.stage_latency(ModelTier::Heavy, obs.current_heavy_batch),
            ),
        };

        // AIMD batch adaptation (Fig. 8 ablation).
        if self.settings.knobs.batch_policy == BatchPolicy::Aimd {
            let max_b = self
                .config
                .batch_sizes
                .iter()
                .copied()
                .max()
                .expect("non-empty");
            self.aimd_light_batch =
                aimd_step(self.aimd_light_batch, obs.violations_light > 0, max_b);
            self.aimd_heavy_batch =
                aimd_step(self.aimd_heavy_batch, obs.violations_heavy > 0, max_b);
        }

        // Profile estimation: score the curve that was in use over the
        // window that just ended, then absorb the window's observations.
        self.track_profile(obs);
        self.track_ladder(obs);

        if !self.settings.policy.is_dynamic() {
            return ControlDirective::Hold;
        }

        let thresholds = self.threshold_grid();
        let batches: Vec<usize> = match self.settings.knobs.batch_policy {
            BatchPolicy::Milp => self.config.batch_sizes.clone(),
            // AIMD owns the batch choice; the planner sees only the current
            // AIMD operating points, so capacity planning reacts a step
            // behind the oscillation — the paper's "reactive signal" flaw.
            BatchPolicy::Aimd => {
                let mut b = vec![self.aimd_light_batch, self.aimd_heavy_batch];
                b.dedup();
                b
            }
        };

        // Degradation awareness: when the backend reports effective
        // capacity below nameplate (degraded workers), inflate the demand
        // the planner solves against by the shortfall — `x·(s·T) ≥ D` is
        // `x·T ≥ D/s` — so the threshold drops and deferrals shed before
        // deadlines do. The nameplate ablation ignores the signal.
        let capacity_scale = if self.settings.knobs.nameplate_capacity
            || obs.effective_capacity <= 0.0
            || obs.alive_workers == 0
        {
            1.0
        } else {
            (obs.effective_capacity / obs.alive_workers as f64).clamp(0.05, 1.0)
        };
        let planned_demand = demand / capacity_scale;

        if self.ladder.is_some() {
            // N-tier ladder planning: per-tier queue delays, the shared
            // threshold grid per boundary, MILP or exhaustive residual
            // solves behind the coordinate search. The AIMD ablation does
            // not compose with ladders — batch choice stays with the
            // planner.
            let slo = self.config.slo.as_secs_f64();
            let queue_delays = self.ladder_queue_delays(obs, light_rate, heavy_rate);
            return self.plan_ladder(
                planned_demand,
                &queue_delays,
                slo,
                &thresholds,
                &batches,
                obs.alive_workers,
            );
        }

        let aimd_cascade = self.settings.policy == Policy::DiffServe
            && self.settings.knobs.batch_policy == BatchPolicy::Aimd;
        // AIMD owns latency reactively (halve on timeout); the planner
        // only sizes throughput at the current AIMD operating points.
        // This is the paper's ablation: the latency constraint leaves
        // the optimization and SLO violations become the (lagging)
        // control signal.
        let slo = if aimd_cascade {
            f64::INFINITY
        } else {
            self.config.slo.as_secs_f64()
        };
        let mut directive = self.plan_allocation(
            planned_demand,
            q1,
            q2,
            slo,
            &thresholds,
            &batches,
            obs.alive_workers,
        );
        if aimd_cascade {
            if let ControlDirective::Apply(alloc) = &mut directive {
                alloc.light_batch = self.aimd_light_batch;
                alloc.heavy_batch = self.aimd_heavy_batch;
            }
        }
        directive
    }

    /// The deferral profile the allocator currently solves against: the
    /// warmed-up online estimate when available, the offline curve
    /// otherwise.
    pub fn effective_profile(&self) -> &DeferralProfile {
        self.profile.online_profile().unwrap_or(&self.offline)
    }

    /// Whether the online estimate is currently overriding the offline
    /// profile.
    pub fn online_active(&self) -> bool {
        self.profile.online_profile().is_some()
    }

    /// Live estimated-vs-offline `f(t)` gap: mean absolute difference over
    /// the candidate threshold grid, 0 while the offline profile rules.
    pub fn deferral_gap(&self) -> f64 {
        match self.profile.online_profile() {
            Some(p) => p.gap(&self.offline, &self.config.threshold_grid()),
            None => 0.0,
        }
    }

    /// The deferral-estimation-error series recorded so far:
    /// `(tick seconds, mean |f_used(t) − f_observed(t)|)` — the
    /// one-step-ahead prediction error of the profile the allocator used
    /// against the confidences the window actually produced.
    pub fn deferral_error_series(&self) -> &[(f64, f64)] {
        &self.deferral_errors
    }

    /// Takes the recorded error series (for [`RunReport`] assembly at
    /// session teardown).
    ///
    /// [`RunReport`]: crate::report::RunReport
    pub fn take_deferral_error_series(&mut self) -> Vec<(f64, f64)> {
        std::mem::take(&mut self.deferral_errors)
    }

    fn track_profile(&mut self, obs: &ControlObservation) {
        if obs.confidences.len() >= MIN_ERROR_SAMPLES {
            if let Ok(empirical) = DeferralProfile::from_confidences(obs.confidences.clone()) {
                let grid = self.config.threshold_grid();
                let err = self.effective_profile().gap(&empirical, &grid);
                self.deferral_errors.push((obs.now.as_secs_f64(), err));
            }
        }
        if let ProfileEstimator::Online(est) = &mut self.profile {
            est.observe_all(&obs.confidences);
            est.refresh();
        }
    }

    /// Candidate thresholds: the pinned static-threshold ablation value or
    /// the configured grid.
    fn threshold_grid(&self) -> Vec<f64> {
        match self.settings.knobs.static_threshold {
            Some(t) => vec![t],
            None => self.config.threshold_grid(),
        }
    }

    /// Largest batch size whose execution fits half the SLO — the static
    /// batch rule used for the Clipper baselines.
    fn clipper_batch(&self, tier: ModelTier) -> usize {
        let budget = self.config.slo.as_secs_f64() / 2.0;
        self.config
            .batch_sizes
            .iter()
            .copied()
            .filter(|&b| self.stage_latency(tier, b) <= budget)
            .max()
            .unwrap_or(1)
    }

    /// Effective stage execution latency; the light stage pays the
    /// discriminator per image when the policy runs the cascade.
    fn stage_latency(&self, tier: ModelTier, batch: usize) -> f64 {
        match tier {
            ModelTier::Light => {
                let base = self.light.exec_latency(batch).as_secs_f64();
                if self.settings.policy.uses_cascade() {
                    base + self.discriminator_latency * batch as f64
                } else {
                    base
                }
            }
            ModelTier::Heavy => self.heavy.exec_latency(batch).as_secs_f64(),
        }
    }

    /// Builds the tick's solver inputs and runs the planner over them in
    /// one step: the inputs borrow the profile state while the planner
    /// mutates its own (warm-start) state, which the borrow checker only
    /// admits when both happen against disjoint fields in a single method.
    #[allow(clippy::too_many_arguments)]
    fn plan_allocation(
        &mut self,
        demand: f64,
        queue_delay_light: f64,
        queue_delay_heavy: f64,
        slo: f64,
        thresholds: &[f64],
        batch_sizes: &[usize],
        total_workers: usize,
    ) -> ControlDirective {
        let inputs = AllocatorInputs {
            demand_qps: demand,
            queue_delay_light,
            queue_delay_heavy,
            slo,
            total_workers,
            deferral: self.profile.online_profile().unwrap_or(&self.offline),
            light: self.light,
            heavy: self.heavy,
            resume_heavy: self.resume_heavy,
            discriminator_latency: if self.settings.policy.uses_cascade() {
                self.discriminator_latency
            } else {
                0.0
            },
            batch_sizes,
            thresholds,
        };
        self.planner.plan(&inputs)
    }

    /// Feeds boundary-`k ≥ 1` confidence streams to their online
    /// estimators (boundary 0 rides [`ControlLoop::track_profile`]).
    fn track_ladder(&mut self, obs: &ControlObservation) {
        let alpha = self.config.ewma_alpha;
        if let Some(ladder) = &mut self.ladder {
            for (est, stream) in ladder.online.iter_mut().zip(&obs.deep_confidences) {
                est.observe_all(stream);
                est.refresh();
            }
            // Smooth the observed direct-admission split so the planner's
            // per-tier demand model sees where traffic actually enters the
            // ladder (EWMA, same horizon as the demand estimate).
            let total: u64 = obs.tier_direct_arrivals.iter().sum();
            if total > 0 {
                let n = obs.tier_direct_arrivals.len();
                if ladder.direct_frac.len() != n {
                    ladder.direct_frac = vec![0.0; n];
                    ladder.direct_frac[0] = 1.0;
                }
                for (f, &c) in ladder.direct_frac.iter_mut().zip(&obs.tier_direct_arrivals) {
                    *f += alpha * (c as f64 / total as f64 - *f);
                }
            }
        }
    }

    /// Per-tier queuing-delay estimates for the ladder planner, mirroring
    /// the two-tier Little's-law / twice-execution split: the entry tier
    /// drains at the demand rate, deeper tiers at the escalation rate.
    fn ladder_queue_delays(
        &self,
        obs: &ControlObservation,
        entry_rate: f64,
        deep_rate: f64,
    ) -> Vec<f64> {
        let Some(ladder) = &self.ladder else {
            return Vec::new();
        };
        (0..ladder.tiers.len())
            .map(|k| {
                let queued = obs.tier_queues.get(k).copied().unwrap_or(0);
                match self.settings.knobs.queue_model {
                    QueueModel::LittlesLaw => {
                        queued as f64 / if k == 0 { entry_rate } else { deep_rate }
                    }
                    QueueModel::TwiceExecution => {
                        let b = if k == 0 {
                            obs.current_light_batch
                        } else {
                            obs.current_heavy_batch
                        }
                        .max(1);
                        let base = ladder.tiers[k].exec_latency(b).as_secs_f64();
                        let disc = ladder.disc_latencies.get(k).copied().unwrap_or(0.0);
                        2.0 * (base + disc * b as f64)
                    }
                }
            })
            .collect()
    }

    /// Ladder counterpart of [`ControlLoop::plan_allocation`]: assembles
    /// per-boundary effective profiles (online where warmed up, offline
    /// otherwise), runs the coordinate-maximization solver through the
    /// carried warm state, and falls back to the overload ladder when
    /// infeasible.
    #[allow(clippy::too_many_arguments)]
    fn plan_ladder(
        &mut self,
        demand: f64,
        queue_delays: &[f64],
        slo: f64,
        thresholds: &[f64],
        batch_sizes: &[usize],
        total_workers: usize,
    ) -> ControlDirective {
        let boundary0 = self.profile.online_profile().unwrap_or(&self.offline);
        let ladder = self
            .ladder
            .as_mut()
            .expect("plan_ladder requires an attached ladder");
        let LadderControl {
            tiers,
            disc_latencies,
            offline,
            online,
            warm,
            direct_frac,
        } = ladder;
        let deferrals: Vec<&DeferralProfile> = offline
            .iter()
            .enumerate()
            .map(|(k, off)| {
                if k == 0 {
                    boundary0
                } else {
                    online.get(k - 1).and_then(|e| e.profile()).unwrap_or(off)
                }
            })
            .collect();
        let n = tiers.len();
        let queue_delays = if queue_delays.len() == n {
            queue_delays.to_vec()
        } else {
            vec![0.0; n]
        };
        let inputs = LadderInputs {
            demand_qps: demand,
            queue_delays,
            slo,
            total_workers,
            deferrals,
            tiers: tiers.clone(),
            discriminator_latency: disc_latencies.clone(),
            batch_sizes,
            thresholds,
            max_raise_per_solve: self
                .config
                .ladder
                .as_ref()
                .map_or(LadderConfig::default().max_threshold_raise_per_tick, |l| {
                    l.max_threshold_raise_per_tick
                }),
            direct_fractions: direct_frac.clone(),
        };
        let milp = matches!(self.settings.backend, AllocatorBackend::Milp);
        let solved = solve_ladder(&inputs, milp, warm);
        ControlDirective::ApplyLadder(solved.unwrap_or_else(|| ladder_overload_fallback(&inputs)))
    }
}

impl SessionSpec<'_> {
    /// Assembles the control plane for this session — the one construction
    /// point both backends share, so the pipeline configuration cannot
    /// drift between them.
    pub fn control_loop(&self) -> ControlLoop {
        let mut cl = ControlLoop::new(
            self.config.clone(),
            self.settings.clone(),
            self.runtime.deferral.clone(),
            *self.runtime.spec.light.latency(),
            *self.runtime.spec.heavy.latency(),
            self.runtime.discriminator.latency().as_secs_f64(),
        );
        // A two-tier ladder stays on the legacy planner (bit-identical by
        // construction); deeper ladders attach the N-tier planning state.
        if let Some(art) = &self.runtime.ladder {
            if art.num_tiers() > 2 {
                cl.attach_ladder(
                    art.models.iter().map(|m| *m.latency()).collect(),
                    art.discriminators
                        .iter()
                        .map(|d| d.latency().as_secs_f64())
                        .collect(),
                    art.deferrals.clone(),
                );
            }
        }
        cl
    }
}

/// Clipper's additive-increase / multiplicative-decrease batch rule.
fn aimd_step(current: usize, violated: bool, max_b: usize) -> usize {
    if violated {
        (current / 2).max(1)
    } else {
        (current + 1).min(max_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AblationKnobs;

    fn uniform_profile() -> DeferralProfile {
        DeferralProfile::from_confidences((0..1000).map(|i| i as f64 / 1000.0).collect())
            .expect("non-empty")
    }

    fn test_loop(policy: Policy, config: SystemConfig) -> ControlLoop {
        ControlLoop::new(
            config,
            RunSettings::new(policy, 8.0),
            uniform_profile(),
            LatencyProfile::new(0.10, 0.55),
            LatencyProfile::new(1.78, 0.12),
            0.01,
        )
    }

    fn obs(arrivals: u64) -> ControlObservation {
        ControlObservation {
            now: SimTime::from_secs(2),
            arrivals,
            heavy_arrivals: arrivals / 4,
            alive_workers: 8,
            current_light_batch: 1,
            current_heavy_batch: 1,
            ..Default::default()
        }
    }

    fn small_config() -> SystemConfig {
        SystemConfig {
            num_workers: 8,
            ..Default::default()
        }
    }

    #[test]
    fn static_policies_hold_after_bootstrap() {
        for policy in [
            Policy::ClipperLight,
            Policy::ClipperHeavy,
            Policy::DiffServeStatic,
        ] {
            let mut cl = test_loop(policy, small_config());
            let boot = cl.bootstrap(8.0);
            assert_ne!(boot, ControlDirective::Hold, "{policy:?} must bootstrap");
            assert_eq!(
                cl.step(&obs(10)),
                ControlDirective::Hold,
                "{policy:?} must never re-plan"
            );
        }
    }

    #[test]
    fn clipper_bootstrap_dedicates_the_fleet() {
        let mut cl = test_loop(Policy::ClipperLight, small_config());
        match cl.bootstrap(8.0) {
            ControlDirective::Apply(a) => {
                assert_eq!(a.light_workers, 8);
                assert_eq!(a.heavy_workers, 0);
                assert!(a.light_batch >= 1);
            }
            d => panic!("unexpected directive {d:?}"),
        }
        let mut cl = test_loop(Policy::ClipperHeavy, small_config());
        match cl.bootstrap(8.0) {
            ControlDirective::Apply(a) => {
                assert_eq!((a.light_workers, a.heavy_workers), (0, 8));
            }
            d => panic!("unexpected directive {d:?}"),
        }
    }

    #[test]
    fn diffserve_step_replans_and_threshold_falls_with_demand() {
        let mut low = test_loop(Policy::DiffServe, small_config());
        low.bootstrap(8.0);
        let mut high = test_loop(Policy::DiffServe, small_config());
        high.bootstrap(8.0);
        let t_of = |d: ControlDirective| match d {
            ControlDirective::Apply(a) => a.threshold,
            d => panic!("unexpected directive {d:?}"),
        };
        let t_low = t_of(low.step(&obs(4)));
        let t_high = t_of(high.step(&obs(40)));
        assert!(
            t_low >= t_high,
            "threshold must not rise with demand: {t_low} vs {t_high}"
        );
    }

    #[test]
    fn proteus_planner_falls_back_under_overload() {
        let profile = uniform_profile();
        let thresholds = [0.0, 0.5, 0.9];
        let batches = [1usize, 2, 4];
        let inputs = AllocatorInputs {
            demand_qps: 10_000.0,
            queue_delay_light: 0.0,
            queue_delay_heavy: 0.0,
            slo: 5.0,
            total_workers: 4,
            deferral: &profile,
            light: LatencyProfile::new(0.10, 0.55),
            heavy: LatencyProfile::new(1.78, 0.12),
            resume_heavy: None,
            discriminator_latency: 0.0,
            batch_sizes: &batches,
            thresholds: &thresholds,
        };
        match ProteusPlanner.plan(&inputs) {
            ControlDirective::ApplyProteus {
                allocation,
                heavy_fraction,
            } => {
                assert_eq!(heavy_fraction, 0.0);
                assert!(!allocation.feasible);
            }
            d => panic!("unexpected directive {d:?}"),
        }
    }

    #[test]
    fn cascade_planner_falls_back_under_overload() {
        let profile = uniform_profile();
        let thresholds = [0.0, 0.5, 0.9];
        let batches = [1usize, 2, 4];
        let inputs = AllocatorInputs {
            demand_qps: 10_000.0,
            queue_delay_light: 0.0,
            queue_delay_heavy: 0.0,
            slo: 5.0,
            total_workers: 4,
            deferral: &profile,
            light: LatencyProfile::new(0.10, 0.55),
            heavy: LatencyProfile::new(1.78, 0.12),
            resume_heavy: None,
            discriminator_latency: 0.01,
            batch_sizes: &batches,
            thresholds: &thresholds,
        };
        for backend in [AllocatorBackend::Exhaustive, AllocatorBackend::Milp] {
            match CascadePlanner::new(backend).plan(&inputs) {
                ControlDirective::Apply(a) => {
                    assert!(!a.feasible, "{backend:?} must fall back");
                    assert_eq!(a.threshold, 0.0);
                }
                d => panic!("unexpected directive {d:?}"),
            }
        }
    }

    #[test]
    fn online_estimator_tracks_a_difficulty_shift() {
        let config = SystemConfig {
            num_workers: 8,
            online_profile_refresh: true,
            online_profile_window: 200,
            online_profile_min_samples: 50,
            ..Default::default()
        };
        let mut cl = test_loop(Policy::DiffServe, config);
        cl.bootstrap(8.0);
        assert!(!cl.online_active());
        assert_eq!(cl.deferral_gap(), 0.0);

        // Stationary phase: confidences match the (uniform) offline curve.
        let uniform: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let mut o = obs(100);
        o.confidences = uniform.clone();
        cl.step(&o);
        cl.step(&o);
        assert!(cl.online_active());
        let stationary_gap = cl.deferral_gap();
        assert!(
            stationary_gap < 0.05,
            "stationary stream must agree with offline: {stationary_gap}"
        );
        let stationary_err = cl.deferral_error_series().last().unwrap().1;

        // The prompt mix hardens: confidences collapse toward zero.
        let hard: Vec<f64> = (0..100).map(|i| i as f64 / 400.0).collect();
        let mut o = obs(100);
        o.confidences = hard.clone();
        let first_err = {
            cl.step(&o);
            cl.deferral_error_series().last().unwrap().1
        };
        assert!(
            first_err > stationary_err + 0.1,
            "shift must register as estimation error: {first_err} vs {stationary_err}"
        );
        // After the window turns over, the estimate has caught up: the
        // one-step-ahead error shrinks and the estimated-vs-offline gap is
        // now large (the estimate left the stale offline curve behind).
        cl.step(&o);
        cl.step(&o);
        let settled_err = cl.deferral_error_series().last().unwrap().1;
        assert!(
            settled_err < first_err / 2.0,
            "online estimate must converge after the shift: {settled_err} vs {first_err}"
        );
        assert!(cl.deferral_gap() > 0.2, "gap {}", cl.deferral_gap());
    }

    #[test]
    fn offline_mode_keeps_reporting_estimation_error() {
        // Without online refresh the error series still records how far the
        // offline curve drifts from reality — the telemetry the
        // difficulty-shift regression test compares across modes.
        let mut cl = test_loop(Policy::DiffServe, small_config());
        cl.bootstrap(8.0);
        let hard: Vec<f64> = (0..100).map(|i| i as f64 / 400.0).collect();
        let mut o = obs(100);
        o.confidences = hard;
        cl.step(&o);
        cl.step(&o);
        assert!(!cl.online_active());
        let errs = cl.deferral_error_series();
        assert_eq!(errs.len(), 2);
        assert!(
            errs[1].1 > 0.2 && (errs[1].1 - errs[0].1).abs() < 1e-9,
            "offline error must stay high and flat: {errs:?}"
        );
        assert_eq!(cl.take_deferral_error_series().len(), 2);
        assert!(cl.deferral_error_series().is_empty());
    }

    #[test]
    fn degraded_capacity_lowers_the_threshold_unless_nameplate() {
        let t_of = |d: ControlDirective| match d {
            ControlDirective::Apply(a) => a.threshold,
            d => panic!("unexpected directive {d:?}"),
        };
        let observe = |effective: f64, knobs: AblationKnobs| {
            let mut cl = ControlLoop::new(
                small_config(),
                RunSettings {
                    knobs,
                    ..RunSettings::new(Policy::DiffServe, 8.0)
                },
                uniform_profile(),
                LatencyProfile::new(0.10, 0.55),
                LatencyProfile::new(1.78, 0.12),
                0.01,
            );
            cl.bootstrap(8.0);
            let mut o = obs(30);
            o.effective_capacity = effective;
            t_of(cl.step(&o))
        };
        let healthy = observe(8.0, AblationKnobs::default());
        let degraded = observe(4.5, AblationKnobs::default());
        assert!(
            degraded < healthy,
            "a brownout must lower the threshold: {degraded} vs {healthy}"
        );
        // The nameplate ablation is blind to the same signal...
        let blind = observe(4.5, AblationKnobs::nameplate());
        assert_eq!(blind, healthy);
        // ...and an unreported capacity (0.0) falls back to nameplate.
        assert_eq!(observe(0.0, AblationKnobs::default()), healthy);
    }

    #[test]
    fn tiny_windows_record_no_error_points() {
        let mut cl = test_loop(Policy::DiffServe, small_config());
        cl.bootstrap(8.0);
        let mut o = obs(4);
        o.confidences = vec![0.5; MIN_ERROR_SAMPLES - 1];
        cl.step(&o);
        assert!(cl.deferral_error_series().is_empty());
    }
}
