//! System configuration.

use diffserve_simkit::time::SimDuration;

use crate::addons::AddonsConfig;

/// Cluster and controller configuration for a serving run.
///
/// Defaults follow the paper's testbed: 16 workers, 5 s SLO (Cascade 1),
/// over-provisioning factor λ = 1.05, periodic control loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Total number of GPU workers `S`.
    pub num_workers: usize,
    /// Latency SLO.
    pub slo: SimDuration,
    /// How often the controller re-solves the allocation.
    pub control_interval: SimDuration,
    /// Batch sizes the allocator may choose from.
    pub batch_sizes: Vec<usize>,
    /// Number of points in the confidence-threshold grid.
    pub threshold_grid_steps: usize,
    /// Upper cap on the confidence threshold. Calibrated confidences are
    /// uniform on the lightweight-output distribution, so a cap of `c`
    /// always keeps the top `1 − c` most-real-looking lightweight outputs —
    /// excluding the degenerate all-heavy routing whose FID is *worse* than
    /// a high-threshold blend (paper §2.2: FID rises again as every query
    /// goes heavy).
    pub max_threshold: f64,
    /// Over-provisioning factor λ applied to the demand estimate (§3.3).
    pub over_provision: f64,
    /// EWMA smoothing factor for demand estimation.
    pub ewma_alpha: f64,
    /// Latency to swap the model hosted by a worker (weights load).
    pub model_switch_delay: SimDuration,
    /// Whether workers preemptively drop queries predicted to miss their
    /// deadline (counted as SLO violations, §4.1).
    pub drop_predicted_misses: bool,
    /// Window for time-series metrics (FID over time, violations over time).
    pub metrics_window: SimDuration,
    /// Base RNG seed for the run.
    pub seed: u64,
    /// Whether the controller refreshes the deferral profile `f(t)` online
    /// from the discriminator confidences it observes (paper §4.2). Off by
    /// default: the allocator then solves against the offline profile only,
    /// which goes stale when the prompt-difficulty mix drifts.
    pub online_profile_refresh: bool,
    /// Sliding-window capacity of the online profile estimator: how many of
    /// the most recent confidence observations back the estimate. Smaller
    /// windows track drift faster but are noisier.
    pub online_profile_window: usize,
    /// Observations required before the online estimate overrides the
    /// offline profile (the cold-start guard).
    pub online_profile_min_samples: usize,
    /// Whether escalated queries *resume* heavy-tier denoising from the
    /// light tier's intermediate latents instead of restarting generation
    /// from scratch (stage-level micro-serving). Off by default: restart
    /// mode reproduces the paper's cascade exactly, so every existing
    /// golden fingerprint holds.
    pub resume_from_latents: bool,
    /// How much of the light tier's completed denoising transfers across
    /// the tier boundary, in `[0, 1]`. The tiers' latent spaces differ, so
    /// a resumed query re-does `1 − credit` of the denoise schedule; the
    /// reused heavy steps are `round(heavy_steps · credit · progress)`,
    /// capped so at least one heavy step always remains. Only consulted
    /// when [`resume_from_latents`](Self::resume_from_latents) is set.
    pub resume_step_credit: f64,
    /// Quality penalty applied to resumed heavy generations, in `[0, 1]`:
    /// resuming from a foreign latent may cost fidelity. The default of
    /// `0.0` models a lossless hand-off (resumed output is bit-identical
    /// to a restarted one).
    pub resume_quality_penalty: f64,
    /// Add-on-aware serving: the module catalog, per-worker cache budget,
    /// and seeded per-query requirement mix. `None` (the default) disables
    /// the subsystem bit-identically — no query carries an add-on, no
    /// module cache exists, and routing is unchanged.
    pub addons: Option<AddonsConfig>,
    /// N-tier quality-ladder knobs (initial thresholds, predictive
    /// straight-to-tier routing). Only consulted when the runtime was
    /// prepared with [`crate::CascadeRuntime::prepare_ladder`]; `None`
    /// (the default) keeps ladder runs at the conservative defaults and
    /// leaves non-ladder runs bit-identical.
    pub ladder: Option<LadderConfig>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            num_workers: 16,
            slo: SimDuration::from_secs(5),
            control_interval: SimDuration::from_secs(2),
            batch_sizes: vec![1, 2, 4, 8, 16],
            threshold_grid_steps: 51,
            max_threshold: 0.9,
            over_provision: 1.05,
            ewma_alpha: 0.6,
            model_switch_delay: SimDuration::from_secs(1),
            drop_predicted_misses: true,
            metrics_window: SimDuration::from_secs(20),
            seed: 0xD1FF,
            online_profile_refresh: false,
            online_profile_window: 512,
            online_profile_min_samples: 64,
            resume_from_latents: false,
            resume_step_credit: 0.5,
            resume_quality_penalty: 0.0,
            addons: None,
            ladder: None,
        }
    }
}

/// Quality-ladder serving knobs (see `diffserve_imagegen::TierLadder`).
///
/// The ladder itself — which model tiers, their discriminators and deferral
/// profiles — lives in the prepared runtime; this config carries only the
/// runtime-tunable policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderConfig {
    /// Enable the online pre-execution router: queries predicted to
    /// escalate through a boundary skip that boundary's cheap tier and
    /// enter the ladder deeper. Trained online from every discriminator
    /// verdict; while a boundary is cold every query still enters at
    /// tier 0.
    pub predictive_routing: bool,
    /// Predicted escalation probability at or above which a tier is
    /// skipped.
    pub predictive_margin: f64,
    /// SGD learning rate of the per-boundary online router.
    pub predictive_learning_rate: f64,
    /// Discriminator verdicts a boundary must observe before its
    /// predictions are trusted.
    pub predictive_min_observations: u64,
    /// Std of the observation noise on the router's text embeddings.
    pub predictive_observation_noise: f64,
    /// Per-boundary thresholds used before the first control tick;
    /// `None` starts every boundary at the legacy bootstrap value of 0.5.
    pub initial_thresholds: Option<Vec<f64>>,
    /// Cap on how many threshold-grid levels any boundary may *rise* per
    /// control tick (`None` = unlimited). Falling is always immediate —
    /// load shedding cannot wait — but climbing back toward higher quality
    /// is rate-limited so demand-estimate noise does not flap workers
    /// between adjacent tiers every tick, burning capacity on model-switch
    /// delays.
    pub max_threshold_raise_per_tick: Option<usize>,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            predictive_routing: true,
            predictive_margin: 0.6,
            predictive_learning_rate: 0.05,
            predictive_min_observations: 64,
            predictive_observation_noise: 0.35,
            initial_thresholds: None,
            max_threshold_raise_per_tick: Some(2),
        }
    }
}

impl LadderConfig {
    /// Validates the ladder knobs.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.predictive_margin.is_finite() || !(0.0..=1.0).contains(&self.predictive_margin) {
            return Err(ConfigError::new("predictive margin must lie in [0, 1]"));
        }
        if !self.predictive_learning_rate.is_finite() || self.predictive_learning_rate <= 0.0 {
            return Err(ConfigError::new("predictive learning rate must be > 0"));
        }
        if !self.predictive_observation_noise.is_finite() || self.predictive_observation_noise < 0.0
        {
            return Err(ConfigError::new(
                "predictive observation noise must be >= 0",
            ));
        }
        if self.max_threshold_raise_per_tick == Some(0) {
            return Err(ConfigError::new(
                "threshold raise cap must be >= 1 level per tick (None = unlimited)",
            ));
        }
        if let Some(ts) = &self.initial_thresholds {
            if ts.is_empty() {
                return Err(ConfigError::new(
                    "initial ladder thresholds must be non-empty when given",
                ));
            }
            if ts
                .iter()
                .any(|t| !t.is_finite() || !(0.0..=1.0).contains(t))
            {
                return Err(ConfigError::new(
                    "initial ladder thresholds must lie in [0, 1]",
                ));
            }
        }
        Ok(())
    }
}

impl SystemConfig {
    /// Validates invariants the simulator relies on.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_workers < 2 {
            return Err(ConfigError::new("need at least 2 workers (one per tier)"));
        }
        if self.batch_sizes.is_empty() || self.batch_sizes.contains(&0) {
            return Err(ConfigError::new(
                "batch sizes must be non-empty and positive",
            ));
        }
        if self.threshold_grid_steps < 2 {
            return Err(ConfigError::new("threshold grid needs at least 2 steps"));
        }
        if !(0.0..=1.0).contains(&self.max_threshold) {
            return Err(ConfigError::new("max threshold must lie in [0, 1]"));
        }
        if self.over_provision < 1.0 {
            return Err(ConfigError::new("over-provisioning factor must be >= 1"));
        }
        if !(0.0 < self.ewma_alpha && self.ewma_alpha <= 1.0) {
            return Err(ConfigError::new("EWMA alpha must lie in (0, 1]"));
        }
        if self.control_interval.is_zero() || self.metrics_window.is_zero() {
            return Err(ConfigError::new(
                "control interval and metrics window must be positive",
            ));
        }
        if self.online_profile_window == 0 {
            return Err(ConfigError::new("online profile window must be positive"));
        }
        if self.online_profile_min_samples < 2
            || self.online_profile_min_samples > self.online_profile_window
        {
            return Err(ConfigError::new(
                "online profile min samples must lie in [2, window]",
            ));
        }
        if !self.resume_step_credit.is_finite() || !(0.0..=1.0).contains(&self.resume_step_credit) {
            return Err(ConfigError::new("resume step credit must lie in [0, 1]"));
        }
        if !self.resume_quality_penalty.is_finite()
            || !(0.0..=1.0).contains(&self.resume_quality_penalty)
        {
            return Err(ConfigError::new(
                "resume quality penalty must lie in [0, 1]",
            ));
        }
        if let Some(addons) = &self.addons {
            addons.validate()?;
        }
        if let Some(ladder) = &self.ladder {
            ladder.validate()?;
        }
        Ok(())
    }

    /// The candidate threshold grid `[0, max_threshold]`.
    pub fn threshold_grid(&self) -> Vec<f64> {
        let n = self.threshold_grid_steps;
        (0..n)
            .map(|i| self.max_threshold * i as f64 / (n - 1) as f64)
            .collect()
    }
}

/// An invalid [`SystemConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    /// Creates a configuration error with a static description. Public so
    /// out-of-crate backends (the cluster testbed) can surface their own
    /// configuration failures through the session builder's
    /// [`BuildError`](crate::serve::BuildError) path.
    pub fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid system config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SystemConfig::default().validate().is_ok());
    }

    #[test]
    fn ladder_default_config_is_valid() {
        let cfg = SystemConfig {
            ladder: Some(LadderConfig::default()),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn addons_demo_config_is_valid() {
        let cfg = SystemConfig {
            addons: Some(crate::addons::AddonsConfig::demo(0xD1FF)),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn rejects_bad_configs() {
        let base = SystemConfig::default();
        let cases: Vec<(&str, SystemConfig)> = vec![
            (
                "workers",
                SystemConfig {
                    num_workers: 1,
                    ..base.clone()
                },
            ),
            (
                "batches",
                SystemConfig {
                    batch_sizes: vec![],
                    ..base.clone()
                },
            ),
            (
                "zero batch",
                SystemConfig {
                    batch_sizes: vec![0],
                    ..base.clone()
                },
            ),
            (
                "grid",
                SystemConfig {
                    threshold_grid_steps: 1,
                    ..base.clone()
                },
            ),
            (
                "cap",
                SystemConfig {
                    max_threshold: 1.5,
                    ..base.clone()
                },
            ),
            (
                "lambda",
                SystemConfig {
                    over_provision: 0.5,
                    ..base.clone()
                },
            ),
            (
                "alpha",
                SystemConfig {
                    ewma_alpha: 0.0,
                    ..base.clone()
                },
            ),
            (
                "online window",
                SystemConfig {
                    online_profile_window: 0,
                    ..base.clone()
                },
            ),
            (
                "online min samples",
                SystemConfig {
                    online_profile_min_samples: 1,
                    ..base.clone()
                },
            ),
            (
                "online min above window",
                SystemConfig {
                    online_profile_window: 16,
                    online_profile_min_samples: 17,
                    ..base.clone()
                },
            ),
            (
                "resume credit above 1",
                SystemConfig {
                    resume_step_credit: 1.5,
                    ..base.clone()
                },
            ),
            (
                "resume credit NaN",
                SystemConfig {
                    resume_step_credit: f64::NAN,
                    ..base.clone()
                },
            ),
            (
                "resume penalty negative",
                SystemConfig {
                    resume_quality_penalty: -0.1,
                    ..base.clone()
                },
            ),
            (
                "empty add-on catalog",
                SystemConfig {
                    addons: Some(crate::addons::AddonsConfig {
                        catalog: crate::addons::AddonCatalog::new(vec![]),
                        ..crate::addons::AddonsConfig::demo(1)
                    }),
                    ..base.clone()
                },
            ),
            (
                "zero add-on cache budget",
                SystemConfig {
                    addons: Some(crate::addons::AddonsConfig {
                        cache_mem_mb: 0.0,
                        ..crate::addons::AddonsConfig::demo(1)
                    }),
                    ..base.clone()
                },
            ),
            (
                "add-on adoption above 1",
                SystemConfig {
                    addons: Some({
                        let mut a = crate::addons::AddonsConfig::demo(1);
                        a.mix.adoption = 1.5;
                        a
                    }),
                    ..base.clone()
                },
            ),
            (
                "add-on mix/catalog mismatch",
                SystemConfig {
                    addons: Some({
                        let mut a = crate::addons::AddonsConfig::demo(1);
                        a.mix.num_modules = 3;
                        a
                    }),
                    ..base.clone()
                },
            ),
            (
                "ladder margin out of range",
                SystemConfig {
                    ladder: Some(LadderConfig {
                        predictive_margin: 1.5,
                        ..Default::default()
                    }),
                    ..base.clone()
                },
            ),
            (
                "ladder learning rate zero",
                SystemConfig {
                    ladder: Some(LadderConfig {
                        predictive_learning_rate: 0.0,
                        ..Default::default()
                    }),
                    ..base.clone()
                },
            ),
            (
                "ladder initial threshold out of range",
                SystemConfig {
                    ladder: Some(LadderConfig {
                        initial_thresholds: Some(vec![0.5, 1.2]),
                        ..Default::default()
                    }),
                    ..base.clone()
                },
            ),
        ];
        for (what, cfg) in cases {
            assert!(cfg.validate().is_err(), "{what} should be rejected");
        }
    }

    #[test]
    fn threshold_grid_spans_cap() {
        let cfg = SystemConfig {
            threshold_grid_steps: 10,
            max_threshold: 0.9,
            ..Default::default()
        };
        let g = cfg.threshold_grid();
        assert_eq!(g.len(), 10);
        assert_eq!(g[0], 0.0);
        assert!((g[9] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let err = SystemConfig {
            num_workers: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(format!("{err}").contains("workers"));
    }
}
