//! Add-on-aware serving: the module catalog, per-worker bounded LRU module
//! caches, and the hit/swap accounting both engines surface.
//!
//! Production diffusion traffic carries add-on modules — LoRA styles,
//! ControlNet conditioners — whose weights a worker must have loaded before
//! it can serve the query. Loading is not free: a cache miss adds the
//! module's load latency to that batch's service time, and under
//! affinity-blind routing the misses dominate tail latency
//! (SwiftDiffusion). This module provides the serving-side vocabulary:
//!
//! * [`AddonCatalog`] — the fleet-wide module table (name, memory
//!   footprint, load latency), indexed by dense ids that
//!   [`AddonMix`] draws from.
//! * [`ModuleCache`] — one worker's bounded LRU over loaded modules. A hit
//!   refreshes recency and costs nothing; a miss evicts
//!   least-recently-used residents until the module fits and charges its
//!   load latency.
//! * [`AddonStats`] — per-tier hit/miss/swap-seconds counters reported in
//!   [`RunReport`](crate::report::RunReport) and
//!   [`SessionSnapshot`](crate::serve::SessionSnapshot).
//! * [`AddonsConfig`] — the opt-in knob on
//!   [`SystemConfig`](crate::config::SystemConfig). `None` (the default)
//!   disables the subsystem entirely: no query carries an add-on, no cache
//!   exists, and every run is bit-identical to a build without this module.

use std::collections::VecDeque;

use diffserve_trace::AddonMix;

use crate::config::ConfigError;
use crate::query::ModelTier;

/// One add-on module in the catalog: a LoRA style or ControlNet
/// conditioner with a real memory footprint and load cost.
#[derive(Debug, Clone, PartialEq)]
pub struct AddonModule {
    /// Human-readable name (used in bench tables).
    pub name: String,
    /// Weights footprint in MB, counted against a worker's
    /// [`ModuleCache`] budget.
    pub mem_mb: f64,
    /// Seconds to load the module onto a worker — the latency a cache
    /// miss adds to the batch that needs it.
    pub load_secs: f64,
}

/// The fleet-wide table of add-on modules, indexed by dense id.
///
/// Ids are positions: the seeded per-query draw
/// ([`AddonMix`]) returns indices into this
/// catalog, with id 0 the most popular module under the Zipf ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct AddonCatalog {
    modules: Vec<AddonModule>,
}

impl AddonCatalog {
    /// Creates a catalog from its module table.
    pub fn new(modules: Vec<AddonModule>) -> Self {
        AddonCatalog { modules }
    }

    /// A deterministic synthetic catalog of `n` LoRA-style modules with
    /// staggered footprints (256–512 MB) and load latencies (0.3–0.5 s),
    /// the SwiftDiffusion-reported ballpark for LoRA load costs.
    pub fn demo(n: usize) -> Self {
        AddonCatalog {
            modules: (0..n)
                .map(|i| AddonModule {
                    name: format!("lora-{i}"),
                    mem_mb: 256.0 + 64.0 * (i % 5) as f64,
                    load_secs: 0.3 + 0.1 * (i % 3) as f64,
                })
                .collect(),
        }
    }

    /// The module with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (the mix's `num_modules` is
    /// validated to match the catalog length).
    pub fn get(&self, id: usize) -> &AddonModule {
        &self.modules[id]
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// All modules in id order.
    pub fn modules(&self) -> &[AddonModule] {
        &self.modules
    }

    /// Checks every module's parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.modules.is_empty() {
            return Err(ConfigError::new("add-on catalog must not be empty"));
        }
        for m in &self.modules {
            if !m.mem_mb.is_finite() || m.mem_mb <= 0.0 {
                return Err(ConfigError::new(
                    "add-on module memory must be finite and positive",
                ));
            }
            if !m.load_secs.is_finite() || m.load_secs < 0.0 {
                return Err(ConfigError::new(
                    "add-on module load latency must be finite and non-negative",
                ));
            }
        }
        Ok(())
    }
}

/// One worker's bounded LRU cache over loaded add-on modules.
///
/// Recency order is a deque: front = least recently used, back = most
/// recently used. [`ModuleCache::admit`] is the single mutation point — a
/// hit refreshes recency for free, a miss evicts LRU residents until the
/// module fits and returns its load latency. Eviction is fully
/// deterministic: same admit sequence, same final resident set.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleCache {
    budget_mb: f64,
    used_mb: f64,
    resident: VecDeque<usize>,
}

impl ModuleCache {
    /// An empty cache with a `budget_mb` memory budget.
    pub fn new(budget_mb: f64) -> Self {
        ModuleCache {
            budget_mb,
            used_mb: 0.0,
            resident: VecDeque::new(),
        }
    }

    /// Whether module `id` is resident (read-only; does not touch recency).
    pub fn contains(&self, id: usize) -> bool {
        self.resident.contains(&id)
    }

    /// Resident module ids in recency order (LRU first).
    pub fn resident(&self) -> impl Iterator<Item = usize> + '_ {
        self.resident.iter().copied()
    }

    /// Memory currently used, in MB.
    pub fn used_mb(&self) -> f64 {
        self.used_mb
    }

    /// Ensures module `id` is loaded, returning the swap latency charged:
    /// `0.0` on a hit (recency refreshed), the module's `load_secs` on a
    /// miss. On a miss, least-recently-used residents are evicted until
    /// the module fits; a module larger than the whole budget is charged
    /// its load latency every time but never cached.
    pub fn admit(&mut self, id: usize, catalog: &AddonCatalog) -> f64 {
        if let Some(pos) = self.resident.iter().position(|&m| m == id) {
            self.resident.remove(pos);
            self.resident.push_back(id);
            return 0.0;
        }
        let module = catalog.get(id);
        while self.used_mb + module.mem_mb > self.budget_mb {
            match self.resident.pop_front() {
                Some(victim) => self.used_mb -= catalog.get(victim).mem_mb,
                None => break,
            }
        }
        if self.used_mb + module.mem_mb <= self.budget_mb {
            self.resident.push_back(id);
            self.used_mb += module.mem_mb;
        }
        module.load_secs
    }

    /// Drops every resident module — a fail-stopped worker loses its GPU
    /// memory and rejoins cold.
    pub fn clear(&mut self) {
        self.resident.clear();
        self.used_mb = 0.0;
    }
}

/// Per-tier add-on cache accounting, indexed by tier slot (0 = light,
/// 1 = heavy). Both engines record one entry per add-on-carrying query at
/// dispatch time and surface the totals in
/// [`RunReport`](crate::report::RunReport) and
/// [`SessionSnapshot`](crate::serve::SessionSnapshot).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AddonStats {
    /// Cache hits per tier slot.
    pub hits: [u64; 2],
    /// Cache misses per tier slot.
    pub misses: [u64; 2],
    /// Total swap seconds charged per tier slot (each miss contributes
    /// its module's load latency).
    pub swap_secs: [f64; 2],
}

fn tier_slot(tier: ModelTier) -> usize {
    match tier {
        ModelTier::Light => 0,
        ModelTier::Heavy => 1,
    }
}

impl AddonStats {
    /// Records one add-on lookup on `tier`: a hit, or a miss that charged
    /// `swap_secs` of load latency.
    pub fn record(&mut self, tier: ModelTier, hit: bool, swap_secs: f64) {
        let s = tier_slot(tier);
        if hit {
            self.hits[s] += 1;
        } else {
            self.misses[s] += 1;
            self.swap_secs[s] += swap_secs;
        }
    }

    /// Lookups on `tier` (hits + misses).
    pub fn lookups(&self, tier: ModelTier) -> u64 {
        let s = tier_slot(tier);
        self.hits[s] + self.misses[s]
    }

    /// Hit rate on `tier`, or `0.0` with no lookups.
    pub fn hit_rate(&self, tier: ModelTier) -> f64 {
        let n = self.lookups(tier);
        if n == 0 {
            0.0
        } else {
            self.hits[tier_slot(tier)] as f64 / n as f64
        }
    }

    /// Mean swap seconds per add-on lookup on `tier` (hits contribute
    /// zero), or `0.0` with no lookups.
    pub fn mean_swap_secs(&self, tier: ModelTier) -> f64 {
        let n = self.lookups(tier);
        if n == 0 {
            0.0
        } else {
            self.swap_secs[tier_slot(tier)] / n as f64
        }
    }

    /// Total lookups across tiers.
    pub fn total_lookups(&self) -> u64 {
        self.hits.iter().sum::<u64>() + self.misses.iter().sum::<u64>()
    }

    /// Hit rate across tiers, or `0.0` with no lookups.
    pub fn total_hit_rate(&self) -> f64 {
        let n = self.total_lookups();
        if n == 0 {
            0.0
        } else {
            self.hits.iter().sum::<u64>() as f64 / n as f64
        }
    }

    /// Mean swap seconds per add-on lookup across tiers, or `0.0` with no
    /// lookups.
    pub fn total_mean_swap_secs(&self) -> f64 {
        let n = self.total_lookups();
        if n == 0 {
            0.0
        } else {
            self.swap_secs.iter().sum::<f64>() / n as f64
        }
    }

    /// Folds another stats block into this one (the cluster engine merges
    /// per-thread tallies).
    pub fn merge(&mut self, other: &AddonStats) {
        for s in 0..2 {
            self.hits[s] += other.hits[s];
            self.misses[s] += other.misses[s];
            self.swap_secs[s] += other.swap_secs[s];
        }
    }
}

/// The add-on serving configuration: the catalog, the per-worker cache
/// budget, and the seeded traffic mix. Carried as
/// `Option<AddonsConfig>` on [`SystemConfig`](crate::config::SystemConfig);
/// `None` disables the subsystem bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AddonsConfig {
    /// The module table.
    pub catalog: AddonCatalog,
    /// Per-worker module cache budget in MB.
    pub cache_mem_mb: f64,
    /// The per-query requirement draw. Its `num_modules` must equal the
    /// catalog length.
    pub mix: AddonMix,
}

impl AddonsConfig {
    /// A ready-to-run demo configuration: a 12-module catalog, a cache
    /// budget fitting roughly four modules, and a 70%-adoption Zipf mix
    /// seeded from `seed`. The tight budget makes routing policy matter:
    /// no worker can hold the working set, so affinity decides the miss
    /// rate.
    pub fn demo(seed: u64) -> Self {
        let catalog = AddonCatalog::demo(12);
        let mix = AddonMix::new(seed, catalog.len(), 0.7);
        AddonsConfig {
            catalog,
            cache_mem_mb: 1536.0,
            mix,
        }
    }

    /// Checks the catalog, budget, and mix.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.catalog.validate()?;
        if !self.cache_mem_mb.is_finite() || self.cache_mem_mb <= 0.0 {
            return Err(ConfigError::new(
                "add-on cache budget must be finite and positive",
            ));
        }
        self.mix.validate().map_err(ConfigError::new)?;
        if self.mix.num_modules != self.catalog.len() {
            return Err(ConfigError::new(
                "add-on mix must draw over exactly the catalog's modules",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> AddonCatalog {
        AddonCatalog::new(
            (0..4)
                .map(|i| AddonModule {
                    name: format!("m{i}"),
                    mem_mb: 100.0,
                    load_secs: 0.5,
                })
                .collect(),
        )
    }

    #[test]
    fn hit_refreshes_recency_and_costs_nothing() {
        let cat = catalog();
        let mut cache = ModuleCache::new(250.0);
        assert_eq!(cache.admit(0, &cat), 0.5);
        assert_eq!(cache.admit(1, &cat), 0.5);
        // Hit on 0 moves it to MRU...
        assert_eq!(cache.admit(0, &cat), 0.0);
        // ...so admitting 2 evicts 1, not 0.
        assert_eq!(cache.admit(2, &cat), 0.5);
        assert!(cache.contains(0));
        assert!(!cache.contains(1));
        assert!(cache.contains(2));
        assert_eq!(cache.used_mb(), 200.0);
    }

    #[test]
    fn eviction_walks_lru_order() {
        let cat = catalog();
        let mut cache = ModuleCache::new(300.0);
        for id in 0..3 {
            cache.admit(id, &cat);
        }
        // Full: 0,1,2 with 0 the LRU. Admitting 3 evicts 0.
        cache.admit(3, &cat);
        assert_eq!(cache.resident().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn oversized_module_charges_but_never_caches() {
        let cat = AddonCatalog::new(vec![AddonModule {
            name: "xl".into(),
            mem_mb: 1000.0,
            load_secs: 2.0,
        }]);
        let mut cache = ModuleCache::new(500.0);
        assert_eq!(cache.admit(0, &cat), 2.0);
        assert!(!cache.contains(0));
        assert_eq!(cache.used_mb(), 0.0);
        // Charged again: it can never become a hit.
        assert_eq!(cache.admit(0, &cat), 2.0);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cat = catalog();
        let mut cache = ModuleCache::new(400.0);
        cache.admit(0, &cat);
        cache.admit(1, &cat);
        cache.clear();
        assert_eq!(cache.used_mb(), 0.0);
        assert_eq!(cache.resident().count(), 0);
        // Everything misses again after the wipe.
        assert_eq!(cache.admit(0, &cat), 0.5);
    }

    #[test]
    fn stats_accumulate_per_tier() {
        let mut stats = AddonStats::default();
        stats.record(ModelTier::Light, true, 0.0);
        stats.record(ModelTier::Light, false, 0.4);
        stats.record(ModelTier::Heavy, false, 0.3);
        assert_eq!(stats.lookups(ModelTier::Light), 2);
        assert_eq!(stats.lookups(ModelTier::Heavy), 1);
        assert_eq!(stats.hit_rate(ModelTier::Light), 0.5);
        assert_eq!(stats.hit_rate(ModelTier::Heavy), 0.0);
        assert!((stats.mean_swap_secs(ModelTier::Light) - 0.2).abs() < 1e-12);
        assert_eq!(stats.total_lookups(), 3);
        assert!((stats.total_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        let mut merged = AddonStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.total_lookups(), 6);
        assert_eq!(merged.hit_rate(ModelTier::Light), 0.5);
        // Empty stats report zeros, not NaN.
        let empty = AddonStats::default();
        assert_eq!(empty.hit_rate(ModelTier::Light), 0.0);
        assert_eq!(empty.total_mean_swap_secs(), 0.0);
    }

    #[test]
    fn demo_config_is_valid() {
        let cfg = AddonsConfig::demo(7);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.catalog.len(), 12);
        assert_eq!(cfg.mix.num_modules, 12);
        // The budget holds a strict subset of the catalog.
        let total: f64 = cfg.catalog.modules().iter().map(|m| m.mem_mb).sum();
        assert!(cfg.cache_mem_mb < total);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let base = AddonsConfig::demo(1);
        let mut empty = base.clone();
        empty.catalog = AddonCatalog::new(vec![]);
        assert!(empty.validate().is_err());

        let mut bad_mem = base.clone();
        bad_mem.catalog = AddonCatalog::new(vec![AddonModule {
            name: "bad".into(),
            mem_mb: -1.0,
            load_secs: 0.1,
        }]);
        assert!(bad_mem.validate().is_err());

        let mut bad_budget = base.clone();
        bad_budget.cache_mem_mb = 0.0;
        assert!(bad_budget.validate().is_err());

        let mut bad_adoption = base.clone();
        bad_adoption.mix.adoption = 1.5;
        assert!(bad_adoption.validate().is_err());

        let mut mismatched = base.clone();
        mismatched.mix.num_modules = 3;
        assert!(mismatched.validate().is_err());

        assert!(base.validate().is_ok());
    }
}
