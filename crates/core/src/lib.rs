//! # diffserve-core
//!
//! The DiffServe serving system (MLSys 2025): query-aware model scaling for
//! text-to-image diffusion serving.
//!
//! The system follows the paper's architecture (Fig. 2): a load balancer
//! routes every query to a worker hosting the lightweight model and the
//! discriminator; outputs whose calibrated confidence clears the threshold
//! return immediately, the rest escalate to heavyweight workers. A
//! controller periodically re-solves a MILP (§3.3) that jointly picks the
//! confidence threshold, per-tier worker counts, and batch sizes to
//! maximize response quality subject to throughput and SLO constraints.
//!
//! Modules:
//!
//! * [`query`] — queries, responses, model tiers.
//! * [`addons`] — add-on-aware serving: the LoRA/ControlNet module
//!   catalog, per-worker bounded LRU module caches, and hit/swap
//!   accounting.
//! * [`config`] — cluster/controller configuration.
//! * [`policy`] — DiffServe and the Table 1 baselines (Clipper-Light/Heavy,
//!   Proteus, DiffServe-Static) plus the Fig. 8 allocator ablations.
//! * [`allocator`] — the resource manager: MILP formulation (via
//!   `diffserve-milp`), an exhaustive grid solver, the Proteus allocator,
//!   and the overload fallback.
//! * [`control`] — the backend-agnostic control plane: demand estimation →
//!   online/offline deferral-profile estimation → allocation planning,
//!   driven each control interval by both execution engines.
//! * [`hetero`] — the §5 heterogeneous-cluster extension (worker classes
//!   with per-class speeds).
//! * [`runtime`] — offline-prepared artifacts (dataset, discriminator,
//!   deferral profile, FID reference).
//! * [`serve`] — the unified serving-session API: the [`ServingBackend`]
//!   trait and the incremental [`ServingSession`] (submit / run / poll /
//!   observe) behind which both the simulator and the cluster testbed sit.
//! * [`sim`] — the end-to-end discrete-event serving simulator.
//! * [`report`] — run reports consumed by the experiment harness.
//!
//! # Examples
//!
//! ```no_run
//! use diffserve_core::prelude::*;
//! use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
//! use diffserve_trace::Trace;
//! use diffserve_simkit::time::SimDuration;
//!
//! let runtime = CascadeRuntime::prepare(
//!     cascade1(FeatureSpec::default()),
//!     2000,
//!     42,
//!     DiscriminatorConfig::default(),
//! );
//! let config = SystemConfig::default();
//! let trace = Trace::constant(8.0, SimDuration::from_secs(120))?;
//! let report = run_trace(
//!     &runtime,
//!     &config,
//!     &RunSettings::new(Policy::DiffServe, 8.0),
//!     &trace,
//! );
//! println!("{}", report.summary());
//! # Ok::<(), diffserve_trace::TraceError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addons;
pub mod allocator;
pub mod config;
pub mod control;
pub mod hetero;
pub mod policy;
pub mod query;
pub mod report;
pub mod runtime;
pub mod serve;
pub mod sim;

pub use addons::{AddonCatalog, AddonModule, AddonStats, AddonsConfig, ModuleCache};
pub use allocator::{
    ladder_overload_fallback, overload_fallback, solve_exhaustive, solve_ladder,
    solve_milp_allocation, solve_milp_allocation_warm, solve_proteus, AllocWarmState, Allocation,
    AllocatorInputs, LadderAllocation, LadderInputs, LadderWarmState,
};
pub use config::{ConfigError, LadderConfig, SystemConfig};
pub use control::{
    AllocPlanner, CascadePlanner, ControlDirective, ControlLoop, ControlObservation, PlanActuator,
    ProfileEstimator, ProteusPlanner,
};
pub use diffserve_milp::WarmStart;
pub use hetero::{solve_heterogeneous, HeteroAllocation, HeteroInputs, WorkerClass};
pub use policy::{AblationKnobs, BatchPolicy, Policy, QueueModel};
pub use query::{CompletedResponse, ModelTier, Query, QueryId, WorkerHealth};
pub use report::{RunReport, TierStats};
pub use runtime::{CascadeRuntime, LadderArtifacts};
pub use serve::{
    Backend, BuildError, QueryOutcome, QuerySpec, QueryTicket, ServingBackend, ServingSession,
    SessionBuilder, SessionSnapshot, SessionSpec,
};
pub use sim::{run_scenario, run_trace, AllocatorBackend, RunSettings, SimBackend};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::addons::{AddonCatalog, AddonModule, AddonStats, AddonsConfig, ModuleCache};
    pub use crate::allocator::{Allocation, AllocatorInputs};
    pub use crate::config::{ConfigError, LadderConfig, SystemConfig};
    pub use crate::control::{
        AllocPlanner, ControlDirective, ControlLoop, ControlObservation, PlanActuator,
    };
    pub use crate::policy::{AblationKnobs, BatchPolicy, Policy, QueueModel};
    pub use crate::query::{CompletedResponse, ModelTier, Query, QueryId, WorkerHealth};
    pub use crate::report::RunReport;
    pub use crate::runtime::{CascadeRuntime, LadderArtifacts};
    pub use crate::serve::{
        Backend, BuildError, QueryOutcome, QuerySpec, QueryTicket, ServingBackend, ServingSession,
        SessionBuilder, SessionSnapshot, SessionSpec,
    };
    pub use crate::sim::{run_scenario, run_trace, AllocatorBackend, RunSettings};
}
