//! The end-to-end discrete-event serving simulator.
//!
//! This is the reproduction of the paper's primary evaluation vehicle: an
//! event-driven simulator of the DiffServe architecture (Fig. 2) — load
//! balancer, per-worker queues with batching, the light→heavy cascade with
//! discriminator gating, and the periodic controller that re-solves the
//! resource allocation. All five policies of Table 1 and the Fig. 8
//! ablations run through this one simulator.
//!
//! The simulator is one of the two engines behind the unified
//! [`ServingSession`] API (the other is the
//! thread-based testbed in `diffserve-cluster`): [`SimBackend`] implements
//! [`ServingBackend`] over the event loop, so
//! applications can submit queries incrementally, tap live metrics, and
//! inject perturbations mid-run. The two batch entry points — [`run_trace`]
//! replaying a plain demand trace, [`run_scenario`] additionally injecting
//! a [`Scenario`]'s perturbations (fail-stop worker churn with in-flight
//! work retried elsewhere, partial degradation that stretches a worker's
//! service times via [`WorkerHealth`], seeded load-correlated hazards
//! evaluated against instantaneous utilization, flash crowds and demand
//! shocks baked into the arrival stream, and prompt-difficulty shifts that
//! raise the cascade's deferral rate at constant QPS) — are thin wrappers
//! over a session. Every perturbation that actually fires is recorded in
//! the report's incident log, and replaying the log reproduces the run
//! bit-exactly.

use std::collections::{BTreeSet, VecDeque};

use diffserve_imagegen::{
    resume_savings, reused_steps, DiffusionModel, Discriminator, GeneratedImage,
    OnlinePredictiveRouter, OnlineRouterConfig, Prompt, StageLatencyBreakdown, StageState,
};
use diffserve_metrics::{RollingFid, SloTracker, WindowedSeries};
use diffserve_simkit::prelude::*;
use diffserve_trace::{
    CapacityEvent, FleetHealth, HazardProcess, Incident, IncidentLog, Scenario, ScenarioError,
    ScenarioEvent, Trace,
};
use rand::Rng;

use crate::addons::{AddonStats, ModuleCache};
use crate::allocator::{Allocation, LadderAllocation};
use crate::config::{ConfigError, SystemConfig};
use crate::control::{ControlDirective, ControlLoop, ControlObservation, PlanActuator};
use crate::policy::{AblationKnobs, Policy};
use crate::query::{CompletedResponse, ModelTier, QueryId, WorkerHealth};
use crate::report::RunReport;
use crate::runtime::CascadeRuntime;
use crate::serve::{
    session_rolling_fid, QueryOutcome, QuerySpec, QueryTicket, ServingBackend, ServingSession,
    SessionSnapshot, SessionSpec,
};

/// Event budget for one simulated run — a backstop against runaway
/// scheduling loops, far above what any real workload processes.
const EVENT_BUDGET: u64 = 50_000_000;

/// Which allocator implementation the controller invokes.
///
/// The two are property-tested to choose the same threshold; `Milp` is the
/// paper's method (Gurobi in the original), `Exhaustive` scans the
/// configuration grid directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorBackend {
    /// Branch & bound MILP via `diffserve-milp`.
    Milp,
    /// Configuration-grid scan.
    Exhaustive,
}

/// Per-run settings beyond the static [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct RunSettings {
    /// The serving policy.
    pub policy: Policy,
    /// Resource-allocation ablations (Fig. 8); default = full DiffServe.
    pub knobs: AblationKnobs,
    /// Allocator implementation.
    pub backend: AllocatorBackend,
    /// Expected peak demand in QPS — static policies provision for this
    /// (the paper's DiffServe-Static is "provisioned for peak").
    pub peak_demand_hint: f64,
}

impl RunSettings {
    /// Settings for a policy with defaults (exhaustive allocator backend,
    /// no ablations) and the given peak-demand hint.
    pub fn new(policy: Policy, peak_demand_hint: f64) -> Self {
        RunSettings {
            policy,
            knobs: AblationKnobs::default(),
            backend: AllocatorBackend::Exhaustive,
            peak_demand_hint,
        }
    }

    /// Validates invariants the serving loop relies on: the peak-demand
    /// hint must be finite and positive (it flows straight into the
    /// allocator's demand estimate for static policies), and a pinned
    /// static threshold must lie in `[0, 1]`.
    ///
    /// The session builder calls this at
    /// [`build`](crate::serve::SessionBuilder::build) time and surfaces
    /// failures as [`BuildError::Settings`](crate::serve::BuildError).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.peak_demand_hint.is_finite() || self.peak_demand_hint <= 0.0 {
            return Err(ConfigError::new(
                "peak demand hint must be finite and positive",
            ));
        }
        if let Some(t) = self.knobs.static_threshold {
            if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                return Err(ConfigError::new("static threshold must lie in [0, 1]"));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Arrival(u64),
    /// Batch completion (or model-switch completion) on a worker. The epoch
    /// tags the worker incarnation that scheduled it: a fail-stop bumps the
    /// worker's epoch, so completions scheduled before the failure arrive
    /// stale and are discarded.
    BatchDone {
        worker: usize,
        epoch: u64,
    },
    ControlTick,
    /// The `i`-th scheduled scenario action fires.
    Scenario(usize),
    /// The load-correlated hazard process evaluates once. Scheduled at
    /// half-phase instants so it never shares a timestamp with a control
    /// tick, which keeps incident replay bit-exact.
    HazardCheck,
}

#[derive(Debug, Clone)]
struct Worker {
    /// Ladder tier index this worker hosts (0 = entry tier; the legacy
    /// cascade is tiers 0/1).
    tier: usize,
    pending_tier: Option<usize>,
    batch_max: usize,
    queue: VecDeque<u64>,
    busy: bool,
    in_flight: Vec<u64>,
    /// Fail-stopped: receives no work and emits no completions until a
    /// scenario recovery.
    failed: bool,
    /// Incarnation counter; bumped on failure so in-flight [`Event::BatchDone`]
    /// events from before the crash are recognized as stale.
    epoch: u64,
    /// Current health: batches dispatched on this worker take
    /// `health.slowdown()` times their nameplate latency.
    health: WorkerHealth,
}

impl Worker {
    fn target_tier(&self) -> usize {
        self.pending_tier.unwrap_or(self.tier)
    }

    fn load(&self) -> usize {
        self.queue.len() + self.in_flight.len()
    }

    /// The router's ETA estimate for an arriving query: current load plus
    /// the query itself, weighted by the health slowdown. Counting the
    /// arrival matters — a straggler with an empty queue would otherwise
    /// score `0 × slowdown = 0`, indistinguishable from an idle healthy
    /// worker. On a healthy fleet `(load + 1) × 1.0` ranks workers exactly
    /// like raw `load` (both integer-valued), so healthy routing is
    /// unchanged.
    fn effective_load(&self) -> f64 {
        (self.load() + 1) as f64 * self.health.slowdown()
    }
}

/// Routing key: a worker's routing load as orderable bits. The router only
/// produces non-negative finite loads, and for those IEEE-754 bit patterns
/// order exactly like the values — so a `u64` key ranks workers identically
/// to comparing the floats.
fn load_key(load: f64) -> u64 {
    debug_assert!(load.is_finite() && load >= 0.0, "routing loads are finite");
    load.to_bits()
}

/// Which routing pool an alive worker belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoutePool {
    /// Hosting a tier and not switching away: the router's first choice.
    Primary(usize),
    /// Mid-switch toward a tier: eligible once the tier has no primaries.
    PendingTo(usize),
}

/// Per-tier sorted load index over the alive fleet.
///
/// Replaces the router's linear scans: every alive worker sits in exactly
/// one pool (primary or pending, per tier) and in the global alive set,
/// keyed by `(routing load, worker index)`. `BTreeSet` minima then answer
/// "least-loaded worker of this tier" in `O(log n)` instead of `O(n)`,
/// and the `(key, index)` ordering reproduces the scan's `(load, index)`
/// tie-break bit-for-bit. Debug builds assert that agreement on every
/// routing decision (see `ServingSim::scan_route`).
#[derive(Debug, Clone)]
struct LoadIndex {
    primary: Vec<BTreeSet<(u64, usize)>>,
    pending_to: Vec<BTreeSet<(u64, usize)>>,
    alive: BTreeSet<(u64, usize)>,
    /// Back-reference per worker: its pool and key, `None` while failed.
    slot: Vec<Option<(RoutePool, u64)>>,
}

impl LoadIndex {
    fn new(n: usize, tiers: usize) -> Self {
        LoadIndex {
            primary: vec![BTreeSet::new(); tiers],
            pending_to: vec![BTreeSet::new(); tiers],
            alive: BTreeSet::new(),
            slot: vec![None; n],
        }
    }

    fn remove(&mut self, idx: usize) {
        if let Some((pool, key)) = self.slot[idx].take() {
            let set = match pool {
                RoutePool::Primary(t) => &mut self.primary[t],
                RoutePool::PendingTo(t) => &mut self.pending_to[t],
            };
            set.remove(&(key, idx));
            self.alive.remove(&(key, idx));
        }
    }

    fn insert(&mut self, idx: usize, pool: RoutePool, key: u64) {
        self.remove(idx);
        let set = match pool {
            RoutePool::Primary(t) => &mut self.primary[t],
            RoutePool::PendingTo(t) => &mut self.pending_to[t],
        };
        set.insert((key, idx));
        self.alive.insert((key, idx));
        self.slot[idx] = Some((pool, key));
    }

    fn min_primary(&self, tier: usize) -> Option<usize> {
        self.primary[tier].iter().next().map(|&(_, i)| i)
    }

    fn min_pending_to(&self, tier: usize) -> Option<usize> {
        self.pending_to[tier].iter().next().map(|&(_, i)| i)
    }

    fn min_alive(&self) -> Option<usize> {
        self.alive.iter().next().map(|&(_, i)| i)
    }

    fn alive_len(&self) -> usize {
        self.alive.len()
    }

    /// Alive workers whose target tier is `tier` (primaries plus workers
    /// switching toward it).
    fn tier_len(&self, tier: usize) -> usize {
        self.primary[tier].len() + self.pending_to[tier].len()
    }

    /// Appends the indices of every alive worker targeting `tier`.
    fn tier_members(&self, tier: usize, out: &mut Vec<usize>) {
        out.extend(self.primary[tier].iter().map(|&(_, i)| i));
        out.extend(self.pending_to[tier].iter().map(|&(_, i)| i));
    }
}

#[derive(Debug, Clone, Copy)]
struct QueryRec {
    arrival: SimTime,
    deadline: SimTime,
    finished: bool,
    /// Whether the arrival event has been processed yet (queries are
    /// registered at submit time, which may precede their arrival).
    arrived: bool,
    /// Explicit prompt payload; `None` serves the dataset's cyclic prompt.
    prompt: Option<Prompt>,
    /// Denoise progress carried from another tier: a resume-aware heavy
    /// dispatch covers only the residual steps. Set on escalation when
    /// [`SystemConfig::resume_from_latents`] is enabled, or up front via
    /// [`QuerySpec::resume_from`].
    resume: Option<StageState>,
    /// Add-on module (catalog index) this query requires; `None` = a
    /// base-model query. Rides along on escalation, so the heavy pass
    /// needs the same module.
    addon: Option<usize>,
    /// The ladder tier this query entered at. Tier 0 for every legacy
    /// policy path; deeper when the predictive router skipped cheap tiers.
    /// Its GPU-time accounting charges only tiers `entry..=final`.
    entry_tier: usize,
}

struct ServingSim<'a> {
    config: SystemConfig,
    settings: RunSettings,
    runtime: &'a CascadeRuntime,
    /// The backend-agnostic control plane; this backend only gathers
    /// [`ControlObservation`]s and actuates the returned directives.
    control: ControlLoop,
    workers: Vec<Worker>,
    /// Per-tier sorted load index over `workers`; kept in sync by
    /// [`Self::refresh_index`] after every load/health/tier mutation.
    index: LoadIndex,
    queries: Vec<QueryRec>,
    /// The ladder's model tiers, cheapest first. For a legacy (non-ladder)
    /// runtime this is exactly `[&spec.light, &spec.heavy]`, so every
    /// tier-indexed path below reduces to the historical two-tier
    /// arithmetic bit-for-bit.
    models: Vec<&'a DiffusionModel>,
    /// One discriminator per escalation boundary (length `N - 1`);
    /// `discriminators[k]` scores tier-`k` outputs. Legacy runtimes carry
    /// the single cascade discriminator at boundary 0.
    discriminators: Vec<&'a Discriminator>,
    /// Per-boundary confidence thresholds; `thresholds[0]` is the legacy
    /// cascade threshold.
    thresholds: Vec<f64>,
    /// `true` while the actuated plan is the overload fallback: the
    /// predictive router stops bypassing so every arrival enters the entry
    /// tier, where the floored thresholds can actually shed it (bypassed
    /// traffic is immune to the threshold lever).
    bypass_suspended: bool,
    /// Pre-execution router sending predicted-hard queries straight to a
    /// deeper tier; `None` (every two-tier run) keeps all arrivals at the
    /// entry tier.
    router: Option<OnlinePredictiveRouter>,
    proteus_heavy_fraction: f64,
    // Scenario state.
    actions: Vec<(SimTime, ScenarioEvent)>,
    difficulty_delta: f64,
    /// The load-correlated fault engine, when the scenario carries one.
    hazard: Option<HazardProcess>,
    /// Hazard evaluations performed so far (the first covers only the
    /// half-interval since simulation start).
    hazard_checks: u64,
    /// Every perturbation actually fired (scheduled, injected, or
    /// hazard-drawn), in firing order — surfaced in the [`RunReport`] for
    /// incident replay.
    incident_log: IncidentLog,
    /// Per-worker bounded LRU add-on module caches; empty with
    /// [`SystemConfig::addons`] unset. A dispatch whose batch needs
    /// modules not resident here pays their load latency.
    caches: Vec<ModuleCache>,
    /// Per-tier add-on cache accounting (hits, misses, swap seconds).
    addon_stats: AddonStats,
    /// Scratch: distinct missing module ids of the batch being priced.
    addon_scratch: Vec<usize>,
    // Metrics.
    slo: SloTracker,
    responses: Vec<CompletedResponse>,
    /// Completions whose heavy pass resumed from carried latents.
    resumed_count: u64,
    /// Incremental windowed FID over the most recent completions, read at
    /// every snapshot tap.
    rolling_fid: RollingFid,
    arrivals_since_tick: u64,
    heavy_arrivals_since_tick: u64,
    violations_since_tick_light: u64,
    violations_since_tick_heavy: u64,
    /// Discriminator confidences observed since the last control tick —
    /// the online profile estimator's input stream.
    confidences_since_tick: Vec<f64>,
    /// Boundary ≥ 1 confidences since the last tick (`[k]` holds boundary
    /// `k + 1`'s stream); always empty on two-tier runs.
    deep_confidences_since_tick: Vec<Vec<f64>>,
    /// Cumulative escalations across each boundary (`[k]` counts tier `k`
    /// → `k + 1` hand-offs), surfaced in session snapshots.
    tier_escalations: Vec<u64>,
    /// Queries admitted directly at each tier since the last control tick
    /// (the predictive router's bypass flow lands at index ≥ 1); only
    /// maintained on ladder runs with a router, else left empty.
    tier_direct_since_tick: Vec<u64>,
    threshold_series: WindowedSeries,
    arrival_series: WindowedSeries,
    rng: rand::rngs::StdRng,
    total_arrivals: u64,
    /// Drops recorded since the last poll: `(id, arrival, dropped_at)`.
    drop_log: Vec<(QueryId, SimTime, SimTime)>,
    // Reused scratch buffers — dispatch and churn paths run at event rate,
    // so they must not allocate per event.
    /// Holds a completed batch while its queries are scored and routed.
    batch_scratch: Vec<u64>,
    /// Holds orphaned queries while a failed fleet slice is re-routed.
    orphan_scratch: Vec<(usize, u64)>,
    /// Holds donor-tier candidate indices during allocation switches.
    victim_scratch: Vec<usize>,
    /// Holds a switching worker's queue while it is re-routed.
    requeue_scratch: Vec<u64>,
}

impl<'a> ServingSim<'a> {
    fn new(
        config: SystemConfig,
        settings: RunSettings,
        runtime: &'a CascadeRuntime,
        control: ControlLoop,
        actions: Vec<(SimTime, ScenarioEvent)>,
        hazard: Option<HazardProcess>,
    ) -> Self {
        config.validate().expect("valid system config");
        // The tier roster: ladders with more than two tiers generalize the
        // serving loop; everything else (including a degenerate two-tier
        // ladder) runs the exact legacy light/heavy pair.
        let (models, discriminators): (Vec<&'a DiffusionModel>, Vec<&'a Discriminator>) =
            match &runtime.ladder {
                Some(art) if art.num_tiers() > 2 => (
                    art.models.iter().collect(),
                    art.discriminators.iter().collect(),
                ),
                _ => (
                    vec![&runtime.spec.light, &runtime.spec.heavy],
                    vec![&runtime.discriminator],
                ),
            };
        let num_tiers = models.len();
        let boundaries = num_tiers - 1;
        let ladder_cfg = config.ladder.clone().unwrap_or_default();
        let thresholds = match &ladder_cfg.initial_thresholds {
            Some(ts) if ts.len() == boundaries => ts.clone(),
            _ => vec![0.5; boundaries],
        };
        let router = (num_tiers > 2
            && ladder_cfg.predictive_routing
            && matches!(settings.policy, Policy::DiffServe | Policy::DiffServeStatic))
        .then(|| {
            OnlinePredictiveRouter::new(
                boundaries,
                OnlineRouterConfig {
                    observation_noise: ladder_cfg.predictive_observation_noise,
                    learning_rate: ladder_cfg.predictive_learning_rate,
                    min_observations: ladder_cfg.predictive_min_observations,
                    margin: ladder_cfg.predictive_margin,
                },
            )
        });
        // Bootstrap: half the fleet per tier until the first control tick
        // (static policies overwrite this immediately below). Mid tiers
        // start empty; the first plan staffs them.
        let workers = (0..config.num_workers)
            .map(|i| Worker {
                tier: if i < config.num_workers / 2 {
                    0
                } else {
                    num_tiers - 1
                },
                pending_tier: None,
                batch_max: 1,
                queue: VecDeque::new(),
                busy: false,
                in_flight: Vec::new(),
                failed: false,
                epoch: 0,
                health: WorkerHealth::healthy(),
            })
            .collect();
        let mut sim = ServingSim {
            index: LoadIndex::new(config.num_workers, num_tiers),
            workers,
            queries: Vec::new(),
            models,
            discriminators,
            thresholds,
            bypass_suspended: false,
            router,
            proteus_heavy_fraction: 0.5,
            actions,
            difficulty_delta: 0.0,
            hazard,
            hazard_checks: 0,
            incident_log: Vec::new(),
            caches: match &config.addons {
                Some(a) => (0..config.num_workers)
                    .map(|_| ModuleCache::new(a.cache_mem_mb))
                    .collect(),
                None => Vec::new(),
            },
            addon_stats: AddonStats::default(),
            addon_scratch: Vec::new(),
            slo: SloTracker::new(config.slo),
            responses: Vec::new(),
            resumed_count: 0,
            rolling_fid: session_rolling_fid(&runtime.reference),
            arrivals_since_tick: 0,
            heavy_arrivals_since_tick: 0,
            violations_since_tick_light: 0,
            violations_since_tick_heavy: 0,
            confidences_since_tick: Vec::new(),
            deep_confidences_since_tick: vec![Vec::new(); boundaries.saturating_sub(1)],
            tier_escalations: vec![0; boundaries],
            tier_direct_since_tick: Vec::new(),
            threshold_series: WindowedSeries::new(config.metrics_window),
            arrival_series: WindowedSeries::new(config.metrics_window),
            rng: seeded_rng(derive_seed(config.seed, 0x51A7)),
            total_arrivals: 0,
            drop_log: Vec::new(),
            batch_scratch: Vec::new(),
            orphan_scratch: Vec::new(),
            victim_scratch: Vec::new(),
            requeue_scratch: Vec::new(),
            config,
            settings,
            runtime,
            control,
        };
        for i in 0..sim.workers.len() {
            sim.refresh_index(i);
        }
        sim.bootstrap_allocation();
        sim
    }

    /// Re-derives worker `idx`'s load-index entry from its live state.
    /// Must run after any mutation of the worker's failure flag, tier or
    /// pending assignment, health, or load (queue / in-flight length).
    fn refresh_index(&mut self, idx: usize) {
        let w = &self.workers[idx];
        if w.failed {
            self.index.remove(idx);
            return;
        }
        let key = load_key(self.routing_load(idx));
        let pool = match self.workers[idx].pending_tier {
            Some(t) => RoutePool::PendingTo(t),
            None => RoutePool::Primary(self.workers[idx].tier),
        };
        self.index.insert(idx, pool, key);
    }

    /// Registers a query for arrival at `at`; its record is indexed by the
    /// returned id. The arrival event itself is scheduled by the caller.
    fn enqueue_query(
        &mut self,
        at: SimTime,
        prompt: Option<Prompt>,
        deadline: Option<SimTime>,
        resume: Option<StageState>,
        addon: Option<usize>,
    ) -> u64 {
        let qidx = self.queries.len() as u64;
        self.queries.push(QueryRec {
            arrival: at,
            deadline: deadline.unwrap_or(at + self.config.slo),
            finished: false,
            arrived: false,
            prompt,
            resume,
            addon,
            entry_tier: 0,
        });
        qidx
    }

    /// Appends a perturbation to the action table, returning its index for
    /// [`Event::Scenario`] scheduling.
    fn push_action(&mut self, at: SimTime, event: ScenarioEvent) -> usize {
        self.actions.push((at, event));
        self.actions.len() - 1
    }

    /// Single-stage service latency of a batch on a tier: the tier's model
    /// execution plus — on non-terminal cascade tiers — the boundary
    /// discriminator's per-query scoring cost.
    fn stage_latency(&self, tier: usize, batch: usize) -> f64 {
        let base = self.models[tier]
            .latency()
            .exec_latency(batch)
            .as_secs_f64();
        match self.discriminators.get(tier) {
            Some(d) if self.settings.policy.uses_cascade() => {
                base + d.latency().as_secs_f64() * batch as f64
            }
            _ => base,
        }
    }

    /// Denoise steps query `qidx` skips at `tier` by resuming from carried
    /// latents. Exactly `0` at the entry tier, with resume disabled, with
    /// no carried state, or with a zero step credit — the resume-aware
    /// paths below all reduce to the restart arithmetic bit-for-bit in
    /// those cases.
    fn reused_steps_for(&self, qidx: u64, tier: usize) -> u32 {
        if tier == 0 || !self.config.resume_from_latents {
            return 0;
        }
        match self.queries[qidx as usize].resume {
            Some(st) => reused_steps(
                self.models[tier].steps(),
                st,
                self.config.resume_step_credit,
            ),
            None => 0,
        }
    }

    /// Total service-time discount of a prospective batch: the sum of each
    /// member's [`resume_savings`]. Always `0.0` for the entry tier and in
    /// restart mode, so `(stage_latency − 0.0)` stays bitwise equal to the
    /// undiscounted service time.
    fn batch_resume_savings(&self, tier: usize, members: impl Iterator<Item = u64>) -> f64 {
        if tier == 0 || !self.config.resume_from_latents {
            return 0.0;
        }
        let profile = self.models[tier].latency();
        let steps = self.models[tier].steps();
        members
            .map(|q| resume_savings(profile, self.reused_steps_for(q, tier), steps))
            .sum()
    }

    /// Total module-load seconds a prospective batch on worker `idx` would
    /// pay: the summed load latencies of the *distinct* add-on modules its
    /// members require that are not resident in the worker's cache at batch
    /// start. Read-only (`seen` is caller-provided scratch for the distinct
    /// set); exactly `0.0` with add-ons disabled. The dispatch-side
    /// [`Self::charge_batch_swaps`] computes the identical sum for the same
    /// batch, so the drop-front ETA and the scheduled service time agree.
    fn batch_swap_secs(
        &self,
        idx: usize,
        members: impl Iterator<Item = u64>,
        seen: &mut Vec<usize>,
    ) -> f64 {
        let Some(addons) = &self.config.addons else {
            return 0.0;
        };
        seen.clear();
        let cache = &self.caches[idx];
        let mut secs = 0.0;
        for q in members {
            if let Some(id) = self.queries[q as usize].addon {
                if !cache.contains(id) && !seen.contains(&id) {
                    seen.push(id);
                    secs += addons.catalog.get(id).load_secs;
                }
            }
        }
        secs
    }

    /// Charges the dispatching batch's module swaps on worker `idx`:
    /// records one hit/miss per add-on-carrying member (judged against
    /// cache residency at batch start, with each distinct missing module's
    /// load latency attributed to its first requester), then admits every
    /// required module in member order — hits refresh LRU recency, misses
    /// load and evict. Returns the total load seconds, bitwise equal to
    /// what [`Self::batch_swap_secs`] predicted for this batch.
    fn charge_batch_swaps(&mut self, idx: usize, tier: usize) -> f64 {
        let Some(addons) = &self.config.addons else {
            return 0.0;
        };
        // Add-on accounting keeps the legacy two-bucket split: entry tier
        // vs everything deeper.
        let stats_tier = if tier == 0 {
            ModelTier::Light
        } else {
            ModelTier::Heavy
        };
        let mut seen = std::mem::take(&mut self.addon_scratch);
        seen.clear();
        let cache = &mut self.caches[idx];
        let mut secs = 0.0;
        for &q in &self.workers[idx].in_flight {
            let Some(id) = self.queries[q as usize].addon else {
                continue;
            };
            let hit = cache.contains(id);
            let swap = if !hit && !seen.contains(&id) {
                seen.push(id);
                addons.catalog.get(id).load_secs
            } else {
                0.0
            };
            self.addon_stats.record(stats_tier, hit, swap);
            secs += swap;
        }
        for &q in &self.workers[idx].in_flight {
            if let Some(id) = self.queries[q as usize].addon {
                cache.admit(id, &addons.catalog);
            }
        }
        seen.clear();
        self.addon_scratch = seen;
        secs
    }

    /// Single-query nameplate GPU-seconds a completion consumed across the
    /// tiers it touched (see [`CompletedResponse::gpu_time`]): every
    /// cascade stage from the query's entry tier through its completion
    /// tier, net of resumed steps at the final tier.
    fn single_query_gpu_time(&self, entry: usize, tier: usize, reused: u32) -> f64 {
        let profile = self.models[tier].latency();
        let own = self.stage_latency(tier, 1)
            - resume_savings(profile, reused, self.models[tier].steps());
        if self.settings.policy.uses_cascade() && tier > entry {
            // Escalated: the shallower passes and their discriminator
            // scores ran first and their cost is sunk.
            (entry..tier).map(|j| self.stage_latency(j, 1)).sum::<f64>() + own
        } else {
            own
        }
    }

    /// Tier `tier`'s output for query `qidx`, resuming from carried latents
    /// when possible. Returns the image and the reused step count. A
    /// restart (no reuse) is bitwise `generate`; a lossless resume
    /// (`resume_quality_penalty == 0`) produces the identical image at
    /// lower service time.
    fn tier_generate(&self, tier: usize, qidx: u64, prompt: &Prompt) -> (GeneratedImage, u32) {
        let reused = self.reused_steps_for(qidx, tier);
        if reused > 0 {
            let image = self.models[tier]
                .generate_with_quality_shift(prompt, -self.config.resume_quality_penalty);
            (image, reused)
        } else {
            (self.models[tier].generate(prompt), 0)
        }
    }

    /// Initial allocation before any demand has been observed, planned by
    /// the control plane and applied instantly (bootstrap pays no switch
    /// delay).
    fn bootstrap_allocation(&mut self) {
        let directive = self.control.bootstrap(self.settings.peak_demand_hint);
        match &directive {
            ControlDirective::Apply(alloc) => self.apply_allocation_instant(alloc),
            ControlDirective::ApplyProteus {
                allocation,
                heavy_fraction,
            } => {
                self.proteus_heavy_fraction = *heavy_fraction;
                self.apply_allocation_instant(allocation);
            }
            ControlDirective::ApplyLadder(alloc) => self.apply_ladder_instant(alloc),
            ControlDirective::Hold => {}
        }
    }

    /// Workers currently alive (not fail-stopped), answered by the load
    /// index in `O(1)`.
    fn alive_count(&self) -> usize {
        let n = self.index.alive_len();
        debug_assert_eq!(n, self.workers.iter().filter(|w| !w.failed).count());
        n
    }

    /// Whether any alive worker hosts (or is switching to) a tier deeper
    /// than `tier`, answered by the load index in `O(tiers)` — this runs on
    /// every cascade completion, where a fleet scan would dominate at large
    /// worker counts. For the legacy two-tier cascade this is exactly the
    /// old "has alive heavy" check.
    fn has_alive_deeper(&self, tier: usize) -> bool {
        let v = (tier + 1..self.models.len()).any(|t| self.index.tier_len(t) > 0);
        debug_assert_eq!(
            v,
            self.workers
                .iter()
                .any(|w| !w.failed && w.target_tier() > tier)
        );
        v
    }

    /// Applies an allocation immediately (bootstrap: no switch delay).
    /// Failed workers are skipped — tiers are assigned positionally across
    /// the alive fleet only.
    fn apply_allocation_instant(&mut self, alloc: &Allocation) {
        self.thresholds[0] = alloc.threshold;
        let spare = self
            .alive_count()
            .saturating_sub(alloc.light_workers + alloc.heavy_workers);
        let target_light = alloc.light_workers + spare;
        let mut pos = 0;
        for w in self.workers.iter_mut() {
            if w.failed {
                continue;
            }
            w.tier = if pos < target_light { 0 } else { 1 };
            w.pending_tier = None;
            w.batch_max = if w.tier == 0 {
                alloc.light_batch
            } else {
                alloc.heavy_batch
            };
            pos += 1;
        }
        for i in 0..self.workers.len() {
            self.refresh_index(i);
        }
    }

    /// Applies a ladder allocation immediately (bootstrap: no switch
    /// delay). Mirrors [`Self::apply_allocation_instant`]: spare alive
    /// workers beyond the plan's totals join the entry tier, and tiers are
    /// assigned positionally across the alive fleet.
    fn apply_ladder_instant(&mut self, alloc: &LadderAllocation) {
        self.thresholds.clone_from(&alloc.thresholds);
        self.bypass_suspended = !alloc.feasible;
        let planned: usize = alloc.workers.iter().sum();
        let spare = self.alive_count().saturating_sub(planned);
        let mut targets = alloc.workers.clone();
        targets[0] += spare;
        let mut pos = 0;
        for w in self.workers.iter_mut() {
            if w.failed {
                continue;
            }
            // Positional assignment by prefix sums over the targets.
            let mut tier = targets.len() - 1;
            let mut cum = 0;
            for (t, &n) in targets.iter().enumerate() {
                cum += n;
                if pos < cum {
                    tier = t;
                    break;
                }
            }
            w.tier = tier;
            w.pending_tier = None;
            w.batch_max = alloc.batches[tier].max(1);
            pos += 1;
        }
        for i in 0..self.workers.len() {
            self.refresh_index(i);
        }
    }

    /// Applies an allocation at runtime: batch sizes update immediately,
    /// tier changes go through the model-switch protocol (idle workers
    /// switch now and pay the load delay; busy ones switch at their next
    /// batch boundary).
    fn apply_allocation(
        &mut self,
        alloc: &Allocation,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) {
        self.thresholds[0] = alloc.threshold;
        let spare = self
            .alive_count()
            .saturating_sub(alloc.light_workers + alloc.heavy_workers);
        let target_light = alloc.light_workers + spare;

        for w in self.workers.iter_mut().filter(|w| !w.failed) {
            let b = if w.target_tier() == 0 {
                alloc.light_batch
            } else {
                alloc.heavy_batch
            };
            w.batch_max = b.max(1);
        }

        let current_light = self.index.tier_len(0);
        debug_assert_eq!(
            current_light,
            self.workers
                .iter()
                .filter(|w| !w.failed && w.target_tier() == 0)
                .count()
        );

        let (from, to, count) = if current_light > target_light {
            (0, 1, current_light - target_light)
        } else {
            (1, 0, target_light - current_light)
        };
        if count == 0 {
            return;
        }
        // Switch the least-loaded workers of the donor tier. The index
        // already holds the tier's membership, so only tier-sized work is
        // done here instead of a full-fleet scan; the explicit `(load,
        // index)` sort key reproduces the historical stable-sort order.
        let mut candidates = std::mem::take(&mut self.victim_scratch);
        candidates.clear();
        self.index.tier_members(from, &mut candidates);
        candidates.sort_unstable_by_key(|&i| (self.workers[i].load(), i));
        candidates.truncate(count);

        for &idx in &candidates {
            // Re-route queued queries: they were bound for the donor tier.
            let mut orphans = std::mem::take(&mut self.requeue_scratch);
            orphans.clear();
            orphans.extend(self.workers[idx].queue.drain(..));
            self.workers[idx].pending_tier = Some(to);
            self.workers[idx].batch_max = if to == 0 {
                alloc.light_batch.max(1)
            } else {
                alloc.heavy_batch.max(1)
            };
            // The worker must leave the donor pool before its queue is
            // re-routed, or the router could hand the orphans right back.
            self.refresh_index(idx);
            for &q in &orphans {
                self.route_to_tier(from, q, now, queue);
            }
            orphans.clear();
            self.requeue_scratch = orphans;
            if !self.workers[idx].busy {
                self.begin_switch(idx, now, queue);
            }
        }
        candidates.clear();
        self.victim_scratch = candidates;
    }

    /// Applies a ladder allocation at runtime: the N-tier generalization of
    /// [`Self::apply_allocation`]. Batch sizes update immediately; each
    /// surplus tier donates its least-loaded workers (the exact per-victim
    /// switch protocol the two-tier path uses) to the deficit tiers in tier
    /// order.
    fn apply_ladder_allocation(
        &mut self,
        alloc: &LadderAllocation,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) {
        self.thresholds.clone_from(&alloc.thresholds);
        self.bypass_suspended = !alloc.feasible;
        let planned: usize = alloc.workers.iter().sum();
        let spare = self.alive_count().saturating_sub(planned);
        let mut targets = alloc.workers.clone();
        targets[0] += spare;

        for w in self.workers.iter_mut().filter(|w| !w.failed) {
            w.batch_max = alloc.batches[w.target_tier()].max(1);
        }

        // Donors: each tier's surplus beyond its target, least-loaded
        // first, collected in tier order.
        let mut donors: Vec<(usize, usize)> = Vec::new();
        let mut candidates = std::mem::take(&mut self.victim_scratch);
        for (t, &target) in targets.iter().enumerate() {
            let current = self.index.tier_len(t);
            if current <= target {
                continue;
            }
            candidates.clear();
            self.index.tier_members(t, &mut candidates);
            candidates.sort_unstable_by_key(|&i| (self.workers[i].load(), i));
            candidates.truncate(current - target);
            donors.extend(candidates.iter().map(|&i| (t, i)));
        }
        candidates.clear();
        self.victim_scratch = candidates;

        let mut donor_iter = donors.into_iter();
        for (t, &target) in targets.iter().enumerate() {
            let mut deficit = target.saturating_sub(self.index.tier_len(t));
            while deficit > 0 {
                let Some((from, idx)) = donor_iter.next() else {
                    return;
                };
                deficit -= 1;
                let mut orphans = std::mem::take(&mut self.requeue_scratch);
                orphans.clear();
                orphans.extend(self.workers[idx].queue.drain(..));
                self.workers[idx].pending_tier = Some(t);
                self.workers[idx].batch_max = alloc.batches[t].max(1);
                // Leave the donor pool before the queue is re-routed, or
                // the router could hand the orphans right back.
                self.refresh_index(idx);
                for &q in &orphans {
                    self.route_to_tier(from, q, now, queue);
                }
                orphans.clear();
                self.requeue_scratch = orphans;
                if !self.workers[idx].busy {
                    self.begin_switch(idx, now, queue);
                }
            }
        }
    }

    fn begin_switch(&mut self, idx: usize, now: SimTime, queue: &mut EventQueue<Event>) {
        debug_assert!(!self.workers[idx].busy);
        self.workers[idx].busy = true;
        debug_assert!(self.workers[idx].in_flight.is_empty());
        queue.push(
            now + self.config.model_switch_delay,
            Event::BatchDone {
                worker: idx,
                epoch: self.workers[idx].epoch,
            },
        );
    }

    /// The load the router ranks worker `i` by: effective (health-weighted)
    /// load, or raw queue depth under the health-blind routing ablation.
    fn routing_load(&self, i: usize) -> f64 {
        if self.settings.knobs.health_blind_routing {
            self.workers[i].load() as f64
        } else {
            self.workers[i].effective_load()
        }
    }

    /// Health-weighted join-shortest-queue routing to the pool of a tier.
    /// Prefers alive workers already running the tier; falls back to ones
    /// switching toward it, then to any alive worker.
    ///
    /// Each candidate is ranked by *effective* load — see
    /// [`Worker::effective_load`] — so a 2×-degraded worker's queue slots
    /// cost twice a healthy one's. Health-blind JSQ (plain `load`) keeps
    /// feeding stragglers as if they drained at nameplate speed, which is
    /// exactly where SLO violations concentrate under brownout. On a fully
    /// healthy fleet the effective load ranks workers exactly like the raw
    /// integer load, and the index tie-break preserves the historical pick,
    /// so healthy runs are bit-identical to the old routing.
    /// The candidate ladder is answered by the per-tier load index in
    /// `O(log n)`: tier primaries first, then workers switching toward the
    /// tier, then any alive worker — each pool pre-sorted by `(routing
    /// load, index)`, the exact ranking the old linear scan computed.
    /// Debug builds re-run the scan and assert the index agrees.
    /// Affinity-aware pick for an add-on-carrying query: over the default
    /// ladder's first non-empty candidate pool (tier primaries, then
    /// workers switching toward the tier, then any alive worker), rank
    /// each worker by its routing load plus a miss penalty — the required
    /// module's load latency normalized by the tier's single-query service
    /// time — so a cached replica slightly deeper in queue beats an idle
    /// worker that must swap. Ties break toward the lower worker index,
    /// like the default JSQ. Returns `None` (→ the default ladder, which
    /// stays bit-identical) when add-ons are disabled, the query carries
    /// none, or the affinity-blind ablation is on.
    fn affinity_route(&self, tier: usize, qidx: u64) -> Option<usize> {
        let addons = self.config.addons.as_ref()?;
        let id = self.queries[qidx as usize].addon?;
        if self.settings.knobs.affinity_blind_routing {
            return None;
        }
        let t = tier;
        let penalty = addons.catalog.get(id).load_secs / self.stage_latency(tier, 1);
        let pool = if !self.index.primary[t].is_empty() {
            &self.index.primary[t]
        } else if !self.index.pending_to[t].is_empty() {
            &self.index.pending_to[t]
        } else {
            &self.index.alive
        };
        let mut best: Option<(f64, usize)> = None;
        for &(_, i) in pool {
            let score = self.routing_load(i)
                + if self.caches[i].contains(id) {
                    0.0
                } else {
                    penalty
                };
            let better = match best {
                None => true,
                Some((bs, _)) => score < bs,
            };
            if better {
                best = Some((score, i));
            }
        }
        best.map(|(_, i)| i)
    }

    fn route_to_tier(
        &mut self,
        tier: usize,
        qidx: u64,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) {
        if let Some(chosen) = self.affinity_route(tier, qidx) {
            self.workers[chosen].queue.push_back(qidx);
            self.refresh_index(chosen);
            self.try_start(chosen, now, queue);
            return;
        }
        let t = tier;
        let chosen = self
            .index
            .min_primary(t)
            .or_else(|| self.index.min_pending_to(t))
            .or_else(|| self.index.min_alive())
            .expect("scenario validation keeps at least one worker alive");
        #[cfg(debug_assertions)]
        assert_eq!(
            Some(chosen),
            self.scan_route(tier),
            "per-tier load index diverged from the linear routing scan"
        );
        self.workers[chosen].queue.push_back(qidx);
        self.refresh_index(chosen);
        self.try_start(chosen, now, queue);
    }

    /// The linear three-stage scan the load index replaced — kept as a
    /// debug-build cross-check so a missed [`Self::refresh_index`] call
    /// fails loudly in tests instead of silently diverging.
    #[cfg(debug_assertions)]
    fn scan_route(&self, tier: usize) -> Option<usize> {
        let pick = |pred: &dyn Fn(&Worker) -> bool| -> Option<usize> {
            (0..self.workers.len())
                .filter(|&i| !self.workers[i].failed && pred(&self.workers[i]))
                .min_by(|&a, &b| {
                    let ea = self.routing_load(a);
                    let eb = self.routing_load(b);
                    ea.partial_cmp(&eb)
                        .expect("routing loads are finite")
                        .then(a.cmp(&b))
                })
        };
        pick(&|w| w.tier == tier && w.pending_tier.is_none())
            .or_else(|| pick(&|w| w.target_tier() == tier))
            .or_else(|| pick(&|_| true))
    }

    fn try_start(&mut self, idx: usize, now: SimTime, queue: &mut EventQueue<Event>) {
        if self.workers[idx].busy || self.workers[idx].failed {
            return;
        }
        if self.workers[idx].pending_tier.is_some() {
            self.begin_switch(idx, now, queue);
            return;
        }
        if self.workers[idx].queue.is_empty() {
            return;
        }
        let tier = self.workers[idx].tier;
        let bmax = self.workers[idx].batch_max;
        // Degraded workers execute every batch slower than nameplate.
        let slowdown = self.workers[idx].health.slowdown();

        // Drop-front policy: shed queries that cannot finish this stage in
        // time (counted as SLO violations, §4.1).
        if self.config.drop_predicted_misses {
            let mut swap_seen = std::mem::take(&mut self.addon_scratch);
            while let Some(&front) = self.workers[idx].queue.front() {
                let b_est = self.workers[idx].queue.len().min(bmax);
                // Resume-aware ETA: the prospective batch (the queue's first
                // `b_est` entries) may carry latents whose reused steps
                // shrink the service time. Degradation stretches only the
                // residual work, so the slowdown multiplies after the
                // subtraction. Missing add-on modules add their load
                // latency (`swap` is exactly 0.0 with add-ons disabled).
                let savings = self.batch_resume_savings(
                    tier,
                    self.workers[idx].queue.iter().take(b_est).copied(),
                );
                let swap = self.batch_swap_secs(
                    idx,
                    self.workers[idx].queue.iter().take(b_est).copied(),
                    &mut swap_seen,
                );
                let eta = now
                    + SimDuration::from_secs_f64(
                        (self.stage_latency(tier, b_est) - savings + swap) * slowdown,
                    );
                let rec = self.queries[front as usize];
                if eta > rec.deadline {
                    self.workers[idx].queue.pop_front();
                    self.queries[front as usize].finished = true;
                    self.slo.record_drop(rec.arrival, now);
                    self.drop_log.push((QueryId(front), rec.arrival, now));
                    if tier == 0 {
                        self.violations_since_tick_light += 1;
                    } else {
                        self.violations_since_tick_heavy += 1;
                    }
                } else {
                    break;
                }
            }
            swap_seen.clear();
            self.addon_scratch = swap_seen;
        }
        // Dropped-front pops changed the load; moving queue entries into
        // the in-flight buffer below does not (both count toward it).
        self.refresh_index(idx);
        if self.workers[idx].queue.is_empty() {
            return;
        }
        let w = &mut self.workers[idx];
        let take = w.queue.len().min(bmax);
        debug_assert!(w.in_flight.is_empty(), "dispatch on a busy worker");
        // Move the batch into the worker's reusable in-flight buffer —
        // dispatch runs at event rate and must not allocate.
        w.in_flight.extend(w.queue.drain(..take));
        // Service time covers only the residual steps of resumed members
        // (`savings` is exactly 0.0 in restart mode) plus any add-on module
        // swaps the batch triggers (`swap` is exactly 0.0 with add-ons
        // disabled); the health slowdown stretches that residual, not the
        // skipped work.
        let savings = self.batch_resume_savings(tier, self.workers[idx].in_flight.iter().copied());
        let swap = self.charge_batch_swaps(idx, tier);
        let dur = SimDuration::from_secs_f64(
            (self.stage_latency(tier, take) - savings + swap) * slowdown,
        );
        self.workers[idx].busy = true;
        queue.push(
            now + dur,
            Event::BatchDone {
                worker: idx,
                epoch: self.workers[idx].epoch,
            },
        );
    }

    fn complete(
        &mut self,
        qidx: u64,
        image: GeneratedImage,
        tier: usize,
        confidence: Option<f64>,
        reused: u32,
        now: SimTime,
    ) {
        let rec = self.queries[qidx as usize];
        self.queries[qidx as usize].finished = true;
        let outcome = self.slo.record_completion(rec.arrival, now);
        if outcome.is_violation() {
            if tier == 0 {
                self.violations_since_tick_light += 1;
            } else {
                self.violations_since_tick_heavy += 1;
            }
        }
        if reused > 0 {
            self.resumed_count += 1;
        }
        self.rolling_fid.push(&image.features);
        self.responses.push(CompletedResponse {
            id: QueryId(qidx),
            arrival: rec.arrival,
            completion: now,
            features: image.features,
            quality: image.quality,
            tier: if tier == 0 {
                ModelTier::Light
            } else {
                ModelTier::Heavy
            },
            tier_index: tier,
            confidence,
            gpu_time: self.single_query_gpu_time(rec.entry_tier, tier, reused),
            reused_steps: reused,
        });
    }

    fn handle_arrival(&mut self, qidx: u64, now: SimTime, queue: &mut EventQueue<Event>) {
        debug_assert!(
            !self.queries[qidx as usize].arrived,
            "duplicate arrival for query {qidx}"
        );
        self.queries[qidx as usize].arrived = true;
        self.total_arrivals += 1;
        self.arrivals_since_tick += 1;
        self.arrival_series.push(now, 1.0);

        let tier = match self.settings.policy {
            Policy::ClipperLight => 0,
            Policy::ClipperHeavy => self.models.len() - 1,
            Policy::Proteus => {
                if self.rng.gen_range(0.0..1.0) < self.proteus_heavy_fraction {
                    self.heavy_arrivals_since_tick += 1;
                    self.models.len() - 1
                } else {
                    0
                }
            }
            Policy::DiffServeStatic | Policy::DiffServe => match &self.router {
                // Predictive straight-to-tier routing: queries predicted to
                // escalate skip the cheap tiers. The prediction sees the
                // same (difficulty-shifted) prompt the tiers will serve.
                // Suspended while the controller is shedding (overload
                // fallback): bypassed traffic would be immune to the
                // floored thresholds.
                Some(r) if !self.bypass_suspended => {
                    let t = r.entry_tier(&self.served_prompt(qidx));
                    if t > 0 {
                        // A skipped-ahead query is demand the deeper pools
                        // must absorb — count it like an escalation.
                        self.heavy_arrivals_since_tick += 1;
                    }
                    t
                }
                _ => 0,
            },
        };
        self.queries[qidx as usize].entry_tier = tier;
        if self.router.is_some() {
            if self.tier_direct_since_tick.len() != self.models.len() {
                self.tier_direct_since_tick = vec![0; self.models.len()];
            }
            self.tier_direct_since_tick[tier] += 1;
        }
        self.route_to_tier(tier, qidx, now, queue);
    }

    /// The prompt served for query `qidx` — its explicit payload if one was
    /// submitted, else the dataset's cyclic prompt — with any active
    /// difficulty shift applied.
    fn served_prompt(&self, qidx: u64) -> Prompt {
        self.queries[qidx as usize]
            .prompt
            .unwrap_or_else(|| *self.runtime.dataset.prompt_cyclic(qidx))
            .harder(self.difficulty_delta)
    }

    fn handle_batch_done(
        &mut self,
        idx: usize,
        epoch: u64,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) {
        if self.workers[idx].epoch != epoch {
            // Stale completion from an incarnation that fail-stopped; its
            // in-flight work was already re-routed by the failure handler.
            return;
        }
        self.workers[idx].busy = false;
        // Swap the finished batch into the reusable scratch buffer (the
        // worker gets the previously-cleared one back) — no allocation at
        // completion rate.
        let mut batch = std::mem::take(&mut self.batch_scratch);
        debug_assert!(batch.is_empty());
        std::mem::swap(&mut batch, &mut self.workers[idx].in_flight);
        if batch.is_empty() {
            self.batch_scratch = batch;
            // Model switch finished.
            if let Some(t) = self.workers[idx].pending_tier.take() {
                self.workers[idx].tier = t;
            }
            self.refresh_index(idx);
            self.try_start(idx, now, queue);
            return;
        }
        let tier = self.workers[idx].tier;
        // The emptied in-flight buffer lowered this worker's load; the
        // index must see that before any escalation below routes.
        self.refresh_index(idx);
        let last = self.models.len() - 1;
        for &qidx in &batch {
            let prompt = self.served_prompt(qidx);
            let (image, reused) = self.tier_generate(tier, qidx, &prompt);
            if tier < last && self.settings.policy.uses_cascade() {
                let conf = self.discriminators[tier].confidence(&image.features);
                if tier == 0 {
                    self.confidences_since_tick.push(conf);
                } else {
                    self.deep_confidences_since_tick[tier - 1].push(conf);
                }
                // With the deeper pools wiped out by churn, an escalation
                // would land back on a worker of this tier,
                // deterministically regenerate the same image, and bounce
                // forever — degrade gracefully by serving this output
                // instead.
                let escalate = conf < self.thresholds[tier] && self.has_alive_deeper(tier);
                if let Some(r) = self.router.as_mut() {
                    // Every verdict trains the pre-execution router, kept
                    // or escalated alike.
                    r.observe(tier, &prompt, escalate);
                }
                if !escalate {
                    self.complete(qidx, image, tier, Some(conf), reused, now);
                } else {
                    if self.config.resume_from_latents {
                        // Carry this tier's finished denoise schedule so
                        // the next pass resumes from its latents instead
                        // of restarting.
                        self.queries[qidx as usize].resume =
                            Some(StageState::completed(self.models[tier].steps()));
                    }
                    self.tier_escalations[tier] += 1;
                    self.heavy_arrivals_since_tick += 1;
                    self.route_to_tier(tier + 1, qidx, now, queue);
                }
            } else {
                self.complete(qidx, image, tier, None, reused, now);
            }
        }
        batch.clear();
        self.batch_scratch = batch;
        self.try_start(idx, now, queue);
    }

    /// A scenario fail-stop: the `count` highest-indexed alive workers go
    /// down (clamped so at least two stay alive, one per tier). Their
    /// queued *and* in-flight queries are retried on surviving workers of
    /// the same tier (fail-stop loses batch progress), and stale
    /// completions are fenced off by the epoch bump. Returns how many
    /// workers actually failed.
    fn handle_fail(&mut self, count: usize, now: SimTime, queue: &mut EventQueue<Event>) -> usize {
        let alive = self.alive_count();
        let allowed = count.min(alive.saturating_sub(2));
        let victims: Vec<usize> = (0..self.workers.len())
            .rev()
            .filter(|&i| !self.workers[i].failed)
            .take(allowed)
            .collect();
        let applied = victims.len();
        let mut orphans = std::mem::take(&mut self.orphan_scratch);
        orphans.clear();
        for idx in victims {
            let w = &mut self.workers[idx];
            w.failed = true;
            w.epoch += 1;
            w.busy = false;
            // A dead worker's degradation dies with it: it rejoins healthy
            // (fresh instance, fresh weights).
            w.health = WorkerHealth::healthy();
            let tier = w.target_tier();
            w.pending_tier = None;
            for q in w.queue.drain(..) {
                orphans.push((tier, q));
            }
            for q in w.in_flight.drain(..) {
                orphans.push((tier, q));
            }
            // A rejoining instance starts with cold module caches.
            if let Some(cache) = self.caches.get_mut(idx) {
                cache.clear();
            }
            self.refresh_index(idx);
        }
        for &(tier, q) in &orphans {
            if !self.queries[q as usize].finished {
                self.route_to_tier(tier, q, now, queue);
            }
        }
        orphans.clear();
        self.orphan_scratch = orphans;
        applied
    }

    /// A scenario recovery: the `count` lowest-indexed failed workers come
    /// back, paying the model load delay before they can serve (the same
    /// switch protocol a reassigned worker follows). Returns how many
    /// workers actually rejoined.
    fn handle_recover(
        &mut self,
        count: usize,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) -> usize {
        let returning: Vec<usize> = (0..self.workers.len())
            .filter(|&i| self.workers[i].failed)
            .take(count)
            .collect();
        let applied = returning.len();
        for idx in returning {
            let w = &mut self.workers[idx];
            w.failed = false;
            w.busy = false;
            w.epoch += 1;
            w.pending_tier = Some(w.tier);
            self.refresh_index(idx);
            self.begin_switch(idx, now, queue);
        }
        applied
    }

    /// A scenario degradation: the `count` lowest-indexed alive healthy
    /// workers drop to `1/slowdown` of nameplate speed (best-effort: fewer
    /// healthy workers means fewer degrade). In-flight batches keep their
    /// already-scheduled completion; the slowdown bites from the next
    /// dispatch. Returns how many workers actually degraded.
    fn handle_degrade(&mut self, count: usize, slowdown: f64) -> usize {
        let victims: Vec<usize> = (0..self.workers.len())
            .filter(|&i| !self.workers[i].failed && !self.workers[i].health.is_degraded())
            .take(count)
            .collect();
        let applied = victims.len();
        for idx in victims {
            self.workers[idx].health = WorkerHealth::degraded(slowdown);
            self.refresh_index(idx);
        }
        applied
    }

    /// A scenario restoration: the `count` lowest-indexed degraded workers
    /// return to nameplate speed. Returns how many were actually restored.
    fn handle_restore(&mut self, count: usize) -> usize {
        let returning: Vec<usize> = (0..self.workers.len())
            .filter(|&i| !self.workers[i].failed && self.workers[i].health.is_degraded())
            .take(count)
            .collect();
        let applied = returning.len();
        for idx in returning {
            self.workers[idx].health = WorkerHealth::healthy();
            self.refresh_index(idx);
        }
        applied
    }

    /// Applies one perturbation against live state and records what was
    /// *actually applied* in the incident log — the single funnel every
    /// source (scheduled timeline, mid-run injection, hazard draw) goes
    /// through. Capacity events are best-effort (clamped to the eligible
    /// set, mirroring the cluster backend), and only the applied counts are
    /// logged, so the log stays a faithful, replayable account rather than
    /// a wish list.
    fn fire_event(&mut self, event: ScenarioEvent, now: SimTime, queue: &mut EventQueue<Event>) {
        let applied = match event {
            ScenarioEvent::Capacity(CapacityEvent::Fail(n)) => {
                let done = self.handle_fail(n, now, queue);
                (done > 0).then_some(ScenarioEvent::Capacity(CapacityEvent::Fail(done)))
            }
            ScenarioEvent::Capacity(CapacityEvent::Recover(n)) => {
                let done = self.handle_recover(n, now, queue);
                (done > 0).then_some(ScenarioEvent::Capacity(CapacityEvent::Recover(done)))
            }
            ScenarioEvent::Capacity(CapacityEvent::Degrade(n, slowdown)) => {
                let done = self.handle_degrade(n, slowdown);
                (done > 0).then_some(ScenarioEvent::Capacity(CapacityEvent::Degrade(
                    done, slowdown,
                )))
            }
            ScenarioEvent::Capacity(CapacityEvent::Restore(n)) => {
                let done = self.handle_restore(n);
                (done > 0).then_some(ScenarioEvent::Capacity(CapacityEvent::Restore(done)))
            }
            ScenarioEvent::Difficulty(delta) => {
                self.difficulty_delta = delta;
                Some(event)
            }
        };
        if let Some(event) = applied {
            self.incident_log.push(Incident { at: now, event });
        }
    }

    fn handle_scenario(&mut self, i: usize, now: SimTime, queue: &mut EventQueue<Event>) {
        let event = self.actions[i].1;
        self.fire_event(event, now, queue);
    }

    /// One hazard evaluation: feed the fleet's instantaneous utilization to
    /// the seeded hazard process and fire whatever it draws. Everything the
    /// hazard does lands in the incident log, so a surprising run replays
    /// from its report.
    fn handle_hazard_check(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        let Some(hazard) = self.hazard.as_mut() else {
            return;
        };
        let interval = hazard.spec().check_interval;
        // The first check sits at half-phase, so it only covers half an
        // interval of elapsed time — use the true dt or the configured
        // per-second rates overstate the opening window.
        let dt = if self.hazard_checks == 0 {
            hazard.spec().first_dt()
        } else {
            interval
        };
        self.hazard_checks += 1;
        let alive = self.workers.iter().filter(|w| !w.failed).count();
        let busy = self.workers.iter().filter(|w| !w.failed && w.busy).count();
        let degraded = self
            .workers
            .iter()
            .filter(|w| !w.failed && w.health.is_degraded())
            .count();
        let utilization = if alive == 0 {
            0.0
        } else {
            busy as f64 / alive as f64
        };
        let fleet = FleetHealth {
            alive,
            failed: self.workers.len() - alive,
            degraded,
        };
        let events = hazard.step(dt, utilization, fleet);
        for event in events {
            self.fire_event(event, now, queue);
        }
        queue.push(now + interval, Event::HazardCheck);
    }

    /// One control tick: gather what this backend observed since the last
    /// tick, let the shared [`ControlLoop`] run the pipeline (demand
    /// estimation → profile estimation → allocation planning), and actuate
    /// the directive.
    fn handle_control_tick(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        let n = self.models.len();
        let mut tier_queues = vec![0usize; n];
        for w in self.workers.iter().filter(|w| !w.failed) {
            tier_queues[w.target_tier()] += w.queue.len();
        }
        // The legacy scalars are the entry tier and everything deeper —
        // for a two-tier run these are exactly the old per-tier sums.
        let light_queue = tier_queues[0];
        let heavy_queue: usize = tier_queues[1..].iter().sum();
        let effective_capacity: f64 = self
            .workers
            .iter()
            .filter(|w| !w.failed)
            .map(|w| w.health.speed_factor)
            .sum();
        let obs = ControlObservation {
            now,
            arrivals: self.arrivals_since_tick,
            heavy_arrivals: self.heavy_arrivals_since_tick,
            violations_light: self.violations_since_tick_light,
            violations_heavy: self.violations_since_tick_heavy,
            light_queue,
            heavy_queue,
            alive_workers: self.alive_count(),
            effective_capacity,
            current_light_batch: self.current_batch(0),
            current_heavy_batch: self.current_batch(n - 1),
            confidences: std::mem::take(&mut self.confidences_since_tick),
            tier_queues,
            deep_confidences: self
                .deep_confidences_since_tick
                .iter_mut()
                .map(std::mem::take)
                .collect(),
            tier_direct_arrivals: std::mem::take(&mut self.tier_direct_since_tick),
        };
        self.arrivals_since_tick = 0;
        self.heavy_arrivals_since_tick = 0;
        self.violations_since_tick_light = 0;
        self.violations_since_tick_heavy = 0;

        let directive = self.control.step(&obs);
        SimActuator {
            sim: self,
            now,
            queue,
        }
        .actuate(&directive);
        self.threshold_series.push(now, self.thresholds[0]);
        queue.push(now + self.config.control_interval, Event::ControlTick);
    }

    fn current_batch(&self, tier: usize) -> usize {
        self.workers
            .iter()
            .find(|w| !w.failed && w.target_tier() == tier)
            .map(|w| w.batch_max)
            .unwrap_or(1)
    }

    /// Live metrics for [`SessionSnapshot`] taps.
    fn snapshot(&self, now: SimTime) -> SessionSnapshot {
        let n = self.models.len();
        let mut tier_workers = vec![0usize; n];
        let mut tier_queues = vec![0usize; n];
        let mut tier_busy = vec![0usize; n];
        let mut failed_workers = 0;
        let mut degraded_workers = 0;
        for w in &self.workers {
            if w.failed {
                failed_workers += 1;
                continue;
            }
            if w.health.is_degraded() {
                degraded_workers += 1;
            }
            let t = w.target_tier();
            tier_workers[t] += 1;
            tier_queues[t] += w.queue.len();
            tier_busy[t] += usize::from(w.busy);
        }
        let heavy_done = self
            .responses
            .iter()
            .filter(|r| r.tier == ModelTier::Heavy)
            .count();
        SessionSnapshot {
            now,
            threshold: self.thresholds[0],
            light_workers: tier_workers[0],
            heavy_workers: tier_workers[1..].iter().sum(),
            failed_workers,
            degraded_workers,
            light_queue: tier_queues[0],
            heavy_queue: tier_queues[1..].iter().sum(),
            light_busy: tier_busy[0],
            heavy_busy: tier_busy[1..].iter().sum(),
            submitted: self.queries.len() as u64,
            completed: self.slo.on_time() + self.slo.late(),
            dropped: self.slo.dropped(),
            heavy_fraction: if self.responses.is_empty() {
                0.0
            } else {
                heavy_done as f64 / self.responses.len() as f64
            },
            fid_estimate: self.rolling_fid.estimate(),
            deferral_gap: self.control.deferral_gap(),
            light_stage_latency: StageLatencyBreakdown::of_latency(
                self.runtime
                    .spec
                    .light
                    .latency()
                    .exec_latency(1)
                    .as_secs_f64(),
            ),
            heavy_stage_latency: StageLatencyBreakdown::of_latency(
                self.runtime
                    .spec
                    .heavy
                    .latency()
                    .exec_latency(1)
                    .as_secs_f64(),
            ),
            resumed_completions: self.resumed_count,
            addon_stats: self.addon_stats,
            tier_workers,
            tier_queues,
            tier_busy,
            tier_escalations: self.tier_escalations.clone(),
            thresholds: self.thresholds.clone(),
        }
    }
}

/// The simulator's [`PlanActuator`]: applies a control directive through
/// the runtime model-switch protocol (batch sizes change immediately, tier
/// changes pay the load delay at batch boundaries).
struct SimActuator<'s, 'a, 'q> {
    sim: &'s mut ServingSim<'a>,
    now: SimTime,
    queue: &'q mut EventQueue<Event>,
}

impl PlanActuator for SimActuator<'_, '_, '_> {
    fn actuate(&mut self, directive: &ControlDirective) {
        match directive {
            ControlDirective::Apply(alloc) => {
                self.sim.apply_allocation(alloc, self.now, self.queue)
            }
            ControlDirective::ApplyProteus {
                allocation,
                heavy_fraction,
            } => {
                self.sim.proteus_heavy_fraction = *heavy_fraction;
                self.sim.apply_allocation(allocation, self.now, self.queue);
            }
            ControlDirective::ApplyLadder(alloc) => self
                .sim
                .apply_ladder_allocation(alloc, self.now, self.queue),
            ControlDirective::Hold => {}
        }
    }
}

impl Actor<Event> for ServingSim<'_> {
    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::Arrival(qidx) => self.handle_arrival(qidx, now, queue),
            Event::BatchDone { worker, epoch } => self.handle_batch_done(worker, epoch, now, queue),
            Event::ControlTick => self.handle_control_tick(now, queue),
            Event::Scenario(i) => self.handle_scenario(i, now, queue),
            Event::HazardCheck => self.handle_hazard_check(now, queue),
        }
    }
}

/// The discrete-event simulator behind the unified session API: wraps the
/// serving state machine in a [`Simulation`] and implements
/// [`ServingBackend`] so [`ServingSession`] can drive it incrementally.
///
/// Constructed by
/// [`SessionBuilder::build`](crate::serve::SessionBuilder::build) with
/// [`Backend::Sim`](crate::serve::Backend). Deterministic: the same
/// submissions and tick schedule replay bit-identically.
pub struct SimBackend<'a> {
    sim: Simulation<Event, ServingSim<'a>>,
    /// The latest instant the backend has been driven to (>= the engine's
    /// last-event clock).
    cursor: SimTime,
    /// Whether the scenario timeline and the first control tick have been
    /// scheduled. Deferred to the first advance so that pre-submitted
    /// arrivals keep their schedule order ahead of same-instant control
    /// events — exactly the batch wrappers' event order.
    started: bool,
    remaining_budget: u64,
    completion_cursor: usize,
    /// Net worker-failure delta from injected perturbations that are
    /// scheduled but have not fired yet (cleared on every advance):
    /// injected fails minus injected recovers. Validation of back-to-back
    /// injections projects the fleet state forward by this amount.
    pending_failed: isize,
    /// Net worker-degradation delta from injected perturbations that have
    /// not fired yet, mirroring `pending_failed`.
    pending_degraded: isize,
}

impl std::fmt::Debug for SimBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBackend")
            .field("cursor", &self.cursor)
            .field("started", &self.started)
            .field("processed", &self.sim.processed())
            .finish_non_exhaustive()
    }
}

impl<'a> SimBackend<'a> {
    /// Builds the simulator backend from validated session inputs.
    pub fn new(spec: &SessionSpec<'a>) -> Self {
        let actions = spec
            .scenario
            .as_ref()
            .map(|s| s.timeline())
            .unwrap_or_default();
        let hazard = spec
            .scenario
            .as_ref()
            .and_then(|s| s.hazard())
            .map(HazardProcess::new);
        let state = ServingSim::new(
            spec.config.clone(),
            spec.settings.clone(),
            spec.runtime,
            spec.control_loop(),
            actions,
            hazard,
        );
        // Pending events scale with the fleet (per-worker batch timers and
        // in-flight completions) plus a cushion for arrivals and control
        // ticks; preallocating keeps multi-million-event replays free of
        // event-queue reallocation.
        let event_capacity = spec.config.num_workers * 4 + 1024;
        SimBackend {
            sim: Simulation::with_capacity(state, event_capacity),
            cursor: SimTime::ZERO,
            started: false,
            remaining_budget: EVENT_BUDGET,
            completion_cursor: 0,
            pending_failed: 0,
            pending_degraded: 0,
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let times: Vec<SimTime> = self.sim.actor().actions.iter().map(|&(at, _)| at).collect();
        for (i, at) in times.into_iter().enumerate() {
            self.sim.schedule(at, Event::Scenario(i));
        }
        let interval = self.sim.actor().config.control_interval;
        self.sim
            .schedule(SimTime::ZERO + interval, Event::ControlTick);
        if let Some(first) = self
            .sim
            .actor()
            .hazard
            .as_ref()
            .map(|h| h.spec().first_check())
        {
            self.sim.schedule(first, Event::HazardCheck);
        }
    }
}

impl ServingBackend for SimBackend<'_> {
    fn now(&self) -> SimTime {
        self.cursor
    }

    fn submit(&mut self, spec: QuerySpec) -> QueryTicket {
        let at = spec.at.unwrap_or(self.cursor).max(self.cursor);
        let state = self.sim.actor_mut();
        let qidx =
            state.enqueue_query(at, spec.prompt, spec.deadline, spec.resume_from, spec.addon);
        let deadline = state.queries[qidx as usize].deadline;
        self.sim.schedule(at, Event::Arrival(qidx));
        QueryTicket {
            id: QueryId(qidx),
            arrival: at,
            deadline,
        }
    }

    fn tick(&mut self, until: SimTime) {
        self.ensure_started();
        if until > self.cursor {
            self.cursor = until;
        }
        let before = self.sim.processed();
        self.sim
            .run_until_with_budget(self.cursor, self.remaining_budget);
        self.remaining_budget = self
            .remaining_budget
            .saturating_sub(self.sim.processed() - before);
        // Injected perturbations scheduled at or before the cursor have
        // fired now and are reflected in the live fleet state.
        self.pending_failed = 0;
        self.pending_degraded = 0;
    }

    fn drain_completions(&mut self) -> Vec<QueryOutcome> {
        let state = self.sim.actor_mut();
        crate::serve::drain_outcomes(
            &state.responses,
            &mut self.completion_cursor,
            &mut state.drop_log,
        )
    }

    fn apply_perturbation(&mut self, event: ScenarioEvent) -> Result<(), ScenarioError> {
        self.ensure_started();
        // Validate against the fleet state *projected* over injections that
        // are scheduled but have not fired yet (they fire at the next
        // advance), so back-to-back injections compose like the cluster
        // backend's immediate application.
        let state = self.sim.actor();
        let total = state.workers.len();
        let failed = ((total - state.alive_count()) as isize + self.pending_failed)
            .clamp(0, total as isize) as usize;
        let alive = total - failed;
        let live_degraded = state
            .workers
            .iter()
            .filter(|w| !w.failed && w.health.is_degraded())
            .count();
        let degraded =
            (live_degraded as isize + self.pending_degraded).clamp(0, alive as isize) as usize;
        // Shared state-independent checks first (zero counts, bad
        // slowdowns/deltas) — a bad event must never reach the incident
        // log, or the recording stops being replayable.
        event.validate()?;
        match event {
            ScenarioEvent::Capacity(CapacityEvent::Fail(n)) => {
                let remaining = alive.saturating_sub(n);
                if remaining < 2 {
                    return Err(ScenarioError::PoolExhausted {
                        at: self.cursor,
                        alive: remaining,
                    });
                }
                self.pending_failed += n as isize;
            }
            ScenarioEvent::Capacity(CapacityEvent::Recover(n)) => {
                if n > failed {
                    return Err(ScenarioError::RecoverWithoutFailure { at: self.cursor });
                }
                self.pending_failed -= n as isize;
            }
            ScenarioEvent::Capacity(CapacityEvent::Degrade(n, _)) => {
                self.pending_degraded += n as isize;
            }
            ScenarioEvent::Capacity(CapacityEvent::Restore(n)) => {
                if n > degraded {
                    return Err(ScenarioError::RestoreWithoutDegrade { at: self.cursor });
                }
                self.pending_degraded -= n as isize;
            }
            ScenarioEvent::Difficulty(_) => {}
        }
        let at = self.cursor;
        let idx = self.sim.actor_mut().push_action(at, event);
        self.sim.schedule(at, Event::Scenario(idx));
        Ok(())
    }

    fn snapshot(&self) -> SessionSnapshot {
        self.sim.actor().snapshot(self.cursor)
    }

    fn finish(mut self: Box<Self>, horizon: SimTime) -> RunReport {
        self.tick(horizon);
        let mut state = self.sim.into_actor();
        for i in 0..state.queries.len() {
            let rec = state.queries[i];
            if rec.finished {
                continue;
            }
            if rec.arrived {
                // Arrived but never finished: it violated its deadline long
                // ago (the drain period exceeds the SLO).
                state.slo.record_drop(rec.arrival, horizon);
            } else {
                // Submitted for an arrival past the horizon: never entered
                // the system, but every submission must be accounted —
                // mirror the cluster backend's shutdown-drop bookkeeping.
                state.total_arrivals += 1;
                state.slo.record_drop(horizon, horizon);
            }
            state
                .drop_log
                .push((QueryId(i as u64), rec.arrival, horizon));
            state.queries[i].finished = true;
        }
        build_report(state, horizon)
    }
}

/// Runs one policy against a demand trace and reports the paper's metrics.
///
/// Arrivals are Poisson within each trace bin, seeded from
/// `config.seed` — identical across policies so comparisons are paired.
/// Equivalent to [`run_scenario`] with a perturbation-free scenario.
///
/// This is a thin wrapper over a [`ServingSession`]: it replays the trace
/// into a simulator-backed session and finishes it. Hand-driving the same
/// session produces a bit-identical [`RunReport`] (`tests/api_parity.rs`).
///
/// # Panics
///
/// Panics if the configuration is invalid.
///
/// # Examples
///
/// ```
/// use diffserve_core::prelude::*;
/// use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
/// use diffserve_simkit::time::SimDuration;
/// use diffserve_trace::Trace;
///
/// // Tiny runtime so the doctest stays fast.
/// let runtime = CascadeRuntime::prepare(
///     cascade1(FeatureSpec::default()),
///     200,
///     7,
///     DiscriminatorConfig { train_prompts: 100, epochs: 2, ..Default::default() },
/// );
/// let config = SystemConfig { num_workers: 4, ..Default::default() };
/// let trace = Trace::constant(2.0, SimDuration::from_secs(10))?;
/// let report = run_trace(
///     &runtime,
///     &config,
///     &RunSettings::new(Policy::ClipperLight, 2.0),
///     &trace,
/// );
/// assert_eq!(report.completed + report.dropped, report.total_queries);
/// # Ok::<(), diffserve_trace::TraceError>(())
/// ```
pub fn run_trace(
    runtime: &CascadeRuntime,
    config: &SystemConfig,
    settings: &RunSettings,
    trace: &Trace,
) -> RunReport {
    let mut session = ServingSession::builder()
        .runtime(runtime)
        .config(config.clone())
        .settings(settings.clone())
        .build()
        .expect("valid system config and settings");
    session.replay_trace(trace);
    // Horizon: trace end plus a drain period of 4 SLOs.
    session.run_until(SimTime::ZERO + trace.duration() + config.slo * 4);
    session.finish()
}

/// Runs one policy against a [`Scenario`]: the base trace with its demand
/// perturbations baked in, plus worker churn and difficulty shifts injected
/// into the event loop at their scheduled times.
///
/// The thread-based testbed exposes the parity path
/// `diffserve_cluster::run_cluster_scenario`, so one `Scenario` value drives
/// both implementations.
///
/// Like [`run_trace`], a thin wrapper over a [`ServingSession`] with the
/// scenario attached at build time.
///
/// # Panics
///
/// Panics if the configuration is invalid or
/// [`Scenario::validate`](diffserve_trace::Scenario::validate) rejects the
/// scenario for this worker count.
pub fn run_scenario(
    runtime: &CascadeRuntime,
    config: &SystemConfig,
    settings: &RunSettings,
    scenario: &Scenario,
) -> RunReport {
    let mut session = ServingSession::builder()
        .runtime(runtime)
        .config(config.clone())
        .settings(settings.clone())
        .scenario(scenario.clone())
        .build()
        .expect("valid scenario and system config");
    let trace = scenario.effective_trace();
    session.replay_trace(&trace);
    session.run_until(SimTime::ZERO + trace.duration() + config.slo * 4);
    session.finish()
}

fn build_report(mut state: ServingSim<'_>, horizon: SimTime) -> RunReport {
    // Series windows are keyed by window *start*, so anything at or past the
    // horizon is a partial artifact of the drain period — truncate it.
    let h = horizon.as_secs_f64();
    let to_secs = |v: Vec<(SimTime, f64)>| -> Vec<(f64, f64)> {
        v.into_iter()
            .map(|(t, x)| (t.as_secs_f64(), x))
            .filter(|&(t, _)| t < h)
            .collect()
    };
    let deferral_errors: Vec<(f64, f64)> = state
        .control
        .take_deferral_error_series()
        .into_iter()
        .filter(|&(t, _)| t < h)
        .collect();
    RunReport::assemble(
        state.settings.policy,
        state.total_arrivals,
        &state.slo,
        &state.responses,
        &state.runtime.reference,
        state.config.metrics_window,
        to_secs(state.arrival_series.window_rates()),
        to_secs(state.threshold_series.window_means()),
        deferral_errors,
        std::mem::take(&mut state.incident_log),
        state.addon_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
    use diffserve_simkit::time::SimDuration;
    use std::sync::OnceLock;

    /// Shared runtime: discriminator training is the slow part, do it once.
    fn test_runtime() -> &'static CascadeRuntime {
        static RT: OnceLock<CascadeRuntime> = OnceLock::new();
        RT.get_or_init(|| {
            CascadeRuntime::prepare(
                cascade1(FeatureSpec::default()),
                1500,
                99,
                DiscriminatorConfig {
                    train_prompts: 500,
                    epochs: 10,
                    ..Default::default()
                },
            )
        })
    }

    fn small_config() -> SystemConfig {
        SystemConfig {
            num_workers: 8,
            metrics_window: SimDuration::from_secs(10),
            ..Default::default()
        }
    }

    fn flat_trace(qps: f64, secs: u64) -> Trace {
        Trace::constant(qps, SimDuration::from_secs(secs)).unwrap()
    }

    #[test]
    fn all_queries_accounted_for() {
        let cfg = small_config();
        for policy in Policy::all() {
            let settings = RunSettings::new(policy, 8.0);
            let report = run_trace(test_runtime(), &cfg, &settings, &flat_trace(4.0, 40));
            assert_eq!(
                report.completed + report.dropped,
                report.total_queries,
                "{}: completed {} + dropped {} != total {}",
                policy.name(),
                report.completed,
                report.dropped,
                report.total_queries
            );
            assert!(report.total_queries > 50, "{}", policy.name());
        }
    }

    #[test]
    fn clipper_light_is_fast_but_low_quality() {
        let cfg = small_config();
        let light = run_trace(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::ClipperLight, 8.0),
            &flat_trace(4.0, 40),
        );
        let heavy = run_trace(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::ClipperHeavy, 8.0),
            &flat_trace(4.0, 40),
        );
        // Light: everything on time, poor FID. Heavy: better FID.
        assert!(
            light.violation_ratio < 0.02,
            "light viol {}",
            light.violation_ratio
        );
        assert!(
            light.fid > heavy.fid,
            "light fid {} vs heavy {}",
            light.fid,
            heavy.fid
        );
        assert!(light.mean_latency < heavy.mean_latency);
        assert_eq!(light.heavy_fraction, 0.0);
        assert_eq!(heavy.heavy_fraction, 1.0);
    }

    #[test]
    fn clipper_heavy_collapses_under_load() {
        let cfg = small_config();
        // 8 workers of SDv1.5 at b=1: ~4.5 QPS capacity; demand 12 ⇒ overload.
        let report = run_trace(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::ClipperHeavy, 12.0),
            &flat_trace(12.0, 60),
        );
        assert!(
            report.violation_ratio > 0.4,
            "expected heavy overload, got {}",
            report.violation_ratio
        );
    }

    #[test]
    fn diffserve_beats_proteus_on_quality_at_matched_violations() {
        let cfg = small_config();
        let ds = run_trace(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::DiffServe, 10.0),
            &flat_trace(6.0, 60),
        );
        let pr = run_trace(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::Proteus, 10.0),
            &flat_trace(6.0, 60),
        );
        assert!(
            ds.fid < pr.fid,
            "DiffServe fid {} should beat Proteus fid {}",
            ds.fid,
            pr.fid
        );
        assert!(
            ds.violation_ratio < 0.2,
            "ds violations {}",
            ds.violation_ratio
        );
    }

    #[test]
    fn diffserve_keeps_violations_low_under_pressure() {
        let cfg = small_config();
        let report = run_trace(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::DiffServe, 25.0),
            &flat_trace(25.0, 60),
        );
        assert!(
            report.violation_ratio < 0.25,
            "violations {}",
            report.violation_ratio
        );
        // Under pressure most traffic stays light.
        assert!(
            report.heavy_fraction < 0.5,
            "heavy {}",
            report.heavy_fraction
        );
    }

    #[test]
    fn threshold_falls_as_demand_rises() {
        let cfg = small_config();
        let low = run_trace(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::DiffServe, 20.0),
            &flat_trace(2.0, 60),
        );
        let high = run_trace(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::DiffServe, 20.0),
            &flat_trace(18.0, 60),
        );
        let mean_t = |r: &RunReport| {
            let s: f64 = r.threshold_series.iter().map(|(_, t)| t).sum();
            s / r.threshold_series.len() as f64
        };
        assert!(
            mean_t(&low) > mean_t(&high),
            "threshold should fall with demand: {} vs {}",
            mean_t(&low),
            mean_t(&high)
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = small_config();
        let settings = RunSettings::new(Policy::DiffServe, 8.0);
        let a = run_trace(test_runtime(), &cfg, &settings, &flat_trace(5.0, 30));
        let b = run_trace(test_runtime(), &cfg, &settings, &flat_trace(5.0, 30));
        assert_eq!(a.total_queries, b.total_queries);
        assert_eq!(a.violation_ratio, b.violation_ratio);
        assert_eq!(a.fid.to_bits(), b.fid.to_bits());
    }

    #[test]
    fn milp_backend_agrees_with_exhaustive_on_outcome() {
        let cfg = small_config();
        let mut settings = RunSettings::new(Policy::DiffServe, 8.0);
        settings.backend = AllocatorBackend::Milp;
        let milp = run_trace(test_runtime(), &cfg, &settings, &flat_trace(5.0, 30));
        settings.backend = AllocatorBackend::Exhaustive;
        let ex = run_trace(test_runtime(), &cfg, &settings, &flat_trace(5.0, 30));
        // Same optimization problem ⇒ same threshold trajectory and close
        // system metrics (worker identity may differ).
        assert_eq!(milp.threshold_series.len(), ex.threshold_series.len());
        for (a, b) in milp.threshold_series.iter().zip(&ex.threshold_series) {
            assert!(
                (a.1 - b.1).abs() < 0.05,
                "thresholds diverged: {a:?} vs {b:?}"
            );
        }
        assert!((milp.violation_ratio - ex.violation_ratio).abs() < 0.1);
    }

    #[test]
    fn static_threshold_ablation_pins_threshold() {
        let cfg = small_config();
        let mut settings = RunSettings::new(Policy::DiffServe, 8.0);
        settings.knobs = AblationKnobs::static_threshold(0.45);
        let report = run_trace(test_runtime(), &cfg, &settings, &flat_trace(4.0, 30));
        for &(_, t) in &report.threshold_series {
            assert!((t - 0.45).abs() < 1e-9, "threshold moved to {t}");
        }
    }

    #[test]
    fn steady_scenario_matches_run_trace_bitwise() {
        let cfg = small_config();
        let settings = RunSettings::new(Policy::DiffServe, 8.0);
        let trace = flat_trace(5.0, 30);
        let plain = run_trace(test_runtime(), &cfg, &settings, &trace);
        let scenario = Scenario::new("steady", trace);
        let via_scenario = run_scenario(test_runtime(), &cfg, &settings, &scenario);
        assert_eq!(plain.total_queries, via_scenario.total_queries);
        assert_eq!(plain.violation_ratio, via_scenario.violation_ratio);
        assert_eq!(plain.fid.to_bits(), via_scenario.fid.to_bits());
    }

    #[test]
    fn worker_failure_conserves_queries() {
        let cfg = small_config();
        let scenario = Scenario::new("failover", flat_trace(5.0, 60))
            .worker_fail(SimTime::from_secs(20), 2)
            .worker_recover(SimTime::from_secs(40), 2);
        for policy in Policy::all() {
            let settings = RunSettings::new(policy, 8.0);
            let report = run_scenario(test_runtime(), &cfg, &settings, &scenario);
            assert_eq!(
                report.completed + report.dropped,
                report.total_queries,
                "{}: leaked queries under churn",
                policy.name()
            );
            assert!(report.total_queries > 100, "{}", policy.name());
        }
    }

    #[test]
    fn failure_degrades_service_and_recovery_restores_it() {
        let cfg = small_config();
        let settings = RunSettings::new(Policy::DiffServe, 10.0);
        let steady = run_scenario(
            test_runtime(),
            &cfg,
            &settings,
            &Scenario::new("steady", flat_trace(6.0, 90)),
        );
        let churn = run_scenario(
            test_runtime(),
            &cfg,
            &settings,
            &Scenario::new("churn", flat_trace(6.0, 90))
                .worker_fail(SimTime::from_secs(30), 3)
                .worker_recover(SimTime::from_secs(60), 3),
        );
        // Losing 3 of 8 workers mid-run cannot improve violations.
        assert!(
            churn.violation_ratio >= steady.violation_ratio,
            "churn {} vs steady {}",
            churn.violation_ratio,
            steady.violation_ratio
        );
        // But the controller re-solves and keeps the run from collapsing.
        assert!(
            churn.violation_ratio < 0.5,
            "no graceful degradation: {}",
            churn.violation_ratio
        );
    }

    #[test]
    fn difficulty_shift_raises_deferrals() {
        let cfg = small_config();
        let settings = RunSettings::new(Policy::DiffServe, 8.0);
        let steady = run_scenario(
            test_runtime(),
            &cfg,
            &settings,
            &Scenario::new("steady", flat_trace(3.0, 60)),
        );
        let hard = run_scenario(
            test_runtime(),
            &cfg,
            &settings,
            &Scenario::new("hard", flat_trace(3.0, 60))
                .difficulty_shift(SimTime::from_secs(10), 0.35),
        );
        // Harder prompts look less real to the discriminator, so more of
        // the stream escalates to the heavy model.
        assert!(
            hard.heavy_fraction > steady.heavy_fraction,
            "hard {} vs steady {}",
            hard.heavy_fraction,
            steady.heavy_fraction
        );
    }

    #[test]
    fn flash_crowd_grows_the_arrival_stream() {
        let cfg = small_config();
        let settings = RunSettings::new(Policy::DiffServe, 16.0);
        let base = flat_trace(4.0, 60);
        let steady = run_scenario(
            test_runtime(),
            &cfg,
            &settings,
            &Scenario::new("steady", base.clone()),
        );
        let crowd = run_scenario(
            test_runtime(),
            &cfg,
            &settings,
            &Scenario::new("crowd", base).flash_crowd(
                SimTime::from_secs(20),
                SimDuration::from_secs(5),
                SimDuration::from_secs(15),
                3.0,
            ),
        );
        assert!(
            crowd.total_queries as f64 > steady.total_queries as f64 * 1.2,
            "crowd {} vs steady {}",
            crowd.total_queries,
            steady.total_queries
        );
        assert_eq!(crowd.completed + crowd.dropped, crowd.total_queries);
    }

    #[test]
    fn heavy_pool_wipeout_degrades_to_light_service() {
        // At 18 QPS the allocator keeps ~3 light / 5 heavy workers; failing
        // the 5 highest-indexed (the heavy pool) must not send escalations
        // ping-ponging between light workers — they complete as light.
        let cfg = small_config();
        let settings = RunSettings::new(Policy::DiffServe, 18.0);
        let scenario =
            Scenario::new("wipeout", flat_trace(18.0, 40)).worker_fail(SimTime::from_secs(20), 5);
        let report = run_scenario(test_runtime(), &cfg, &settings, &scenario);
        assert_eq!(report.completed + report.dropped, report.total_queries);
        assert!(
            report.violation_ratio < 0.5,
            "wipeout should degrade quality, not deadlines: {}",
            report.violation_ratio
        );
    }

    #[test]
    #[should_panic(expected = "valid scenario")]
    fn scenario_exhausting_the_pool_panics() {
        let cfg = small_config();
        let scenario =
            Scenario::new("bad", flat_trace(2.0, 20)).worker_fail(SimTime::from_secs(5), 7);
        let _ = run_scenario(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::DiffServe, 4.0),
            &scenario,
        );
    }

    #[test]
    fn report_series_are_populated() {
        let cfg = small_config();
        let report = run_trace(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::DiffServe, 8.0),
            &flat_trace(6.0, 60),
        );
        assert!(!report.fid_series.is_empty());
        assert!(!report.violation_series.is_empty());
        assert!(!report.demand_series.is_empty());
        assert!(!report.threshold_series.is_empty());
        assert!(report.fid.is_finite());
        assert!(report.mean_windowed_fid.is_finite());
        // Demand series should hover near the offered 6 QPS.
        let mid = report.demand_series[report.demand_series.len() / 2].1;
        assert!((mid - 6.0).abs() < 3.0, "demand series off: {mid}");
    }
}
