//! The unified serving-session API: one backend-agnostic engine.
//!
//! DiffServe is an *online* system — queries stream in, the discriminator
//! routes them, the controller re-plans every few seconds — and this module
//! is the API shape that matches: a [`ServingSession`] is built once
//! (validating the entire configuration up front and returning typed
//! [`BuildError`]s instead of panicking) and then driven incrementally:
//!
//! * [`ServingSession::submit`] enqueues a query and returns a
//!   [`QueryTicket`];
//! * [`ServingSession::run_until`] advances serving time;
//! * [`ServingSession::poll`] drains [`QueryOutcome`]s as they complete;
//! * [`ServingSession::observer`] taps live metrics ([`SessionSnapshot`]:
//!   queue depths, threshold, rolling FID estimate, per-tier utilization);
//! * [`ServingSession::inject`] applies a perturbation (worker churn,
//!   difficulty shift) mid-run;
//! * [`ServingSession::finish`] produces the same [`RunReport`] the batch
//!   entry points always returned.
//!
//! Both execution engines sit behind the [`ServingBackend`] trait: the
//! discrete-event simulator (`Backend::Sim`, in this crate) and the
//! thread-based cluster testbed (`diffserve_cluster::ClusterBackend`,
//! plugged in through `diffserve_cluster::ClusterSessionExt`). The four
//! legacy batch functions — [`run_trace`](crate::sim::run_trace),
//! [`run_scenario`](crate::sim::run_scenario),
//! `diffserve_cluster::run_cluster`, and
//! `diffserve_cluster::run_cluster_scenario` — are thin wrappers over a
//! session, so the two API generations are guaranteed to agree
//! (`tests/api_parity.rs` asserts bit-identical reports).
//!
//! # Examples
//!
//! ```
//! use diffserve_core::prelude::*;
//! use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
//! use diffserve_simkit::time::{SimDuration, SimTime};
//!
//! let runtime = CascadeRuntime::prepare(
//!     cascade1(FeatureSpec::default()),
//!     200,
//!     7,
//!     DiscriminatorConfig { train_prompts: 100, epochs: 2, ..Default::default() },
//! );
//! let mut session = ServingSession::builder()
//!     .runtime(&runtime)
//!     .config(SystemConfig { num_workers: 4, ..Default::default() })
//!     .policy(Policy::DiffServe)
//!     .backend(Backend::Sim)
//!     .build()?;
//!
//! // Stream a few queries in, advance time, and collect outcomes.
//! for i in 0..4 {
//!     let prompt = *runtime.dataset.prompt_cyclic(i);
//!     let deadline = session.now() + SimDuration::from_secs(5);
//!     session.submit(prompt, deadline);
//! }
//! session.run_until(SimTime::from_secs(30));
//! let outcomes = session.poll();
//! assert_eq!(outcomes.len(), 4);
//! let report = session.finish();
//! assert_eq!(report.completed + report.dropped, report.total_queries);
//! # Ok::<(), diffserve_core::serve::BuildError>(())
//! ```

use diffserve_imagegen::{Prompt, StageLatencyBreakdown, StageState};
use diffserve_metrics::{GaussianStats, RollingFid};
use diffserve_simkit::rng::{derive_seed, seeded_rng};
use diffserve_simkit::time::SimTime;
use diffserve_trace::{
    poisson_arrivals, AddonMix, Scenario, ScenarioError, ScenarioEvent, Trace, TrendWindow,
};

use crate::addons::AddonStats;
use crate::config::{ConfigError, SystemConfig};
use crate::policy::{AblationKnobs, Policy};
use crate::query::{CompletedResponse, ModelTier, QueryId};
use crate::report::{fid_of_responses, RunReport};
use crate::runtime::CascadeRuntime;
use crate::sim::{AllocatorBackend, RunSettings, SimBackend};

/// Seed stream used for trace-replay arrival generation — shared by every
/// backend so the simulator and the testbed draw identical Poisson streams.
pub(crate) const ARRIVAL_SEED_STREAM: u64 = 0xA881;

/// Number of most-recent responses the rolling FID estimate is fit on.
const FID_ESTIMATE_TAIL: usize = 256;

/// Ridge added to the rolling window's covariance diagonal; matches the
/// regularization the windowed-FID report series uses for small windows.
const FID_ESTIMATE_RIDGE: f64 = 1e-3;

/// Which execution engine a [`SessionBuilder`] should construct.
///
/// The thread-based cluster testbed also implements [`ServingBackend`] but
/// lives in `diffserve-cluster` (it needs threads and channels); build a
/// cluster-backed session with `diffserve_cluster::ClusterSessionExt::
/// build_cluster` instead of a variant here, which keeps the dependency
/// arrow pointing from the testbed to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Backend {
    /// The discrete-event simulator (the paper's primary evaluation
    /// vehicle) — deterministic and bit-reproducible.
    #[default]
    Sim,
}

/// A submitted query's receipt: its id and resolved timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTicket {
    /// Identifier the eventual [`QueryOutcome`] will carry.
    pub id: QueryId,
    /// When the query enters the system.
    pub arrival: SimTime,
    /// Its latency deadline.
    pub deadline: SimTime,
}

/// A query submission: every field optional, defaults derived by the
/// backend.
///
/// # Examples
///
/// ```
/// use diffserve_core::serve::QuerySpec;
/// use diffserve_simkit::time::SimTime;
///
/// let spec = QuerySpec::new().at(SimTime::from_secs(3));
/// assert_eq!(spec.at, Some(SimTime::from_secs(3)));
/// assert!(spec.prompt.is_none()); // backend serves the dataset prompt
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuerySpec {
    /// Arrival time; `None` = now. Times in the past are clamped to now.
    pub at: Option<SimTime>,
    /// The prompt to serve; `None` = the runtime dataset's cyclic prompt
    /// for the query's id (the batch wrappers' behavior).
    pub prompt: Option<Prompt>,
    /// Latency deadline; `None` = arrival + the configured SLO.
    pub deadline: Option<SimTime>,
    /// Denoise progress carried in from an earlier pass on another tier.
    /// With [`SystemConfig::resume_from_latents`] enabled, a heavy-tier
    /// dispatch of this query covers only the residual steps; otherwise
    /// the state is carried but ignored. `None` = fresh query.
    pub resume_from: Option<StageState>,
    /// Add-on module (catalog index) this query requires; serving it on a
    /// worker whose [`ModuleCache`](crate::addons::ModuleCache) lacks the
    /// module charges the module's load latency to that batch. Ignored —
    /// carried but inert — when [`SystemConfig::addons`] is unset.
    /// `None` = a base-model query.
    pub addon: Option<usize>,
}

impl QuerySpec {
    /// An empty spec: arrive now, dataset prompt, SLO deadline.
    pub fn new() -> Self {
        QuerySpec::default()
    }

    /// Sets the arrival time.
    pub fn at(mut self, at: SimTime) -> Self {
        self.at = Some(at);
        self
    }

    /// Sets the prompt payload.
    pub fn prompt(mut self, prompt: Prompt) -> Self {
        self.prompt = Some(prompt);
        self
    }

    /// Sets the deadline.
    pub fn deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Carries denoise progress from an earlier pass so a resume-aware
    /// backend can skip the reused steps.
    pub fn resume_from(mut self, state: StageState) -> Self {
        self.resume_from = Some(state);
        self
    }

    /// Requires an add-on module (catalog index) for this query.
    pub fn addon(mut self, id: usize) -> Self {
        self.addon = Some(id);
        self
    }
}

/// The terminal fate of one submitted query, drained via
/// [`ServingSession::poll`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The query completed (possibly past its deadline — check
    /// [`CompletedResponse::latency_secs`] against the SLO).
    Completed(CompletedResponse),
    /// The query was shed: dropped by the drop-front policy, lost to
    /// shutdown, or still unfinished at the session horizon.
    Dropped {
        /// The query's id.
        id: QueryId,
        /// When it arrived.
        arrival: SimTime,
        /// When it was dropped.
        at: SimTime,
    },
}

impl QueryOutcome {
    /// The id of the query this outcome belongs to.
    pub fn id(&self) -> QueryId {
        match self {
            QueryOutcome::Completed(r) => r.id,
            QueryOutcome::Dropped { id, .. } => *id,
        }
    }

    /// Whether the query completed (on time or late).
    pub fn is_completed(&self) -> bool {
        matches!(self, QueryOutcome::Completed(_))
    }
}

/// A live point-in-time view of the serving system, delivered to
/// [`ServingSession::observer`] taps and returned by
/// [`ServingSession::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Current serving time.
    pub now: SimTime,
    /// Active cascade confidence threshold. For the Proteus policy this
    /// slot carries the heavy routing fraction instead.
    pub threshold: f64,
    /// Alive workers assigned (or switching) to the light tier.
    pub light_workers: usize,
    /// Alive workers assigned (or switching) to the heavy tier.
    pub heavy_workers: usize,
    /// Workers currently fail-stopped.
    pub failed_workers: usize,
    /// Alive workers currently running degraded (below nameplate speed).
    pub degraded_workers: usize,
    /// Queries queued on (alive) light-tier workers.
    pub light_queue: usize,
    /// Queries queued on (alive) heavy-tier workers.
    pub heavy_queue: usize,
    /// Alive light-tier workers currently executing a batch.
    pub light_busy: usize,
    /// Alive heavy-tier workers currently executing a batch.
    pub heavy_busy: usize,
    /// Queries submitted so far.
    pub submitted: u64,
    /// Queries completed so far (on time or late).
    pub completed: u64,
    /// Queries dropped so far.
    pub dropped: u64,
    /// Fraction of completions served by the heavy model.
    pub heavy_fraction: f64,
    /// Rolling FID estimate over the most recent completions (`NaN` until
    /// enough responses have accumulated).
    pub fid_estimate: f64,
    /// Live estimated-vs-offline deferral-profile gap: how far the
    /// controller's online `f(t)` estimate has moved from the offline
    /// profile (mean absolute difference over the threshold grid). `0.0`
    /// while the offline profile rules (online refresh disabled or the
    /// estimator still cold).
    pub deferral_gap: f64,
    /// Encode/denoise/decode split of the light model's single-query
    /// nameplate latency (stage-level serving view of the tier).
    pub light_stage_latency: StageLatencyBreakdown,
    /// Encode/denoise/decode split of the heavy model's single-query
    /// nameplate latency.
    pub heavy_stage_latency: StageLatencyBreakdown,
    /// Completions so far whose heavy pass resumed from carried latents
    /// (always `0` in restart mode).
    pub resumed_completions: u64,
    /// Per-tier add-on module-cache accounting so far (hits, misses, swap
    /// seconds). All-zero when [`SystemConfig::addons`] is unset.
    ///
    /// [`SystemConfig::addons`]: crate::config::SystemConfig::addons
    pub addon_stats: AddonStats,
    /// Alive workers assigned (or switching) to each ladder tier,
    /// cheapest first. Two entries on legacy runs, where they equal
    /// [`light_workers`](Self::light_workers) /
    /// [`heavy_workers`](Self::heavy_workers).
    pub tier_workers: Vec<usize>,
    /// Queries queued on each ladder tier's alive workers.
    pub tier_queues: Vec<usize>,
    /// Alive workers per ladder tier currently executing a batch.
    pub tier_busy: Vec<usize>,
    /// Cumulative escalations across each boundary so far (`[k]` counts
    /// tier `k` → `k + 1` hand-offs); length N-1.
    pub tier_escalations: Vec<u64>,
    /// Active per-boundary confidence thresholds; `thresholds[0]` equals
    /// [`threshold`](Self::threshold) on cascade policies.
    pub thresholds: Vec<f64>,
}

impl SessionSnapshot {
    /// Busy fraction of the alive workers on a tier (0 when the tier is
    /// empty).
    pub fn utilization(&self, tier: ModelTier) -> f64 {
        let (busy, total) = match tier {
            ModelTier::Light => (self.light_busy, self.light_workers),
            ModelTier::Heavy => (self.heavy_busy, self.heavy_workers),
        };
        if total == 0 {
            0.0
        } else {
            busy as f64 / total as f64
        }
    }
}

/// Rolling FID estimate for snapshots: a Gaussian fit over the most recent
/// completions only, so the cost per tap stays bounded no matter how long
/// the session runs. `NaN` with fewer than two responses.
///
/// This is the batch reference computation; the engines themselves
/// maintain a [`session_rolling_fid`] estimator so each completion costs
/// `O(d²)` instead of refitting the whole tail at every snapshot tap.
pub fn rolling_fid_estimate(responses: &[CompletedResponse], reference: &GaussianStats) -> f64 {
    let tail = &responses[responses.len().saturating_sub(FID_ESTIMATE_TAIL)..];
    fid_of_responses(tail, reference, FID_ESTIMATE_RIDGE)
}

/// The incremental rolling-FID estimator every backend keeps for its
/// snapshots, configured identically to [`rolling_fid_estimate`]: a
/// 256-response window with the same covariance ridge. Backends push each
/// completion's features as they record it and read
/// [`RollingFid::estimate`] at snapshot time.
pub fn session_rolling_fid(reference: &GaussianStats) -> RollingFid {
    RollingFid::new(reference.clone(), FID_ESTIMATE_TAIL, FID_ESTIMATE_RIDGE)
}

/// The outcome-draining protocol shared by every backend: clone the
/// completions recorded since `cursor` (advancing it), drain the pending
/// drop log, and merge the two streams back into recording order by
/// timestamp (each accumulates monotonically, so a stable sort suffices).
pub fn drain_outcomes(
    responses: &[CompletedResponse],
    cursor: &mut usize,
    drops: &mut Vec<(QueryId, SimTime, SimTime)>,
) -> Vec<QueryOutcome> {
    let mut out: Vec<QueryOutcome> = responses[*cursor..]
        .iter()
        .cloned()
        .map(QueryOutcome::Completed)
        .collect();
    *cursor = responses.len();
    out.extend(
        drops
            .drain(..)
            .map(|(id, arrival, at)| QueryOutcome::Dropped { id, arrival, at }),
    );
    out.sort_by_key(|o| match o {
        QueryOutcome::Completed(r) => r.completion,
        QueryOutcome::Dropped { at, .. } => *at,
    });
    out
}

/// Why a [`SessionBuilder`] refused to construct a session.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// No [`CascadeRuntime`] was supplied.
    MissingRuntime,
    /// The [`SystemConfig`] failed validation.
    Config(ConfigError),
    /// The [`RunSettings`] failed validation (e.g. a non-finite or
    /// non-positive peak-demand hint).
    Settings(ConfigError),
    /// The attached [`Scenario`] is invalid for the configured worker pool.
    Scenario(ScenarioError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingRuntime => {
                write!(f, "serving session needs a prepared CascadeRuntime")
            }
            BuildError::Config(e) => write!(f, "{e}"),
            BuildError::Settings(e) => write!(f, "invalid run settings: {e}"),
            BuildError::Scenario(e) => write!(f, "invalid scenario: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// The fully validated inputs a backend is constructed from. Exposed so
/// out-of-crate backends (the `diffserve-cluster` testbed) can reuse the
/// builder's validation and then assemble a session with
/// [`ServingSession::from_backend`].
#[derive(Debug, Clone)]
pub struct SessionSpec<'a> {
    /// Offline-prepared cascade artifacts.
    pub runtime: &'a CascadeRuntime,
    /// Cluster and controller configuration (validated).
    pub config: SystemConfig,
    /// Policy, ablations, allocator backend, peak-demand hint (validated).
    pub settings: RunSettings,
    /// Perturbation schedule replayed by the backend (validated against
    /// `config.num_workers`).
    pub scenario: Option<Scenario>,
}

/// One execution engine driving the DiffServe architecture: the
/// discrete-event simulator or the thread-based cluster testbed.
///
/// A backend is an *open-world* serving loop — queries are submitted one at
/// a time, time advances in increments, and outcomes drain as they happen —
/// in contrast to the closed-world batch `run_*` functions (which are now
/// wrappers over this trait). [`ServingSession`] owns a boxed backend and
/// is the intended way to drive one.
pub trait ServingBackend {
    /// Current serving time: the latest instant this backend has been
    /// advanced to.
    fn now(&self) -> SimTime;

    /// Enqueues one query and returns its ticket. Arrival times in the
    /// past are clamped to [`ServingBackend::now`].
    fn submit(&mut self, spec: QuerySpec) -> QueryTicket;

    /// Advances serving time to `until` (no-op if `until` is in the past).
    /// The simulator processes every event up to `until`; the testbed
    /// sleeps scaled wall-clock time while its threads serve.
    fn tick(&mut self, until: SimTime);

    /// Drains the outcomes (completions and drops) recorded since the last
    /// call, in recording order.
    fn drain_completions(&mut self) -> Vec<QueryOutcome>;

    /// Applies a capacity or difficulty perturbation. The simulator fires
    /// it at the next instant it advances; the testbed applies it
    /// immediately.
    ///
    /// # Errors
    ///
    /// Rejects churn that would leave fewer than two workers alive, or a
    /// recovery naming more workers than have failed.
    fn apply_perturbation(&mut self, event: ScenarioEvent) -> Result<(), ScenarioError>;

    /// A live metrics snapshot (queue depths, threshold, utilization,
    /// rolling FID).
    fn snapshot(&self) -> SessionSnapshot;

    /// Tears the backend down and assembles the final [`RunReport`].
    /// Queries still unfinished at `horizon` are accounted as drops, and
    /// time series are truncated at `horizon`.
    fn finish(self: Box<Self>, horizon: SimTime) -> RunReport;
}

/// Fluent builder for a [`ServingSession`]; validates the complete
/// configuration at [`SessionBuilder::build`] time.
///
/// # Examples
///
/// Typed errors instead of panics:
///
/// ```
/// use diffserve_core::prelude::*;
/// use diffserve_core::serve::BuildError;
///
/// // No runtime attached → MissingRuntime, not a panic.
/// let err = ServingSession::builder().build().unwrap_err();
/// assert_eq!(err, BuildError::MissingRuntime);
/// ```
#[derive(Debug, Clone)]
pub struct SessionBuilder<'a> {
    runtime: Option<&'a CascadeRuntime>,
    config: SystemConfig,
    policy: Policy,
    knobs: AblationKnobs,
    allocator: AllocatorBackend,
    peak_demand_hint: f64,
    settings: Option<RunSettings>,
    scenario: Option<Scenario>,
    backend: Backend,
}

impl Default for SessionBuilder<'_> {
    fn default() -> Self {
        SessionBuilder {
            runtime: None,
            config: SystemConfig::default(),
            policy: Policy::DiffServe,
            knobs: AblationKnobs::default(),
            allocator: AllocatorBackend::Exhaustive,
            peak_demand_hint: 1.0,
            settings: None,
            scenario: None,
            backend: Backend::Sim,
        }
    }
}

impl<'a> SessionBuilder<'a> {
    /// Attaches the prepared cascade artifacts (required).
    pub fn runtime(mut self, runtime: &'a CascadeRuntime) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Sets the system configuration (default: [`SystemConfig::default`]).
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the serving policy (default: [`Policy::DiffServe`]). Ignored if
    /// [`SessionBuilder::settings`] supplies full [`RunSettings`].
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the Fig. 8 allocator ablations. Ignored if
    /// [`SessionBuilder::settings`] supplies full [`RunSettings`].
    pub fn knobs(mut self, knobs: AblationKnobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Sets the allocator implementation (default: exhaustive grid scan).
    /// Ignored if [`SessionBuilder::settings`] supplies full
    /// [`RunSettings`].
    pub fn allocator(mut self, backend: AllocatorBackend) -> Self {
        self.allocator = backend;
        self
    }

    /// Sets the expected peak demand in QPS, which static policies
    /// provision for (default: 1.0). Ignored if
    /// [`SessionBuilder::settings`] supplies full [`RunSettings`].
    pub fn peak_demand(mut self, qps: f64) -> Self {
        self.peak_demand_hint = qps;
        self
    }

    /// Supplies complete [`RunSettings`], overriding
    /// [`SessionBuilder::policy`], [`SessionBuilder::knobs`],
    /// [`SessionBuilder::allocator`], and [`SessionBuilder::peak_demand`].
    pub fn settings(mut self, settings: RunSettings) -> Self {
        self.settings = Some(settings);
        self
    }

    /// Attaches a perturbation schedule the backend replays (worker churn
    /// and difficulty shifts; demand perturbations are expressed through
    /// what the application submits — e.g.
    /// [`ServingSession::replay_trace`] with
    /// [`Scenario::effective_trace`]).
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Selects the execution engine (default: [`Backend::Sim`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Validates every input and returns the assembled [`SessionSpec`]
    /// without constructing a backend — the hook out-of-crate backends
    /// (the cluster testbed) use to share the builder's validation.
    ///
    /// # Errors
    ///
    /// See [`SessionBuilder::build`].
    pub fn validate(self) -> Result<SessionSpec<'a>, BuildError> {
        let runtime = self.runtime.ok_or(BuildError::MissingRuntime)?;
        self.config.validate().map_err(BuildError::Config)?;
        let settings = self.settings.unwrap_or(RunSettings {
            policy: self.policy,
            knobs: self.knobs,
            backend: self.allocator,
            peak_demand_hint: self.peak_demand_hint,
        });
        settings.validate().map_err(BuildError::Settings)?;
        if runtime.num_tiers() > 2 && !settings.policy.uses_cascade() {
            return Err(BuildError::Settings(ConfigError::new(
                "an N-tier quality ladder requires a cascade policy \
                 (DiffServe or DiffServe-Static)",
            )));
        }
        if let Some(scenario) = &self.scenario {
            scenario
                .validate(self.config.num_workers)
                .map_err(BuildError::Scenario)?;
            // Hazard checks fire at `check/2 + k·check` (integer micros).
            // The incident record/replay loop is bit-exact only if no check
            // can ever share an instant with a control tick at `m·ci` (the
            // tick would observe pre- vs post-fault fleet state depending
            // on event order). The congruence `k·check ≡ -check/2 (mod ci)`
            // is solvable — a collision instant exists — iff
            // gcd(check, ci) divides check/2. The default (equal
            // intervals) is collision-free.
            if let Some(h) = scenario.hazard() {
                fn gcd(mut a: u64, mut b: u64) -> u64 {
                    while b != 0 {
                        (a, b) = (b, a % b);
                    }
                    a
                }
                let check = h.check_interval.as_micros();
                let ci = self.config.control_interval.as_micros();
                if (check / 2) % gcd(check, ci) == 0 {
                    return Err(BuildError::Scenario(ScenarioError::InvalidHazard {
                        reason: "hazard checks would collide with control ticks; \
                                 pick a check interval whose odd half-phases miss \
                                 the control grid (equal intervals work)",
                    }));
                }
            }
        }
        Ok(SessionSpec {
            runtime,
            config: self.config,
            settings,
            scenario: self.scenario,
        })
    }

    /// Validates the whole configuration and constructs the session.
    ///
    /// # Errors
    ///
    /// [`BuildError::MissingRuntime`] without a runtime;
    /// [`BuildError::Config`] for an invalid [`SystemConfig`];
    /// [`BuildError::Settings`] for invalid [`RunSettings`] (non-finite or
    /// non-positive peak-demand hint, out-of-range static threshold);
    /// [`BuildError::Scenario`] when the scenario's churn would exhaust the
    /// configured worker pool.
    pub fn build(self) -> Result<ServingSession<'a>, BuildError> {
        let backend_kind = self.backend;
        let spec = self.validate()?;
        let backend: Box<dyn ServingBackend + 'a> = match backend_kind {
            Backend::Sim => Box::new(SimBackend::new(&spec)),
        };
        Ok(ServingSession::from_backend(&spec, backend))
    }
}

/// An open serving session: the backend-agnostic engine behind the batch
/// `run_*` entry points, drivable incrementally.
///
/// Construct via [`ServingSession::builder`]; drive with
/// [`submit`](ServingSession::submit) /
/// [`run_until`](ServingSession::run_until) /
/// [`poll`](ServingSession::poll); close with
/// [`finish`](ServingSession::finish). See the [module docs](self) for a
/// complete example.
pub struct ServingSession<'a> {
    backend: Box<dyn ServingBackend + 'a>,
    config: SystemConfig,
    policy: Policy,
    observers: Vec<ObserverFn<'a>>,
    driven_until: SimTime,
    submitted: u64,
    /// Trend windows lowered from the attached scenario's style-shift
    /// perturbations; appended to the configured [`AddonMix`] when
    /// [`ServingSession::replay_trace`] draws per-query add-ons.
    addon_trends: Vec<TrendWindow>,
}

/// A registered live-metrics tap.
type ObserverFn<'a> = Box<dyn FnMut(&SessionSnapshot) + 'a>;

impl std::fmt::Debug for ServingSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingSession")
            .field("policy", &self.policy)
            .field("now", &self.backend.now())
            .field("submitted", &self.submitted)
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

impl<'a> ServingSession<'a> {
    /// Starts a fluent [`SessionBuilder`].
    pub fn builder() -> SessionBuilder<'a> {
        SessionBuilder::default()
    }

    /// Wraps an already-constructed backend in a session. Intended for
    /// out-of-crate [`ServingBackend`] implementations (the cluster
    /// testbed); in-crate callers should use [`SessionBuilder::build`].
    pub fn from_backend(spec: &SessionSpec<'a>, backend: Box<dyn ServingBackend + 'a>) -> Self {
        ServingSession {
            backend,
            config: spec.config.clone(),
            policy: spec.settings.policy,
            observers: Vec::new(),
            driven_until: SimTime::ZERO,
            submitted: 0,
            addon_trends: spec
                .scenario
                .as_ref()
                .map(|s| s.style_shift_windows())
                .unwrap_or_default(),
        }
    }

    /// The serving policy this session runs.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Current serving time.
    pub fn now(&self) -> SimTime {
        self.backend.now()
    }

    /// Queries submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Submits one query arriving now with an explicit deadline.
    pub fn submit(&mut self, prompt: Prompt, deadline: SimTime) -> QueryTicket {
        self.submit_spec(QuerySpec::new().prompt(prompt).deadline(deadline))
    }

    /// Submits one query from a full [`QuerySpec`] (scheduled arrivals,
    /// dataset prompts, SLO-default deadlines).
    pub fn submit_spec(&mut self, spec: QuerySpec) -> QueryTicket {
        self.submitted += 1;
        self.backend.submit(spec)
    }

    /// Replays a demand trace: draws the canonical seeded Poisson arrival
    /// stream (identical to what the batch `run_*` wrappers serve, so
    /// comparisons are paired) and submits one dataset query per arrival.
    /// With [`SystemConfig::addons`] configured, each arrival additionally
    /// draws its add-on requirement from the configured [`AddonMix`]
    /// (extended with the scenario's style-shift trend windows) — the draw
    /// is keyed by query id from a separate seed stream, so enabling
    /// add-ons leaves the arrival instants bit-identical. Returns the
    /// number of queries submitted.
    pub fn replay_trace(&mut self, trace: &Trace) -> u64 {
        let mut rng = seeded_rng(derive_seed(self.config.seed, ARRIVAL_SEED_STREAM));
        let arrivals = poisson_arrivals(trace, &mut rng);
        let n = arrivals.len() as u64;
        let mix: Option<AddonMix> = self.config.addons.as_ref().map(|a| {
            let mut mix = a.mix.clone();
            for w in &self.addon_trends {
                mix = mix.with_trend(*w);
            }
            mix
        });
        for t in arrivals {
            let mut spec = QuerySpec::new().at(t);
            if let Some(mix) = &mix {
                // The pre-increment counter is exactly the id the backend
                // will assign (both engines number queries from 0).
                if let Some(id) = mix.draw(self.submitted, t) {
                    spec = spec.addon(id);
                }
            }
            self.submit_spec(spec);
        }
        n
    }

    /// Advances serving time to `until`. With observers registered, the
    /// advance happens in control-interval steps and every observer is
    /// called with a fresh [`SessionSnapshot`] after each step.
    pub fn run_until(&mut self, until: SimTime) {
        if self.observers.is_empty() {
            self.backend.tick(until);
        } else {
            let step = self.config.control_interval;
            let mut t = self.backend.now();
            while t < until {
                t = (t + step).min(until);
                self.backend.tick(t);
                let snap = self.backend.snapshot();
                for obs in &mut self.observers {
                    obs(&snap);
                }
            }
        }
        if until > self.driven_until {
            self.driven_until = until;
        }
    }

    /// Drains outcomes (completions and drops) recorded since the last
    /// poll.
    pub fn poll(&mut self) -> Vec<QueryOutcome> {
        self.backend.drain_completions()
    }

    /// Registers a live metrics tap invoked after every control-interval
    /// step of [`ServingSession::run_until`].
    pub fn observer(&mut self, observer: impl FnMut(&SessionSnapshot) + 'a) {
        self.observers.push(Box::new(observer));
    }

    /// A live metrics snapshot right now.
    pub fn snapshot(&self) -> SessionSnapshot {
        self.backend.snapshot()
    }

    /// Injects a capacity or difficulty perturbation mid-run — the online
    /// counterpart of attaching a [`Scenario`] at build time.
    ///
    /// # Errors
    ///
    /// Rejects churn that would leave fewer than two workers alive, or a
    /// recovery naming more workers than have failed.
    pub fn inject(&mut self, event: ScenarioEvent) -> Result<(), ScenarioError> {
        self.backend.apply_perturbation(event)
    }

    /// Ends the session: unfinished queries are accounted as drops at the
    /// latest driven instant, time series are truncated there, and the
    /// final [`RunReport`] — identical in shape and accounting to the batch
    /// `run_*` functions' — is assembled.
    pub fn finish(self) -> RunReport {
        let horizon = self.driven_until.max(self.backend.now());
        self.backend.finish(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
    use diffserve_simkit::time::SimDuration;
    use std::sync::OnceLock;

    fn test_runtime() -> &'static CascadeRuntime {
        static RT: OnceLock<CascadeRuntime> = OnceLock::new();
        RT.get_or_init(|| {
            CascadeRuntime::prepare(
                cascade1(FeatureSpec::default()),
                600,
                13,
                DiscriminatorConfig {
                    train_prompts: 300,
                    epochs: 4,
                    ..Default::default()
                },
            )
        })
    }

    fn small_config() -> SystemConfig {
        SystemConfig {
            num_workers: 4,
            ..Default::default()
        }
    }

    #[test]
    fn builder_rejects_missing_runtime() {
        assert_eq!(
            ServingSession::builder().build().unwrap_err(),
            BuildError::MissingRuntime
        );
    }

    #[test]
    fn builder_rejects_invalid_config() {
        let err = ServingSession::builder()
            .runtime(test_runtime())
            .config(SystemConfig {
                num_workers: 1,
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Config(_)), "{err}");
    }

    #[test]
    fn builder_rejects_bad_peak_demand() {
        for bad in [f64::NAN, f64::INFINITY, 0.0, -3.0] {
            let err = ServingSession::builder()
                .runtime(test_runtime())
                .config(small_config())
                .peak_demand(bad)
                .build()
                .unwrap_err();
            assert!(matches!(err, BuildError::Settings(_)), "hint {bad}: {err}");
        }
    }

    #[test]
    fn builder_rejects_exhausting_scenario() {
        let trace = Trace::constant(2.0, SimDuration::from_secs(10)).unwrap();
        let scenario = Scenario::new("bad", trace).worker_fail(SimTime::from_secs(1), 3);
        let err = ServingSession::builder()
            .runtime(test_runtime())
            .config(small_config())
            .scenario(scenario)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Scenario(_)), "{err}");
    }

    #[test]
    fn builder_rejects_hazard_colliding_with_control_ticks() {
        use diffserve_trace::Hazard;
        let trace = Trace::constant(2.0, SimDuration::from_secs(10)).unwrap();
        // A 1 s control interval puts ticks on every odd second — exactly
        // where a 2 s hazard's half-phase checks land; replay would not be
        // bit-exact, so the builder must refuse.
        let colliding = SystemConfig {
            num_workers: 4,
            control_interval: SimDuration::from_secs(1),
            ..Default::default()
        };
        let scenario = Scenario::new("hazardous", trace.clone()).with_hazard(Hazard::default());
        let err = ServingSession::builder()
            .runtime(test_runtime())
            .config(colliding)
            .scenario(scenario.clone())
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::Scenario(ScenarioError::InvalidHazard { .. })
        ));
        // The default (equal intervals) is collision-free and accepted.
        assert!(ServingSession::builder()
            .runtime(test_runtime())
            .config(small_config())
            .scenario(scenario)
            .build()
            .is_ok());
    }

    #[test]
    fn inject_rejects_zero_count_capacity_events() {
        use diffserve_trace::CapacityEvent;
        let mut session = ServingSession::builder()
            .runtime(test_runtime())
            .config(small_config())
            .build()
            .expect("valid session");
        for event in [
            CapacityEvent::Fail(0),
            CapacityEvent::Recover(0),
            CapacityEvent::Degrade(0, 2.0),
            CapacityEvent::Restore(0),
        ] {
            let err = session.inject(ScenarioEvent::Capacity(event)).unwrap_err();
            assert_eq!(err, ScenarioError::ZeroWorkers, "{event:?}");
        }
        // Nothing landed in the incident log, so the run stays replayable.
        let report = session.finish();
        assert!(report.incident_log.is_empty());
    }

    #[test]
    fn streaming_submit_poll_finish() {
        let mut session = ServingSession::builder()
            .runtime(test_runtime())
            .config(small_config())
            .policy(Policy::DiffServe)
            .build()
            .expect("valid session");
        let mut tickets = Vec::new();
        for i in 0..6 {
            let prompt = *test_runtime().dataset.prompt_cyclic(i);
            let deadline = session.now() + SimDuration::from_secs(5);
            tickets.push(session.submit(prompt, deadline));
        }
        assert_eq!(tickets.len(), 6);
        assert_eq!(tickets[5].id, QueryId(5));
        session.run_until(SimTime::from_secs(40));
        let outcomes = session.poll();
        assert_eq!(outcomes.len(), 6, "all queries should resolve");
        // Polling again yields nothing new.
        let mut session = session;
        assert!(session.poll().is_empty());
        let report = session.finish();
        assert_eq!(report.total_queries, 6);
        assert_eq!(report.completed + report.dropped, 6);
    }

    #[test]
    fn observer_sees_threshold_and_progress() {
        let mut session = ServingSession::builder()
            .runtime(test_runtime())
            .config(small_config())
            .policy(Policy::DiffServe)
            .build()
            .expect("valid session");
        let trace = Trace::constant(3.0, SimDuration::from_secs(20)).unwrap();
        session.replay_trace(&trace);
        let snaps = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = snaps.clone();
        session.observer(move |s: &SessionSnapshot| sink.borrow_mut().push(s.clone()));
        session.run_until(SimTime::from_secs(30));
        let snaps = snaps.borrow();
        assert!(!snaps.is_empty());
        let last = snaps.last().unwrap();
        assert!(last.completed + last.dropped > 0);
        assert!(last.threshold.is_finite());
        assert!(last.light_workers + last.heavy_workers + last.failed_workers <= 4);
    }

    #[test]
    fn inject_rejects_pool_exhaustion() {
        use diffserve_trace::CapacityEvent;
        let mut session = ServingSession::builder()
            .runtime(test_runtime())
            .config(small_config())
            .build()
            .expect("valid session");
        let err = session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Fail(3)))
            .unwrap_err();
        assert!(matches!(err, ScenarioError::PoolExhausted { .. }));
        // Failing 2 of 4 is fine; recovering 3 is not.
        session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Fail(2)))
            .expect("2 of 4 may fail");
        let err = session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Recover(3)))
            .unwrap_err();
        assert!(matches!(err, ScenarioError::RecoverWithoutFailure { .. }));
    }

    #[test]
    fn back_to_back_injections_compose_without_a_tick() {
        use diffserve_trace::CapacityEvent;
        let mut session = ServingSession::builder()
            .runtime(test_runtime())
            .config(small_config())
            .build()
            .expect("valid session");
        // Validation must project over scheduled-but-unfired injections:
        // a second Fail(2) on a 4-worker pool is rejected even before any
        // time has passed...
        session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Fail(2)))
            .expect("2 of 4 may fail");
        let err = session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Fail(2)))
            .unwrap_err();
        assert!(matches!(err, ScenarioError::PoolExhausted { .. }));
        // ...and an immediate fail→recover round trip is accepted, like the
        // cluster backend's immediate application.
        session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Recover(2)))
            .expect("recover the 2 pending failures");
        session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Fail(2)))
            .expect("pool is projected whole again");
        session.run_until(SimTime::from_secs(5));
        assert_eq!(session.snapshot().failed_workers, 2);
    }

    #[test]
    fn finish_accounts_submissions_past_the_horizon() {
        let mut session = ServingSession::builder()
            .runtime(test_runtime())
            .config(small_config())
            .build()
            .expect("valid session");
        // One query inside the driven window, one scheduled far past it.
        session.submit_spec(QuerySpec::new().at(SimTime::from_secs(1)));
        session.submit_spec(QuerySpec::new().at(SimTime::from_secs(500)));
        session.run_until(SimTime::from_secs(30));
        let report = session.finish();
        assert_eq!(report.total_queries, 2, "never-arrived submission counts");
        assert_eq!(report.completed + report.dropped, report.total_queries);
        assert!(report.dropped >= 1, "the future submission is a drop");
    }

    #[test]
    fn build_error_display() {
        let e = BuildError::MissingRuntime;
        assert!(format!("{e}").contains("CascadeRuntime"));
    }
}
