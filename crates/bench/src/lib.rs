//! # diffserve-bench
//!
//! Experiment harness for the DiffServe reproduction: one binary per table
//! and figure of the paper (run with
//! `cargo run -p diffserve-bench --release --bin figN`), plus Criterion
//! benches for the performance claims (`cargo bench -p diffserve-bench`).
//!
//! Binaries write their series as CSV under `results/` and print the same
//! rows to stdout; `EXPERIMENTS.md` records paper-vs-measured for each.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fs;
use std::io::Write;
use std::path::PathBuf;

use diffserve_core::CascadeRuntime;
use diffserve_imagegen::{
    cascade1, cascade2, cascade3, CascadeSpec, DiscriminatorConfig, FeatureSpec, TierLadder,
};

/// Standard seed shared by all experiments for reproducibility.
pub const EXPERIMENT_SEED: u64 = 20250509;

/// Number of prompts in the standard evaluation datasets (the paper uses
/// the first 5K text–image pairs).
pub const DATASET_SIZE: usize = 5000;

/// Directory where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes rows as CSV under `results/{name}.csv` and returns the path.
///
/// # Panics
///
/// Panics on I/O errors — experiments should fail loudly.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path
}

/// A minimal fixed-width table printer for experiment stdout.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("| {} |", joined.join(" | "));
        };
        line(&self.headers);
        println!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            line(r);
        }
    }

    /// The rows, for CSV reuse.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

/// Which paper cascade to prepare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeId {
    /// SD-Turbo → SDv1.5 (MS-COCO, SLO 5 s).
    One,
    /// SDXS → SDv1.5 (MS-COCO, SLO 5 s).
    Two,
    /// SDXL-Lightning → SDXL (DiffusionDB, SLO 15 s).
    Three,
}

impl CascadeId {
    /// The cascade spec with default feature geometry.
    pub fn spec(self) -> CascadeSpec {
        let fs = FeatureSpec::default();
        match self {
            CascadeId::One => cascade1(fs),
            CascadeId::Two => cascade2(fs),
            CascadeId::Three => cascade3(fs),
        }
    }

    /// Artifact-style short name.
    pub fn name(self) -> &'static str {
        match self {
            CascadeId::One => "sdturbo",
            CascadeId::Two => "sdxs",
            CascadeId::Three => "sdxlltn",
        }
    }
}

/// Prepares a full cascade runtime at standard experiment scale
/// (5K prompts, 1K-prompt discriminator training set).
pub fn prepare_runtime(id: CascadeId) -> CascadeRuntime {
    CascadeRuntime::prepare(
        id.spec(),
        DATASET_SIZE,
        EXPERIMENT_SEED,
        DiscriminatorConfig::default(),
    )
}

/// Prepares a reduced-scale runtime for fast iteration (used by the
/// Criterion benches so they spend their time on the system under test,
/// not on setup).
pub fn prepare_runtime_small(id: CascadeId) -> CascadeRuntime {
    CascadeRuntime::prepare(
        id.spec(),
        1500,
        EXPERIMENT_SEED,
        DiscriminatorConfig {
            train_prompts: 500,
            epochs: 10,
            ..Default::default()
        },
    )
}

/// Prepares an N-tier quality-ladder runtime at standard experiment scale
/// (same dataset size, seed, and discriminator config as
/// [`prepare_runtime`], so ladder-vs-cascade comparisons share their
/// prompt stream).
pub fn prepare_ladder_runtime(ladder: TierLadder) -> CascadeRuntime {
    CascadeRuntime::prepare_ladder(
        ladder,
        DATASET_SIZE,
        EXPERIMENT_SEED,
        DiscriminatorConfig::default(),
    )
}

/// Reduced-scale ladder runtime matching [`prepare_runtime_small`] (CI
/// smoke runs).
pub fn prepare_ladder_runtime_small(ladder: TierLadder) -> CascadeRuntime {
    CascadeRuntime::prepare_ladder(
        ladder,
        1500,
        EXPERIMENT_SEED,
        DiscriminatorConfig {
            train_prompts: 500,
            epochs: 10,
            ..Default::default()
        },
    )
}

/// Formats a float with 2 decimals (experiment table convention).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows().len(), 1);
        t.print(); // must not panic
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn cascade_ids_map_to_specs() {
        assert_eq!(CascadeId::One.spec().name, "sdturbo");
        assert_eq!(CascadeId::Two.spec().name, "sdxs");
        assert_eq!(CascadeId::Three.spec().name, "sdxlltn");
        assert_eq!(CascadeId::Three.name(), "sdxlltn");
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.1234), "0.123");
    }
}
