//! Extension experiment: the N-tier quality ladder vs the two-tier cascade.
//!
//! The paper's cascade is a two-rung ladder: every query pays the light
//! model first and escalates at most once. With an ordered `TierLadder`
//! the controller instead solves worker counts and a *threshold vector*
//! over N tiers, mid tiers catch queries that are too hard for the entry
//! model but don't need the full heavy pass, and the online predictive
//! router sends predicted-hard prompts straight to a deeper tier so they
//! skip the compute they were going to discard anyway.
//!
//! This benchmark runs the nine standard scenarios twice — the two-tier
//! Cascade 1 baseline vs the 3-tier `ladder3` (same entry and terminal
//! models, SDv1.5-DPMS++ in between) with predictive routing — and
//! compares latency, GPU-time per query, FID, and SLO violations. Rows go
//! to `results/ext_ladder.csv` and stdout.
//!
//! The acceptance gate (CI runs `--smoke`): over the scenario means, the
//! ladder must show equal-or-fewer SLO violations AND lower mean GPU-time
//! per query than the two-tier always-light-first baseline, with some
//! traffic actually settling on the mid tier. Any regression exits
//! nonzero.
//!
//! Usage: `ext_ladder [--smoke]`
//!
//! * `--smoke` — CI-sized run: reduced runtime (1.5K prompts, small
//!   discriminator) and a shorter base trace, same scenario coverage and
//!   the same verdict checks.

use diffserve_bench::{
    f3, prepare_ladder_runtime, prepare_ladder_runtime_small, prepare_runtime,
    prepare_runtime_small, write_csv, CascadeId, Table,
};
use diffserve_core::{run_scenario, LadderConfig, Policy, RunReport, RunSettings, SystemConfig};
use diffserve_imagegen::{ladder3, FeatureSpec};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::{standard_scenarios, Trace};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (two_tier, ladder) = if smoke {
        (
            prepare_runtime_small(CascadeId::One),
            prepare_ladder_runtime_small(ladder3(FeatureSpec::default())),
        )
    } else {
        (
            prepare_runtime(CascadeId::One),
            prepare_ladder_runtime(ladder3(FeatureSpec::default())),
        )
    };
    let secs = if smoke { 40 } else { 90 };
    // A deliberately capacity-constrained fleet: with the default 16
    // workers the solver has enough slack to push every query to the
    // terminal tier on both configs and the comparison is vacuous. At 8
    // workers the two-tier baseline runs tight (nonzero violations) and
    // the ladder must actually exploit the mid tier to win.
    let system = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    let mut ladder_system = system.clone();
    ladder_system.ladder = Some(LadderConfig::default());

    let base = Trace::constant(6.0, SimDuration::from_secs(secs)).expect("valid trace");
    let scenarios = standard_scenarios(&base, system.num_workers);

    println!(
        "== quality ladder: two-tier cascade vs 3-tier ladder + predictive routing ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let mut t = Table::new(&[
        "scenario",
        "config",
        "lat_s",
        "gpu_s_per_q",
        "fid",
        "viol",
        "tier_completions",
    ]);
    let mut rows = Vec::new();
    let mut pairs: Vec<(String, RunReport, RunReport)> = Vec::new();
    for scenario in &scenarios {
        let peak = scenario.effective_trace().max_qps();
        let settings = RunSettings::new(Policy::DiffServe, peak);
        let baseline = run_scenario(&two_tier, &system, &settings, scenario);
        let laddered = run_scenario(&ladder, &ladder_system, &settings, scenario);
        for (config, r) in [("two_tier", &baseline), ("ladder3", &laddered)] {
            let completions = r
                .tier_breakdown
                .iter()
                .map(|s| s.completions.to_string())
                .collect::<Vec<_>>()
                .join("/");
            let cells = vec![
                scenario.name().to_string(),
                config.to_string(),
                f3(r.mean_latency),
                f3(r.gpu_time_per_query),
                f3(r.fid),
                f3(r.violation_ratio),
                completions,
            ];
            t.row(cells.clone());
            rows.push(cells);
        }
        pairs.push((scenario.name().to_string(), baseline, laddered));
    }
    t.print();

    let mean = |f: &dyn Fn(&RunReport) -> f64, side: usize| {
        pairs
            .iter()
            .map(|p| f(if side == 0 { &p.1 } else { &p.2 }))
            .sum::<f64>()
            / pairs.len() as f64
    };
    let gpu = (
        mean(&|r| r.gpu_time_per_query, 0),
        mean(&|r| r.gpu_time_per_query, 1),
    );
    let viol = (
        mean(&|r| r.violation_ratio, 0),
        mean(&|r| r.violation_ratio, 1),
    );
    let lat = (mean(&|r| r.mean_latency, 0), mean(&|r| r.mean_latency, 1));
    let fid = (mean(&|r| r.fid, 0), mean(&|r| r.fid, 1));
    let mid_tier_completions: u64 = pairs
        .iter()
        .flat_map(|p| p.2.tier_breakdown.iter())
        .filter(|s| s.tier > 0 && s.tier < 2)
        .map(|s| s.completions)
        .sum();
    println!(
        "\nscenario means (two-tier -> ladder3): gpu/query {:.3}s -> {:.3}s ({:+.1}%), \
         violations {:.4} -> {:.4}, e2e latency {:.3}s -> {:.3}s, fid {:.2} -> {:.2}, \
         mid-tier completions {}",
        gpu.0,
        gpu.1,
        100.0 * (gpu.1 / gpu.0 - 1.0),
        viol.0,
        viol.1,
        lat.0,
        lat.1,
        fid.0,
        fid.1,
        mid_tier_completions,
    );

    let path = write_csv(
        "ext_ladder",
        &[
            "scenario",
            "config",
            "lat_s",
            "gpu_s_per_q",
            "fid",
            "viol",
            "tier_completions",
        ],
        &rows,
    );
    println!("wrote {}", path.display());

    // The acceptance gate: over the scenario means the ladder must not
    // lose on SLO violations and must strictly win on GPU-time per query,
    // and the mid tier must actually serve traffic (otherwise the ladder
    // degenerated to the two-tier baseline and the comparison is vacuous).
    let mut ok = true;
    if viol.1 > viol.0 {
        println!(
            "FAIL: scenario-mean violations {:.4} > two-tier {:.4}",
            viol.1, viol.0
        );
        ok = false;
    }
    if gpu.1 >= gpu.0 {
        println!(
            "FAIL: scenario-mean gpu/query {:.3} !< two-tier {:.3}",
            gpu.1, gpu.0
        );
        ok = false;
    }
    if mid_tier_completions == 0 {
        println!("FAIL: the mid tier never completed a query");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!("PASS: ladder3 + predictive routing at equal-or-fewer violations and lower GPU-time");
}
