//! Incident record/replay across the policy matrix.
//!
//! The fault engine closes the loop from "a weird run happened" to "it's
//! now a regression test": every perturbation a run actually fired lands in
//! the report's incident log, and [`Scenario::replay`] lowers that log back
//! into a replayable scenario. This experiment exercises the loop at matrix
//! scale: one hazard-bearing stress run is *recorded* under DiffServe, then
//! the exact same incident history is *replayed* through all five serving
//! policies — so the comparison isolates policy behavior under an identical
//! fault timeline instead of letting each policy's load trajectory draw its
//! own hazards.
//!
//! Rows (one per policy: violations, latency, FID, drops, incident count)
//! go to `results/replay_matrix.csv` and stdout. The binary fails if the
//! replayed DiffServe run diverges from the recording (the simulator
//! promises bit-exact replay) or if any policy fails to complete queries.
//!
//! Usage: `replay_matrix [--smoke]`

use diffserve_bench::{f3, prepare_runtime, prepare_runtime_small, write_csv, CascadeId, Table};
use diffserve_core::{run_scenario, Policy, RunSettings, SystemConfig};
use diffserve_simkit::time::{SimDuration, SimTime};
use diffserve_trace::{Hazard, Scenario, Trace};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runtime = if smoke {
        prepare_runtime_small(CascadeId::One)
    } else {
        prepare_runtime(CascadeId::One)
    };
    let secs = if smoke { 40 } else { 90 };
    let system = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };

    // --- Record: one stress run under load-coupled hazards --------------
    let base = Trace::constant(6.0, SimDuration::from_secs(secs)).expect("valid trace");
    let dur = base.duration().as_secs_f64();
    let stress = Scenario::new("stress", base)
        .flash_crowd(
            SimTime::from_secs_f64(0.3 * dur),
            SimDuration::from_secs_f64(0.05 * dur),
            SimDuration::from_secs_f64(0.2 * dur),
            2.0,
        )
        .with_hazard(Hazard {
            // Hot enough that the recording reliably contains incidents.
            fail_rate: 0.01,
            degrade_rate: 0.03,
            ..Hazard::default()
        });
    let peak = stress.effective_trace().max_qps();
    let recorded = run_scenario(
        &runtime,
        &system,
        &RunSettings::new(Policy::DiffServe, peak),
        &stress,
    );
    println!(
        "recorded {} incidents over {}s of DiffServe under hazard",
        recorded.incident_log.len(),
        secs
    );

    // --- Replay: the same incident history through every policy ----------
    let replayed = stress.replay(&recorded.incident_log);
    let mut t = Table::new(&["policy", "viol", "lat_s", "fid", "dropped", "incidents"]);
    let mut rows = Vec::new();
    let mut ok = true;
    if recorded.incident_log.is_empty() {
        println!("FAIL: recording fired no incidents; the replay would be vacuous");
        ok = false;
    }
    let mut diffserve_viol = f64::NAN;
    for policy in Policy::all() {
        let r = run_scenario(
            &runtime,
            &system,
            &RunSettings::new(policy, peak),
            &replayed,
        );
        if policy == Policy::DiffServe {
            diffserve_viol = r.violation_ratio;
            // Bit-exact replay: same engine, same seed, same fault
            // timeline — the replayed run must reproduce the recording.
            if r.violation_ratio != recorded.violation_ratio
                || r.total_queries != recorded.total_queries
                || r.incident_log != recorded.incident_log
            {
                println!(
                    "FAIL: DiffServe replay diverged from recording \
                     (viol {:.6} vs {:.6}, queries {} vs {})",
                    r.violation_ratio,
                    recorded.violation_ratio,
                    r.total_queries,
                    recorded.total_queries
                );
                ok = false;
            }
        }
        if r.completed == 0 {
            println!("FAIL: {} completed nothing under replay", policy.name());
            ok = false;
        }
        let cells = vec![
            policy.name().to_string(),
            f3(r.violation_ratio),
            f3(r.mean_latency),
            f3(r.fid),
            r.dropped.to_string(),
            r.incident_log.len().to_string(),
        ];
        t.row(cells.clone());
        rows.push(cells);
    }
    t.print();
    println!(
        "\nReading: every policy faces the identical fault timeline; DiffServe's \
         replay (viol {diffserve_viol:.3}) is bit-exact against the recording."
    );

    let path = write_csv(
        "replay_matrix",
        &["policy", "viol", "lat_s", "fid", "dropped", "incidents"],
        &rows,
    );
    println!("wrote {}", path.display());
    if !ok {
        std::process::exit(1);
    }
    println!("PASS: incident replay is bit-exact and every policy survives the recorded timeline");
}
