//! Figure 5: time-series comparison on the real-world (Azure-style) trace,
//! Cascade 1 on 16 workers: demand, FID over time, and SLO violations over
//! time for all five policies.
//!
//! Paper claims to reproduce (shape): Clipper-Light flat-worst FID, near
//! zero violations; Clipper-Heavy best model but up to ~75% violations at
//! peak; Proteus <5% better than Clipper-Light on quality; DiffServe-Static
//! query-aware but up to ~19% violations at peak; DiffServe best FID
//! off-peak (better than Clipper-Heavy), low violations throughout, quality
//! gracefully degrading toward the peak.

use diffserve_bench::{f2, f3, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_core::{run_trace, AllocatorBackend, Policy, RunSettings, SystemConfig};
use diffserve_trace::{synthesize_azure_trace, AzureTraceConfig};

fn main() {
    let runtime = prepare_runtime(CascadeId::One);
    let config = SystemConfig::default();
    let trace = synthesize_azure_trace(&AzureTraceConfig::default()).expect("valid trace");
    println!(
        "trace: {:.0}..{:.0} QPS over {:.0}s (azure-style diurnal)",
        trace.min_qps(),
        trace.max_qps(),
        trace.duration().as_secs_f64()
    );

    let mut rows = Vec::new();
    let mut summary = Table::new(&[
        "policy",
        "avg_fid",
        "overall_fid",
        "slo_violation",
        "peak_violation",
        "offpeak_fid",
    ]);

    for policy in Policy::all() {
        let mut settings = RunSettings::new(policy, trace.max_qps());
        // Use the MILP backend for the headline experiment — the paper's
        // method end to end.
        settings.backend = AllocatorBackend::Milp;
        let r = run_trace(&runtime, &config, &settings, &trace);

        // Off-peak FID: mean of windows in the first 20% of the trace.
        let cutoff = trace.duration().as_secs_f64() * 0.2;
        let offpeak: Vec<f64> = r
            .fid_series
            .iter()
            .filter(|(t, _)| *t <= cutoff)
            .map(|(_, f)| *f)
            .collect();
        let offpeak_fid = if offpeak.is_empty() {
            f64::NAN
        } else {
            offpeak.iter().sum::<f64>() / offpeak.len() as f64
        };
        let peak_violation = r
            .violation_series
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max);

        summary.row(vec![
            policy.name().into(),
            f2(r.mean_windowed_fid),
            f2(r.fid),
            f3(r.violation_ratio),
            f3(peak_violation),
            f2(offpeak_fid),
        ]);

        for (t, f) in &r.fid_series {
            rows.push(vec![policy.name().into(), "fid".into(), f2(*t), f3(*f)]);
        }
        for (t, v) in &r.violation_series {
            rows.push(vec![
                policy.name().into(),
                "violation".into(),
                f2(*t),
                f3(*v),
            ]);
        }
        for (t, d) in &r.demand_series {
            rows.push(vec![policy.name().into(), "demand".into(), f2(*t), f3(*d)]);
        }
        for (t, th) in &r.threshold_series {
            rows.push(vec![
                policy.name().into(),
                "threshold".into(),
                f2(*t),
                f3(*th),
            ]);
        }
    }

    println!("\n== Fig 5 summary ==");
    summary.print();
    let path = write_csv("fig5", &["policy", "series", "time_s", "value"], &rows);
    println!("\nwrote {}", path.display());
}
