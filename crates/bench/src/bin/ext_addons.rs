//! Extension experiment: add-on-aware serving.
//!
//! Production diffusion traffic carries add-on modules (LoRA styles,
//! ControlNet conditioners) that a worker must load before serving — and a
//! cache miss charges the module's load latency to the whole batch. This
//! benchmark gates the affinity-aware router against the affinity-blind
//! ablation under the adversarial `style-shift-flash-crowd` scenario: a
//! flash crowd whose add-on demand simultaneously pivots onto one
//! previously-cold module.
//!
//! Both modes run at equal fleet size over the same seeded query stream
//! (the per-query add-on draw is routing-independent), so the only degree
//! of freedom is where add-on queries land. The verdict requires the
//! affinity-aware router to *strictly* beat affinity-blind JSQ on both SLO
//! violations and mean swap time on the style-shift flash crowd; a
//! regression fails the binary (CI runs `--smoke`). Rows go to
//! `results/ext_addons.csv` and stdout.
//!
//! Usage: `ext_addons [--smoke]`
//!
//! * `--smoke` — CI-sized run: reduced runtime (1.5K prompts, small
//!   discriminator) and a shorter base trace, same scenario coverage and
//!   the same verdict checks.

use diffserve_bench::{
    f3, prepare_runtime, prepare_runtime_small, write_csv, CascadeId, Table, EXPERIMENT_SEED,
};
use diffserve_core::{
    run_scenario, AblationKnobs, AddonsConfig, Policy, RunReport, RunSettings, SystemConfig,
};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::{style_shift_flash_crowd, Scenario, Trace};

/// The module the flash crowd pivots onto: deliberately unpopular under
/// the Zipf baseline, so it is cold on most caches when the shift hits.
const SHIFT_MODULE: usize = 9;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runtime = if smoke {
        prepare_runtime_small(CascadeId::One)
    } else {
        prepare_runtime(CascadeId::One)
    };
    let secs = if smoke { 40 } else { 90 };
    let system = SystemConfig {
        num_workers: 8,
        addons: Some(AddonsConfig::demo(EXPERIMENT_SEED)),
        ..Default::default()
    };

    let base = Trace::constant(6.0, SimDuration::from_secs(secs)).expect("valid trace");
    let scenarios: Vec<(&str, Scenario)> = vec![
        ("steady", Scenario::new("steady", base.clone())),
        (
            "style-shift-flash-crowd",
            style_shift_flash_crowd(&base, SHIFT_MODULE),
        ),
    ];

    println!(
        "== add-on serving: affinity-aware vs affinity-blind routing ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let mut t = Table::new(&[
        "scenario",
        "routing",
        "viol",
        "lat_s",
        "hit_rate",
        "mean_swap_s",
        "fid",
    ]);
    let mut rows = Vec::new();
    let mut pairs: Vec<(String, RunReport, RunReport)> = Vec::new();
    for (name, scenario) in &scenarios {
        let peak = scenario.effective_trace().max_qps();
        let aware_settings = RunSettings::new(Policy::DiffServe, peak);
        let mut blind_settings = RunSettings::new(Policy::DiffServe, peak);
        blind_settings.knobs = AblationKnobs::affinity_blind();
        let aware = run_scenario(&runtime, &system, &aware_settings, scenario);
        let blind = run_scenario(&runtime, &system, &blind_settings, scenario);
        for (mode, r) in [("affinity-aware", &aware), ("affinity-blind", &blind)] {
            let cells = vec![
                name.to_string(),
                mode.to_string(),
                f3(r.violation_ratio),
                f3(r.mean_latency),
                f3(r.addon_stats.total_hit_rate()),
                f3(r.addon_stats.total_mean_swap_secs()),
                f3(r.fid),
            ];
            t.row(cells.clone());
            rows.push(cells);
        }
        pairs.push((name.to_string(), aware, blind));
    }
    t.print();

    let path = write_csv(
        "ext_addons",
        &[
            "scenario",
            "routing",
            "viol",
            "lat_s",
            "hit_rate",
            "mean_swap_s",
            "fid",
        ],
        &rows,
    );
    println!("wrote {}", path.display());

    // The acceptance gate: on the adversarial style-shift flash crowd, at
    // equal fleet size and over the identical add-on draw, affinity-aware
    // routing must strictly beat the blind ablation on SLO violations AND
    // mean swap time. Everywhere, both modes must actually exercise the
    // cache (a zero-lookup run means the draw is broken, not that routing
    // is perfect).
    let mut ok = true;
    for (name, aware, blind) in &pairs {
        if aware.addon_stats.total_lookups() == 0 || blind.addon_stats.total_lookups() == 0 {
            println!("FAIL {name}: no add-on lookups recorded");
            ok = false;
        }
    }
    let (_, aware, blind) = pairs
        .iter()
        .find(|(n, _, _)| n == "style-shift-flash-crowd")
        .expect("gate scenario present");
    if aware.violation_ratio >= blind.violation_ratio {
        println!(
            "FAIL style-shift-flash-crowd: violations {:.4} !< {:.4}",
            aware.violation_ratio, blind.violation_ratio
        );
        ok = false;
    }
    let (aware_swap, blind_swap) = (
        aware.addon_stats.total_mean_swap_secs(),
        blind.addon_stats.total_mean_swap_secs(),
    );
    if aware_swap >= blind_swap {
        println!("FAIL style-shift-flash-crowd: mean swap {aware_swap:.4} !< {blind_swap:.4}");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!(
        "PASS: affinity-aware routing beats affinity-blind on violations and swap time \
         under the style-shift flash crowd"
    );
}
