//! Performance baseline for the serving engine.
//!
//! Three workloads, exported to `BENCH_sim.json` so every future PR has a
//! trajectory to beat:
//!
//! 1. **Azure replay at fleet scale** — the diurnal `trace::azure` curve
//!    replayed on a 1000-worker fleet through the arena-flattened
//!    simulator (per-tier sorted load index, reused batch buffers). Two
//!    sizes: the historical `azure_replay_1000w` (~95 K queries) and the
//!    multi-million-query `azure_replay_1000w_2m` (~2 M queries over two
//!    simulated diurnal hours), each with a `smoke/` variant for CI.
//! 2. **Policy × scenario sweep** — the full 5-policy × 9-scenario matrix,
//!    run once serially and once fanned across cores by a work-stealing
//!    `std::thread::scope` runner. The export records both wall times and
//!    the resulting speedup (≈1.0 on a single-core host by construction).
//! 3. **MILP ladder** — control ticks under drifting demand, solved cold
//!    every tick vs. carrying an [`AllocWarmState`] tick to tick (basis
//!    reuse + threshold pinning).
//! 4. **Cluster replay** — the same diurnal curve replayed on the
//!    thread-and-channel testbed backend (`run_cluster`) at paper-testbed
//!    fleet scale, wall-clock timed, so the cluster runtime's overhead has
//!    a tracked trajectory too (`cluster_replay`, plus a `smoke/` variant
//!    for CI).
//!
//! Usage:
//!
//! ```text
//! perf [--smoke] [--resume | --addons | --ladder] [--threads N]
//!      [--out PATH] [--baseline PATH]
//! ```
//!
//! * `--smoke` — CI-sized workloads only (still 1000 workers, shorter
//!   trace, reduced sweep). A full run *also* executes the smoke
//!   workloads, so a committed full baseline carries every key the CI
//!   smoke job compares against.
//! * `--resume` — run the serving workloads with stage-level resume
//!   enabled (`SystemConfig::resume_from_latents`); benchmark keys gain a
//!   `resume/` prefix so the modes never gate against each other's
//!   baselines. A full run in any mode also executes the *other* modes'
//!   smoke workloads, so one committed full baseline covers every CI
//!   matrix leg.
//! * `--addons` — run the serving workloads with add-on serving enabled
//!   (the demo catalog/mix on `SystemConfig::addons`: per-worker module
//!   caches, swap charging, affinity routing); keys gain an `addons/`
//!   prefix.
//! * `--ladder` — run the serving workloads on the 3-tier quality ladder
//!   (`ladder3` runtime, `SystemConfig::ladder` attached, predictive
//!   routing on); keys gain a `ladder/` prefix.
//! * `--threads N` — fan the parallel sweep across `N` threads instead of
//!   the detected core count (env `PERF_THREADS` works too; the flag
//!   wins). Both the thread count used and the detected core count are
//!   recorded in the export.
//! * `--out PATH` — where to write the JSON (default `BENCH_sim.json`).
//! * `--baseline PATH` — compare against a previous export and exit
//!   nonzero if any benchmark present in both regressed by more than
//!   [`REGRESSION_TOLERANCE`].
//!
//! The JSON is hand-rolled (the workspace has no serde) and deliberately
//! line-oriented — one benchmark per line — so [`parse_benchmark_secs`]
//! can read a baseline back with plain string scanning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use criterion::{black_box, Criterion};
use diffserve_bench::{
    f2, prepare_ladder_runtime_small, prepare_runtime_small, CascadeId, Table, EXPERIMENT_SEED,
};
use diffserve_cluster::{run_cluster, ClusterConfig};
use diffserve_core::{
    run_scenario, run_trace, solve_milp_allocation, solve_milp_allocation_warm, AddonsConfig,
    AllocWarmState, AllocatorInputs, CascadeRuntime, LadderConfig, Policy, RunSettings,
    SystemConfig,
};
use diffserve_imagegen::{ladder3, FeatureSpec, LatencyProfile};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::{
    standard_scenarios, synthesize_azure_trace, AzureTraceConfig, Scenario, Trace,
};

/// A benchmark slower than `baseline × (1 + tolerance)` fails the gate.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// The warm MILP ladder must beat the cold ladder by at least this margin
/// (`warm ≤ (1 − margin) × cold`), every run, smoke included. Basis reuse
/// plus threshold pinning is the whole point of the warm path; a slide
/// back to parity is a regression even if no baseline file is supplied.
const WARM_SPEEDUP_MIN: f64 = 0.15;

/// Fleet size for the Azure replay (the paper-scale target from the
/// roadmap; routing must go through the sorted load index to survive it).
const FLEET: usize = 1000;

/// QPS band of the multi-million-query Azure replay. The diurnal curve
/// averages ≈ (min + max) / 2, so 60–500 qps over [`REPLAY_2M_SECS`]
/// simulated seconds arrives ≈ 2.0 M queries.
const REPLAY_2M_MIN_QPS: f64 = 60.0;
/// See [`REPLAY_2M_MIN_QPS`].
const REPLAY_2M_MAX_QPS: f64 = 500.0;
/// Simulated duration of the full ~2 M-query replay (two diurnal hours).
const REPLAY_2M_SECS: u64 = 7200;
/// Simulated duration of the CI-sized `smoke/` variant (~17 K queries).
const REPLAY_2M_SMOKE_SECS: u64 = 60;

/// Which serving-feature variant the serving workloads run under. Each
/// mode namespaces its benchmark keys so the CI matrix legs never gate
/// against each other's baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Plain restart cascade — the unprefixed historical keys.
    Restart,
    /// Stage-level resume escalation (`resume/` keys).
    Resume,
    /// Add-on serving with the demo catalog and mix (`addons/` keys).
    Addons,
    /// 3-tier quality ladder with predictive routing (`ladder/` keys,
    /// served by the `ladder3` runtime instead of Cascade 1).
    Ladder,
}

impl Mode {
    fn all() -> [Mode; 4] {
        [Mode::Restart, Mode::Resume, Mode::Addons, Mode::Ladder]
    }

    fn prefix(self) -> &'static str {
        match self {
            Mode::Restart => "",
            Mode::Resume => "resume/",
            Mode::Addons => "addons/",
            Mode::Ladder => "ladder/",
        }
    }

    fn apply(self, config: &mut SystemConfig) {
        match self {
            Mode::Restart => {}
            Mode::Resume => config.resume_from_latents = true,
            Mode::Addons => config.addons = Some(AddonsConfig::demo(EXPERIMENT_SEED)),
            Mode::Ladder => config.ladder = Some(LadderConfig::default()),
        }
    }
}

/// One exported measurement.
struct Record {
    name: String,
    secs: f64,
    iters: u64,
    /// Extra numeric fields serialized alongside `secs` (not compared by
    /// the regression gate, which only reads `secs`).
    extra: Vec<(&'static str, String)>,
}

fn main() {
    let mut smoke = false;
    let mut resume = false;
    let mut addons = false;
    let mut ladder = false;
    let mut threads_arg: Option<usize> = None;
    let mut out = String::from("BENCH_sim.json");
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--resume" => resume = true,
            "--addons" => addons = true,
            "--ladder" => ladder = true,
            "--threads" => {
                let n = args.next().expect("--threads needs a count");
                threads_arg = Some(n.parse().expect("--threads needs a positive integer"));
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf [--smoke] [--resume | --addons | --ladder] [--threads N] \
                     [--out PATH] [--baseline PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let mode = match (resume, addons, ladder) {
        (false, false, false) => Mode::Restart,
        (true, false, false) => Mode::Resume,
        (false, true, false) => Mode::Addons,
        (false, false, true) => Mode::Ladder,
        _ => {
            eprintln!(
                "--resume, --addons, and --ladder are separate baseline namespaces; pick one"
            );
            std::process::exit(2);
        }
    };

    // Read the baseline up front: CI overwrites the checked-in file with
    // its own export (`--out BENCH_sim.json --baseline BENCH_sim.json`),
    // so the comparison must capture the committed contents first.
    let baseline_text = baseline.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"))
    });

    let runtime = prepare_runtime_small(CascadeId::One);
    // The ladder mode serves the 3-tier `ladder3` runtime; a full run in
    // any mode also needs it for the ladder smoke keys. Prepared lazily so
    // smoke runs of the other modes skip the extra discriminator training.
    let ladder_runtime = (mode == Mode::Ladder || !smoke)
        .then(|| prepare_ladder_runtime_small(ladder3(FeatureSpec::default())));
    let rt_for = |m: Mode| -> &CascadeRuntime {
        match m {
            Mode::Ladder => ladder_runtime.as_ref().expect("ladder runtime prepared"),
            _ => &runtime,
        }
    };
    let detected_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = threads_arg
        .or_else(|| {
            std::env::var("PERF_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(detected_cores)
        .max(1);
    let mut records = Vec::new();
    let mut criterion = Criterion::default();

    // MILP ladder: shared between modes, so the CI smoke job tracks solver
    // regressions against the committed full baseline.
    milp_ladder(&runtime, &mut criterion);

    // Smoke-sized workloads: always run, so a full baseline has the keys
    // the CI job compares.
    azure_replay(
        rt_for(mode),
        &mut criterion,
        &format!("{}smoke/azure_replay_1000w", mode.prefix()),
        30.0,
        120.0,
        60,
        mode,
    );
    azure_replay(
        rt_for(mode),
        &mut criterion,
        &format!("{}smoke/azure_replay_1000w_2m", mode.prefix()),
        REPLAY_2M_MIN_QPS,
        REPLAY_2M_MAX_QPS,
        REPLAY_2M_SMOKE_SECS,
        mode,
    );
    sweep(
        rt_for(mode),
        &mut records,
        &format!("{}smoke/sweep", mode.prefix()),
        true,
        threads,
        mode,
    );
    cluster_replay(
        rt_for(mode),
        &mut records,
        &format!("{}smoke/cluster_replay", mode.prefix()),
        CLUSTER_REPLAY_SMOKE_SECS,
        mode,
    );

    if !smoke {
        azure_replay(
            rt_for(mode),
            &mut criterion,
            &format!("{}azure_replay_1000w", mode.prefix()),
            60.0,
            480.0,
            350,
            mode,
        );
        azure_replay(
            rt_for(mode),
            &mut criterion,
            &format!("{}azure_replay_1000w_2m", mode.prefix()),
            REPLAY_2M_MIN_QPS,
            REPLAY_2M_MAX_QPS,
            REPLAY_2M_SECS,
            mode,
        );
        sweep(
            rt_for(mode),
            &mut records,
            &format!("{}sweep_5x9", mode.prefix()),
            false,
            threads,
            mode,
        );
        cluster_replay(
            rt_for(mode),
            &mut records,
            &format!("{}cluster_replay", mode.prefix()),
            CLUSTER_REPLAY_SECS,
            mode,
        );
        // A full baseline also carries the *other* modes' smoke keys, so
        // every leg of the CI bench matrix gates against one committed
        // export.
        for other in Mode::all().into_iter().filter(|&m| m != mode) {
            azure_replay(
                rt_for(other),
                &mut criterion,
                &format!("{}smoke/azure_replay_1000w", other.prefix()),
                30.0,
                120.0,
                60,
                other,
            );
            azure_replay(
                rt_for(other),
                &mut criterion,
                &format!("{}smoke/azure_replay_1000w_2m", other.prefix()),
                REPLAY_2M_MIN_QPS,
                REPLAY_2M_MAX_QPS,
                REPLAY_2M_SMOKE_SECS,
                other,
            );
            sweep(
                rt_for(other),
                &mut records,
                &format!("{}smoke/sweep", other.prefix()),
                true,
                threads,
                other,
            );
            cluster_replay(
                rt_for(other),
                &mut records,
                &format!("{}smoke/cluster_replay", other.prefix()),
                CLUSTER_REPLAY_SMOKE_SECS,
                other,
            );
        }
    }

    for m in criterion.measurements() {
        let extra = if m.id.contains("azure_replay") {
            vec![("workers", FLEET.to_string())]
        } else if m.id.contains("milp_ladder") {
            vec![("ticks", MILP_TICKS.to_string())]
        } else {
            Vec::new()
        };
        records.push(Record {
            name: m.id.clone(),
            secs: m.mean_secs,
            iters: m.iters,
            extra,
        });
    }
    records.sort_by(|a, b| a.name.cmp(&b.name));

    let mut table = Table::new(&["benchmark", "secs", "iters"]);
    for r in &records {
        table.row(vec![
            r.name.clone(),
            format!("{:.4}", r.secs),
            r.iters.to_string(),
        ]);
    }
    println!(
        "\n== perf summary ({} mode) ==",
        if smoke { "smoke" } else { "full" }
    );
    table.print();

    write_json(&out, smoke, threads, detected_cores, &records).expect("write benchmark export");
    println!("\nwrote {out}");

    let mut failed = !warm_ladder_gate(&records);
    if let Some(text) = baseline_text {
        failed |= !check_regressions(&text, &records);
    }
    if failed {
        std::process::exit(1);
    }
}

/// The warm-vs-cold solver gate: `milp_ladder_warm` must beat
/// `milp_ladder_cold` by at least [`WARM_SPEEDUP_MIN`]. Unlike the
/// baseline comparison this needs no baseline file — both sides are
/// measured in the same run — so every smoke run enforces it. Returns
/// `false` on regression to parity.
fn warm_ladder_gate(records: &[Record]) -> bool {
    let secs = |name: &str| records.iter().find(|r| r.name == name).map(|r| r.secs);
    let (Some(cold), Some(warm)) = (secs("milp_ladder_cold"), secs("milp_ladder_warm")) else {
        eprintln!("warning: milp ladder keys missing; warm-vs-cold gate is vacuous");
        return true;
    };
    let ok = warm <= (1.0 - WARM_SPEEDUP_MIN) * cold;
    println!(
        "\n== warm ladder gate (warm must be ≥ {:.0}% faster than cold) ==",
        WARM_SPEEDUP_MIN * 100.0
    );
    println!(
        "cold {cold:.4} s, warm {warm:.4} s ({}x): {}",
        f2(cold / warm),
        if ok { "ok" } else { "FAIL" }
    );
    if !ok {
        eprintln!("FAIL: the warm MILP ladder no longer beats cold by the required margin");
    }
    ok
}

/// Replays the rescaled Azure diurnal trace on a [`FLEET`]-worker fleet.
fn azure_replay(
    runtime: &CascadeRuntime,
    criterion: &mut Criterion,
    id: &str,
    min_qps: f64,
    max_qps: f64,
    secs: u64,
    mode: Mode,
) {
    let mut config = SystemConfig {
        num_workers: FLEET,
        ..Default::default()
    };
    mode.apply(&mut config);
    let trace = synthesize_azure_trace(&AzureTraceConfig {
        min_qps,
        max_qps,
        duration: SimDuration::from_secs(secs),
        ..Default::default()
    })
    .expect("valid azure trace");
    let settings = RunSettings::new(Policy::DiffServe, trace.max_qps());
    criterion.bench_function(id, |b| {
        b.iter(|| run_trace(runtime, &config, &settings, black_box(&trace)))
    });
}

/// The (policy, scenario) jobs of the sweep: the full 5 × 9 matrix, or the
/// CI subset (DiffServe under steady control, the correlated-failure
/// cascade, and the brownout regime — mirroring `scenarios --smoke`).
fn sweep_jobs(system: &SystemConfig, smoke: bool) -> Vec<(RunSettings, Scenario)> {
    let horizon = if smoke { 60 } else { 240 };
    let base = Trace::constant(6.0, SimDuration::from_secs(horizon)).expect("valid base trace");
    let mut scenarios = standard_scenarios(&base, system.num_workers);
    let policies: Vec<Policy> = if smoke {
        scenarios.retain(|s| matches!(s.name(), "steady" | "cascading-failure" | "brownout"));
        vec![Policy::DiffServe]
    } else {
        Policy::all().to_vec()
    };
    let mut jobs = Vec::new();
    for scenario in &scenarios {
        let peak = scenario.effective_trace().max_qps();
        for &policy in &policies {
            jobs.push((RunSettings::new(policy, peak), scenario.clone()));
        }
    }
    jobs
}

/// Times the sweep serially, then fanned across `threads` workers pulling
/// jobs off a shared atomic cursor. Single-shot wall-clock measurements:
/// the sweep is far above timer resolution and iterating it would dominate
/// the suite's runtime.
fn sweep(
    runtime: &CascadeRuntime,
    records: &mut Vec<Record>,
    id: &str,
    smoke: bool,
    threads: usize,
    mode: Mode,
) {
    let mut system = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    mode.apply(&mut system);
    let jobs = sweep_jobs(&system, smoke);

    let start = Instant::now();
    for (settings, scenario) in &jobs {
        black_box(run_scenario(runtime, &system, settings, scenario));
    }
    let serial = start.elapsed().as_secs_f64();

    let workers = threads.min(jobs.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((settings, scenario)) = jobs.get(i) else {
                    break;
                };
                black_box(run_scenario(runtime, &system, settings, scenario));
            });
        }
    });
    let parallel = start.elapsed().as_secs_f64();

    println!(
        "{:<55} serial {serial:.3} s, parallel {parallel:.3} s ({workers} threads, {:.2}x)",
        id,
        serial / parallel
    );
    let runs = jobs.len().to_string();
    records.push(Record {
        name: format!("{id}_serial"),
        secs: serial,
        iters: 1,
        extra: vec![("runs", runs.clone())],
    });
    records.push(Record {
        name: format!("{id}_parallel"),
        secs: parallel,
        iters: 1,
        extra: vec![
            ("runs", runs),
            ("threads", workers.to_string()),
            ("speedup", format!("{:.3}", serial / parallel)),
        ],
    });
}

/// Fleet size for the cluster replay: real OS threads, so the paper's
/// 16-worker testbed scale rather than the simulator's 1000.
const CLUSTER_FLEET: usize = 16;

/// Simulated duration of the full cluster replay (wall ≈ duration ×
/// `time_scale` plus runtime overhead).
const CLUSTER_REPLAY_SECS: u64 = 350;

/// Simulated duration of the CI-sized `smoke/cluster_replay` variant.
const CLUSTER_REPLAY_SMOKE_SECS: u64 = 60;

/// Replays a short diurnal curve on the thread-and-channel cluster
/// backend, wall-clock timed. The scaled trace duration is the floor of
/// the measurement by design — regressions in runtime overhead (routing,
/// controller, channel churn, join/drain) surface as growth above it.
fn cluster_replay(
    runtime: &CascadeRuntime,
    records: &mut Vec<Record>,
    id: &str,
    secs: u64,
    mode: Mode,
) {
    let mut system = SystemConfig {
        num_workers: CLUSTER_FLEET,
        ..Default::default()
    };
    mode.apply(&mut system);
    let cfg = ClusterConfig {
        system,
        time_scale: 0.02,
    };
    let trace = synthesize_azure_trace(&AzureTraceConfig {
        min_qps: 4.0,
        max_qps: 14.0,
        duration: SimDuration::from_secs(secs),
        ..Default::default()
    })
    .expect("valid azure trace");
    let settings = RunSettings::new(Policy::DiffServe, trace.max_qps());
    let start = Instant::now();
    let report = run_cluster(runtime, &cfg, &settings, &trace);
    let wall = start.elapsed().as_secs_f64();
    let queries: u64 = report.tier_breakdown.iter().map(|s| s.completions).sum();
    println!("{id:<55} wall {wall:.3} s ({queries} completions)");
    records.push(Record {
        name: id.to_string(),
        secs: wall,
        iters: 1,
        extra: vec![
            ("workers", CLUSTER_FLEET.to_string()),
            ("queries", queries.to_string()),
        ],
    });
}

/// Control ticks in the MILP ladder.
const MILP_TICKS: usize = 12;

/// Times [`MILP_TICKS`] allocator solves under a drifting demand estimate:
/// once solving cold every tick, once threading an [`AllocWarmState`]
/// through the ladder the way
/// [`CascadePlanner`](diffserve_core::CascadePlanner) does. Warm starting
/// never changes the plan (uniqueness penalties dwarf the optimality gap),
/// so both ladders produce identical allocations. The pair tracks the
/// payoff of basis reuse + threshold pinning: warm ticks solve a couple of
/// pinned residual MILPs from the previous basis instead of the full
/// formulation from scratch, and the `--smoke` gate enforces that warm
/// stays ≥ 15 % faster than cold.
fn milp_ladder(runtime: &CascadeRuntime, criterion: &mut Criterion) {
    let config = SystemConfig::default();
    let thresholds = config.threshold_grid();
    let inputs_at = |demand: f64| AllocatorInputs {
        demand_qps: demand,
        queue_delay_light: 0.2,
        queue_delay_heavy: 0.5,
        slo: config.slo.as_secs_f64(),
        total_workers: config.num_workers,
        deferral: &runtime.deferral,
        light: LatencyProfile::new(0.10, 0.55),
        heavy: LatencyProfile::new(1.78, 0.12),
        resume_heavy: None,
        discriminator_latency: 0.01,
        batch_sizes: &config.batch_sizes,
        thresholds: &thresholds,
    };
    // The EWMA-smoothed demand estimate a controller actually sees: ~0.6%
    // drift per tick, so consecutive optima usually coincide and the
    // carried incumbent is a valid seed on almost every tick.
    let demands: Vec<f64> = (0..MILP_TICKS)
        .map(|i| 20.0 * 1.006f64.powi(i as i32))
        .collect();

    criterion.bench_function("milp_ladder_cold", |b| {
        b.iter(|| {
            for &d in &demands {
                black_box(solve_milp_allocation(&inputs_at(d)));
            }
        })
    });
    criterion.bench_function("milp_ladder_warm", |b| {
        b.iter(|| {
            let mut warm = AllocWarmState::new();
            for &d in &demands {
                black_box(solve_milp_allocation_warm(&inputs_at(d), &mut warm));
            }
        })
    });
}

/// Writes the line-oriented JSON export. Every benchmark is one line of
/// the `"benchmarks"` object so the baseline reader stays a string scan.
fn write_json(
    path: &str,
    smoke: bool,
    threads: usize,
    detected_cores: usize,
    records: &[Record],
) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"diffserve-perf/v1\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"detected_cores\": {detected_cores},\n"));
    s.push_str("  \"benchmarks\": {\n");
    for (i, r) in records.iter().enumerate() {
        let mut line = format!(
            "    \"{}\": {{ \"secs\": {:.6}, \"iters\": {}",
            r.name, r.secs, r.iters
        );
        for (k, v) in &r.extra {
            line.push_str(&format!(", \"{k}\": {v}"));
        }
        line.push_str(" }");
        if i + 1 < records.len() {
            line.push(',');
        }
        line.push('\n');
        s.push_str(&line);
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, s)
}

/// Extracts `(name, secs)` pairs from an export written by [`write_json`]:
/// any line whose first token is a quoted name and which carries a
/// `"secs":` field is a benchmark.
fn parse_benchmark_secs(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix('"') else {
            continue;
        };
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(pos) = t.find("\"secs\":") else {
            continue;
        };
        let num: String = t[pos + "\"secs\":".len()..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        if let Ok(secs) = num.parse::<f64>() {
            out.push((name.to_string(), secs));
        }
    }
    out
}

/// Compares `records` against a baseline export. Benchmarks only present
/// on one side are skipped (smoke runs carry a subset of the full keys).
/// Returns `false` if any shared benchmark exceeds the tolerance.
fn check_regressions(baseline_text: &str, records: &[Record]) -> bool {
    let baseline = parse_benchmark_secs(baseline_text);
    let mut table = Table::new(&["benchmark", "baseline_s", "current_s", "ratio", "verdict"]);
    let mut failed = false;
    let mut compared = 0usize;
    for r in records {
        let Some((_, base)) = baseline.iter().find(|(n, _)| *n == r.name) else {
            continue;
        };
        compared += 1;
        let ratio = r.secs / base;
        let over = ratio > 1.0 + REGRESSION_TOLERANCE;
        failed |= over;
        table.row(vec![
            r.name.clone(),
            format!("{base:.4}"),
            format!("{:.4}", r.secs),
            f2(ratio),
            if over { "REGRESSED" } else { "ok" }.to_string(),
        ]);
    }
    println!(
        "\n== regression gate (tolerance {:.0}%) ==",
        REGRESSION_TOLERANCE * 100.0
    );
    table.print();
    if compared == 0 {
        eprintln!("warning: no benchmarks shared with the baseline; gate is vacuous");
    }
    if failed {
        eprintln!("FAIL: at least one benchmark regressed beyond the tolerance");
    }
    !failed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, secs: f64) -> Record {
        Record {
            name: name.to_string(),
            secs,
            iters: 1,
            extra: Vec::new(),
        }
    }

    #[test]
    fn parser_reads_benchmarks_and_tolerates_unknown_keys() {
        // A baseline written by a *future* perf with extra top-level keys,
        // unknown per-benchmark fields, and benchmark names this binary
        // has never heard of must still parse cleanly.
        let text = r#"{
  "schema": "diffserve-perf/v2",
  "mode": "full",
  "threads": 8,
  "frobnication_level": 11,
  "benchmarks": {
    "milp_ladder_cold": { "secs": 1.500000, "iters": 3, "ticks": 12 },
    "some_future_key": { "secs": 0.250000, "iters": 1, "novel_field": "x" },
    "metadata_only_entry": { "iters": 4 }
  }
}
"#;
        let parsed = parse_benchmark_secs(text);
        assert_eq!(
            parsed,
            vec![
                ("milp_ladder_cold".to_string(), 1.5),
                ("some_future_key".to_string(), 0.25),
            ]
        );
    }

    #[test]
    fn regression_gate_skips_keys_present_on_only_one_side() {
        let baseline = r#"
    "shared": { "secs": 1.000000, "iters": 1 },
    "baseline_only_key": { "secs": 0.100000, "iters": 1 }
"#;
        // `current_only_key` is new; `baseline_only_key` was removed. Both
        // must be ignored, and the shared key is within tolerance.
        let records = vec![record("shared", 1.1), record("current_only_key", 99.0)];
        assert!(check_regressions(baseline, &records));
    }

    #[test]
    fn regression_gate_fails_past_tolerance() {
        let baseline = r#""shared": { "secs": 1.000000, "iters": 1 }"#;
        let records = vec![record("shared", 1.0 + REGRESSION_TOLERANCE + 0.05)];
        assert!(!check_regressions(baseline, &records));
    }

    #[test]
    fn warm_gate_requires_the_margin() {
        let ok = vec![
            record("milp_ladder_cold", 1.0),
            record("milp_ladder_warm", 1.0 - WARM_SPEEDUP_MIN - 0.01),
        ];
        assert!(warm_ladder_gate(&ok));
        let parity = vec![
            record("milp_ladder_cold", 1.0),
            record("milp_ladder_warm", 1.0 - WARM_SPEEDUP_MIN + 0.01),
        ];
        assert!(!warm_ladder_gate(&parity));
        // Missing keys (a hypothetical reduced run) make the gate vacuous
        // rather than failing the export.
        assert!(warm_ladder_gate(&[record("milp_ladder_cold", 1.0)]));
    }
}
