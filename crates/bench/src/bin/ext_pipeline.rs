//! Extension experiment: stage-level micro-serving.
//!
//! The paper's cascade pays the full heavy-model cost on every escalation
//! because generation restarts from scratch. With the pipeline split into
//! encode → denoise → decode stages, an escalated query instead *resumes*
//! heavy-tier denoising from the light tier's latents
//! (`SystemConfig::resume_from_latents`), serving only the residual steps.
//!
//! This benchmark runs the nine standard scenarios twice — restart vs
//! resume escalation — and compares end-to-end latency, escalated (heavy)
//! latency, GPU-time per query, FID, and SLO violations. Rows go to
//! `results/ext_pipeline.csv` and stdout.
//!
//! Usage: `ext_pipeline [--smoke]`
//!
//! * `--smoke` — CI-sized run: reduced runtime (1.5K prompts, small
//!   discriminator) and a shorter base trace, same scenario coverage and
//!   the same verdict checks.

use diffserve_bench::{f3, prepare_runtime, prepare_runtime_small, write_csv, CascadeId, Table};
use diffserve_core::{run_scenario, Policy, RunReport, RunSettings, SystemConfig};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::{standard_scenarios, Trace};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runtime = if smoke {
        prepare_runtime_small(CascadeId::One)
    } else {
        prepare_runtime(CascadeId::One)
    };
    let secs = if smoke { 40 } else { 90 };
    let system = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    let mut resume_system = system.clone();
    resume_system.resume_from_latents = true;

    let base = Trace::constant(6.0, SimDuration::from_secs(secs)).expect("valid trace");
    let scenarios = standard_scenarios(&base, system.num_workers);

    println!(
        "== stage-level serving: restart vs resume escalation ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let mut t = Table::new(&[
        "scenario",
        "mode",
        "lat_s",
        "heavy_lat_s",
        "gpu_s_per_q",
        "fid",
        "viol",
        "resumed",
    ]);
    let mut rows = Vec::new();
    let mut pairs: Vec<(String, RunReport, RunReport)> = Vec::new();
    for scenario in &scenarios {
        let peak = scenario.effective_trace().max_qps();
        let settings = RunSettings::new(Policy::DiffServe, peak);
        let restart = run_scenario(&runtime, &system, &settings, scenario);
        let resume = run_scenario(&runtime, &resume_system, &settings, scenario);
        for (mode, r) in [("restart", &restart), ("resume", &resume)] {
            let cells = vec![
                scenario.name().to_string(),
                mode.to_string(),
                f3(r.mean_latency),
                f3(r.mean_heavy_latency),
                f3(r.gpu_time_per_query),
                f3(r.fid),
                f3(r.violation_ratio),
                r.resumed_queries.to_string(),
            ];
            t.row(cells.clone());
            rows.push(cells);
        }
        pairs.push((scenario.name().to_string(), restart, resume));
    }
    t.print();

    // Verdict: per-scenario escalation dividend, plus scenario-mean deltas.
    let mean = |f: &dyn Fn(&RunReport) -> f64,
                pick: &dyn Fn(&(String, RunReport, RunReport)) -> usize| {
        pairs
            .iter()
            .map(|p| f(if pick(p) == 0 { &p.1 } else { &p.2 }))
            .sum::<f64>()
            / pairs.len() as f64
    };
    let restart_of = |_: &(String, RunReport, RunReport)| 0usize;
    let resume_of = |_: &(String, RunReport, RunReport)| 1usize;
    let hlat = (
        mean(&|r| r.mean_heavy_latency, &restart_of),
        mean(&|r| r.mean_heavy_latency, &resume_of),
    );
    let gpu = (
        mean(&|r| r.gpu_time_per_query, &restart_of),
        mean(&|r| r.gpu_time_per_query, &resume_of),
    );
    let lat = (
        mean(&|r| r.mean_latency, &restart_of),
        mean(&|r| r.mean_latency, &resume_of),
    );
    let fid = (mean(&|r| r.fid, &restart_of), mean(&|r| r.fid, &resume_of));
    let viol = (
        mean(&|r| r.violation_ratio, &restart_of),
        mean(&|r| r.violation_ratio, &resume_of),
    );
    println!(
        "\nscenario means (restart -> resume): heavy latency {:.3}s -> {:.3}s ({:.1}%), \
         gpu/query {:.3}s -> {:.3}s ({:.1}%), e2e latency {:.3}s -> {:.3}s, \
         fid {:.2} -> {:.2}, violations {:.4} -> {:.4}",
        hlat.0,
        hlat.1,
        100.0 * (hlat.1 / hlat.0 - 1.0),
        gpu.0,
        gpu.1,
        100.0 * (gpu.1 / gpu.0 - 1.0),
        lat.0,
        lat.1,
        fid.0,
        fid.1,
        viol.0,
        viol.1,
    );

    let path = write_csv(
        "ext_pipeline",
        &[
            "scenario",
            "mode",
            "lat_s",
            "heavy_lat_s",
            "gpu_s_per_q",
            "fid",
            "viol",
            "resumed",
        ],
        &rows,
    );
    println!("wrote {}", path.display());

    // The acceptance gate: resume must beat restart on escalated latency
    // and GPU time in every scenario, and must not lose on violations in
    // any scenario or on FID in the scenario mean. A regression in the
    // resume path fails the binary (CI runs `--smoke`).
    let mut ok = true;
    for (name, restart, resume) in &pairs {
        if resume.resumed_queries == 0 {
            println!("FAIL {name}: resume mode never resumed");
            ok = false;
        }
        if resume.mean_heavy_latency >= restart.mean_heavy_latency {
            println!(
                "FAIL {name}: heavy latency {:.3} !< {:.3}",
                resume.mean_heavy_latency, restart.mean_heavy_latency
            );
            ok = false;
        }
        if resume.gpu_time_per_query >= restart.gpu_time_per_query {
            println!(
                "FAIL {name}: gpu/query {:.3} !< {:.3}",
                resume.gpu_time_per_query, restart.gpu_time_per_query
            );
            ok = false;
        }
        if resume.violation_ratio > restart.violation_ratio {
            println!(
                "FAIL {name}: violations {:.4} > {:.4}",
                resume.violation_ratio, restart.violation_ratio
            );
            ok = false;
        }
    }
    if fid.1 > fid.0 {
        println!(
            "FAIL: scenario-mean FID worsened: {:.3} > {:.3}",
            fid.1, fid.0
        );
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!("PASS: resume dominates restart on latency/GPU at equal-or-better FID/SLO");
}
