//! §5 extension experiment: three-stage cascades.
//!
//! The paper sketches longer pipelines ("applying a discriminator after
//! each model, with ... multiple confidence thresholds"). This experiment
//! builds the SDXS → SD-Turbo → SDv1.5 pipeline and compares its
//! quality/latency Pareto frontier against the paper's two-stage Cascade 1:
//! the extra stage should widen the frontier at the low-latency end
//! (cheap first-pass) without losing the quality ceiling.

use diffserve_bench::{f2, f3, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_imagegen::{evaluate_cascade, sdxs, FeatureSpec, Pipeline, RoutingRule};

fn main() {
    let runtime = prepare_runtime(CascadeId::One);
    let spec = FeatureSpec::default();
    let first_stage = sdxs(spec);
    let pipeline = Pipeline::new(
        vec![&first_stage, &runtime.spec.light, &runtime.spec.heavy],
        &runtime.discriminator,
    );

    println!("== 3-stage pipeline: sdxs -> sd-turbo -> sd-v1.5 ==");
    let grid = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9];
    let frontier = pipeline.pareto_frontier(&runtime.dataset, &grid);
    let mut t = Table::new(&["t1", "t2", "latency_s", "fid", "stage_mix"]);
    let mut rows = Vec::new();
    for (thresholds, e) in &frontier {
        let mix = e
            .stage_fractions
            .iter()
            .map(|f| format!("{f:.2}"))
            .collect::<Vec<_>>()
            .join("/");
        t.row(vec![
            f2(thresholds[0]),
            f2(thresholds[1]),
            f2(e.mean_latency),
            f2(e.fid),
            mix.clone(),
        ]);
        rows.push(vec![
            "pipeline3".into(),
            f2(thresholds[0]),
            f2(thresholds[1]),
            f3(e.mean_latency),
            f3(e.fid),
            mix,
        ]);
    }
    t.print();

    println!("\n== 2-stage reference (Cascade 1 frontier) ==");
    let rule = RoutingRule::Discriminator(&runtime.discriminator);
    let mut t2 = Table::new(&["t", "latency_s", "fid"]);
    let mut best2: Vec<(f64, f64)> = Vec::new();
    for i in 0..=10 {
        let thr = i as f64 / 10.0;
        let e = evaluate_cascade(
            &runtime.dataset,
            &runtime.spec.light,
            &runtime.spec.heavy,
            &rule,
            thr,
        );
        t2.row(vec![f2(thr), f2(e.mean_latency), f2(e.fid)]);
        best2.push((e.mean_latency, e.fid));
        rows.push(vec![
            "cascade2stage".into(),
            f2(thr),
            String::new(),
            f3(e.mean_latency),
            f3(e.fid),
            String::new(),
        ]);
    }
    t2.print();

    // Verdict: at the 2-stage cascade's cheapest useful point, does the
    // 3-stage pipeline offer a cheaper point of comparable quality?
    let cheapest3 = frontier.first().map(|(_, e)| e.mean_latency).unwrap_or(0.0);
    let cheapest2 = best2.first().map(|(l, _)| *l).unwrap_or(0.0);
    println!(
        "\ncheapest pipeline point {:.3}s vs cheapest cascade point {:.3}s; \
         best pipeline FID {:.2} vs best cascade FID {:.2}",
        cheapest3,
        cheapest2,
        frontier
            .iter()
            .map(|(_, e)| e.fid)
            .fold(f64::INFINITY, f64::min),
        best2.iter().map(|(_, f)| *f).fold(f64::INFINITY, f64::min),
    );
    let path = write_csv(
        "ext_pipeline",
        &["series", "t1", "t2", "latency_s", "fid", "stage_mix"],
        &rows,
    );
    println!("wrote {}", path.display());
}
