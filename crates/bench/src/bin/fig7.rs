//! Figure 7: discriminator design ablation — ResNet-34 w/ ground truth,
//! ViT-B16 w/ ground truth, EfficientNet w/ heavy outputs as "real"
//! ("w Fake"), and EfficientNet w/ ground truth (the paper's choice) — as
//! FID-vs-latency curves on both 512px cascades.
//!
//! Paper claim to reproduce: EfficientNet trained on ground-truth images
//! achieves the lowest FID at every latency budget.

use diffserve_bench::{f2, f3, write_csv, CascadeId, Table, DATASET_SIZE, EXPERIMENT_SEED};
use diffserve_core::CascadeRuntime;
use diffserve_imagegen::{evaluate_cascade, DiscArch, DiscriminatorConfig, RealClass, RoutingRule};

fn main() {
    let variants: [(&str, DiscArch, RealClass); 4] = [
        ("resnet_w_gt", DiscArch::ResNet34, RealClass::GroundTruth),
        ("vit_w_gt", DiscArch::ViTB16, RealClass::GroundTruth),
        (
            "effnet_w_fake",
            DiscArch::EfficientNetV2,
            RealClass::HeavyOutputs,
        ),
        (
            "effnet_w_gt",
            DiscArch::EfficientNetV2,
            RealClass::GroundTruth,
        ),
    ];

    let mut rows = Vec::new();
    for id in [CascadeId::One, CascadeId::Two] {
        println!("\n== Fig 7: cascade {} ==", id.name());
        let mut t = Table::new(&["discriminator", "threshold", "latency_s", "fid", "auc_area"]);
        for (name, arch, real_class) in variants {
            let runtime = CascadeRuntime::prepare(
                id.spec(),
                DATASET_SIZE,
                EXPERIMENT_SEED,
                DiscriminatorConfig {
                    arch,
                    real_class,
                    ..Default::default()
                },
            );
            let rule = RoutingRule::Discriminator(&runtime.discriminator);
            let mut area = 0.0; // rough area under the FID-latency curve (lower = better)
            let mut prev: Option<(f64, f64)> = None;
            for i in 0..=10 {
                let thr = i as f64 / 10.0;
                let e = evaluate_cascade(
                    &runtime.dataset,
                    &runtime.spec.light,
                    &runtime.spec.heavy,
                    &rule,
                    thr,
                );
                if let Some((pl, pf)) = prev {
                    area += 0.5 * (e.fid + pf) * (e.mean_latency - pl);
                }
                prev = Some((e.mean_latency, e.fid));
                t.row(vec![
                    name.into(),
                    f2(thr),
                    f2(e.mean_latency),
                    f2(e.fid),
                    String::new(),
                ]);
                rows.push(vec![
                    format!("{}-{}", id.name(), name),
                    f2(thr),
                    f3(e.mean_latency),
                    f3(e.fid),
                ]);
            }
            t.row(vec![
                name.into(),
                "—".into(),
                "—".into(),
                "—".into(),
                f2(area),
            ]);
        }
        t.print();
    }
    let path = write_csv("fig7", &["series", "threshold", "latency_s", "fid"], &rows);
    println!("\nwrote {}", path.display());
}
