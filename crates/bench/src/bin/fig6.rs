//! Figure 6: testbed results for Cascades 2 and 3 — average FID and average
//! SLO-violation bars for all five policies — plus the simulator-vs-testbed
//! validation the paper reports alongside (§4.3: average gap of 0.56% FID
//! and 1.1% SLO violations).
//!
//! The "testbed" here is the thread-and-channel cluster runtime
//! (`diffserve-cluster`) with wall-clock execution at 1/100 time scale.

use diffserve_bench::{f2, f3, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_cluster::{run_cluster, ClusterConfig};
use diffserve_core::{run_trace, Policy, RunSettings, SystemConfig};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::{synthesize_azure_trace, AzureTraceConfig};

fn main() {
    let mut rows = Vec::new();
    for (id, min_qps, max_qps, slo) in [
        (CascadeId::Two, 4.0, 32.0, 5u64),
        (CascadeId::Three, 1.0, 8.0, 15u64),
    ] {
        let runtime = prepare_runtime(id);
        let system = SystemConfig {
            slo: SimDuration::from_secs(slo),
            ..Default::default()
        };
        let trace = synthesize_azure_trace(&AzureTraceConfig {
            min_qps,
            max_qps,
            ..Default::default()
        })
        .expect("valid trace");

        println!(
            "\n== Fig 6: cascade {} ({}->{} QPS, SLO {}s) ==",
            id.name(),
            min_qps,
            max_qps,
            slo
        );
        let mut t = Table::new(&[
            "policy",
            "testbed_fid",
            "testbed_viol",
            "sim_fid",
            "sim_viol",
            "fid_gap_%",
            "viol_gap_pp",
        ]);
        let cluster_cfg = ClusterConfig {
            system: system.clone(),
            time_scale: 0.05,
        };

        let mut fid_gaps = Vec::new();
        let mut viol_gaps = Vec::new();
        for policy in Policy::all() {
            let settings = RunSettings::new(policy, max_qps);
            let testbed = run_cluster(&runtime, &cluster_cfg, &settings, &trace);
            let sim = run_trace(&runtime, &system, &settings, &trace);
            let fid_gap = 100.0 * (testbed.fid - sim.fid).abs() / sim.fid;
            let viol_gap = (testbed.violation_ratio - sim.violation_ratio).abs();
            fid_gaps.push(fid_gap);
            viol_gaps.push(viol_gap);
            t.row(vec![
                policy.name().into(),
                f2(testbed.fid),
                f3(testbed.violation_ratio),
                f2(sim.fid),
                f3(sim.violation_ratio),
                f2(fid_gap),
                f3(viol_gap),
            ]);
            rows.push(vec![
                id.name().into(),
                policy.name().into(),
                f3(testbed.fid),
                f3(testbed.violation_ratio),
                f3(sim.fid),
                f3(sim.violation_ratio),
            ]);
        }
        t.print();
        println!(
            "simulator-vs-testbed gap: avg FID {:.2}% (paper 0.56%), avg SLO {:.3} (paper 0.011)",
            fid_gaps.iter().sum::<f64>() / fid_gaps.len() as f64,
            viol_gaps.iter().sum::<f64>() / viol_gaps.len() as f64,
        );
    }
    let path = write_csv(
        "fig6",
        &[
            "cascade",
            "policy",
            "testbed_fid",
            "testbed_viol",
            "sim_fid",
            "sim_viol",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
