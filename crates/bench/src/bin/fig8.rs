//! Figure 8: resource-allocation ablation on the dynamic trace — full
//! DiffServe vs. Static-Threshold, No-queuing-model (2× execution
//! heuristic), and AIMD batching.
//!
//! Paper claims to reproduce (shape): the static threshold loses quality
//! off-peak (up to 19%); AIMD suffers markedly more SLO violations (up to
//! +20%); the 2×-execution queuing heuristic loses quality off-peak (up to
//! 12%) by mis-estimating queuing delays.
//!
//! Every variant runs on both engines: the discrete-event simulator and
//! the thread-based cluster testbed (time-scaled wall clock). The control
//! plane is shared, so the AIMD ablation exercises the same
//! per-tier-violation AIMD loop on the cluster path as on the sim.

use diffserve_bench::{f2, f3, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_cluster::{run_cluster, ClusterConfig};
use diffserve_core::{
    run_trace, AblationKnobs, AllocatorBackend, Policy, RunReport, RunSettings, SystemConfig,
};
use diffserve_trace::{synthesize_azure_trace, AzureTraceConfig};

fn main() {
    let runtime = prepare_runtime(CascadeId::One);
    let config = SystemConfig::default();
    let cluster_cfg = ClusterConfig {
        system: config.clone(),
        time_scale: 0.05,
    };
    let trace = synthesize_azure_trace(&AzureTraceConfig::default()).expect("valid trace");

    let variants: [(&str, AblationKnobs); 4] = [
        ("DiffServe", AblationKnobs::default()),
        ("Static threshold", AblationKnobs::static_threshold(0.45)),
        ("No queuing model", AblationKnobs::no_queue_model()),
        ("AIMD", AblationKnobs::aimd()),
    ];

    let mut rows = Vec::new();
    let mut summary = Table::new(&[
        "engine",
        "variant",
        "avg_fid",
        "offpeak_fid",
        "slo_violation",
        "peak_violation",
    ]);
    for (name, knobs) in variants {
        let settings = RunSettings {
            policy: Policy::DiffServe,
            knobs,
            backend: AllocatorBackend::Milp,
            peak_demand_hint: trace.max_qps(),
        };
        let runs: [(&str, RunReport); 2] = [
            ("sim", run_trace(&runtime, &config, &settings, &trace)),
            (
                "cluster",
                run_cluster(&runtime, &cluster_cfg, &settings, &trace),
            ),
        ];
        for (engine, r) in runs {
            let cutoff = trace.duration().as_secs_f64() * 0.2;
            let offpeak: Vec<f64> = r
                .fid_series
                .iter()
                .filter(|(t, _)| *t <= cutoff)
                .map(|(_, f)| *f)
                .collect();
            let offpeak_fid = if offpeak.is_empty() {
                f64::NAN
            } else {
                offpeak.iter().sum::<f64>() / offpeak.len() as f64
            };
            let peak_violation = r
                .violation_series
                .iter()
                .map(|(_, v)| *v)
                .fold(0.0f64, f64::max);
            summary.row(vec![
                engine.into(),
                name.into(),
                f2(r.mean_windowed_fid),
                f2(offpeak_fid),
                f3(r.violation_ratio),
                f3(peak_violation),
            ]);
            for (t, f) in &r.fid_series {
                rows.push(vec![
                    engine.into(),
                    name.into(),
                    "fid".into(),
                    f2(*t),
                    f3(*f),
                ]);
            }
            for (t, v) in &r.violation_series {
                rows.push(vec![
                    engine.into(),
                    name.into(),
                    "violation".into(),
                    f2(*t),
                    f3(*v),
                ]);
            }
            for (t, th) in &r.threshold_series {
                rows.push(vec![
                    engine.into(),
                    name.into(),
                    "threshold".into(),
                    f2(*t),
                    f3(*th),
                ]);
            }
        }
    }
    println!("== Fig 8 summary ==");
    summary.print();
    let path = write_csv(
        "fig8",
        &["engine", "variant", "series", "time_s", "value"],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
