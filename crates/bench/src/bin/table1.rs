//! Table 1: taxonomy of DiffServe and the baselines — allocation
//! (static/dynamic) × query-awareness.

use diffserve_bench::{write_csv, Table};
use diffserve_core::Policy;

fn main() {
    let mut t = Table::new(&["Approach", "Allocation", "Query-aware"]);
    let mut rows = Vec::new();
    for p in Policy::all() {
        let allocation = if p.is_dynamic() { "Dynamic" } else { "Static" };
        let aware = if p.is_query_aware() { "Yes" } else { "No" };
        t.row(vec![p.name().into(), allocation.into(), aware.into()]);
        rows.push(vec![p.name().into(), allocation.into(), aware.into()]);
    }
    t.print();
    let path = write_csv("table1", &["approach", "allocation", "query_aware"], &rows);
    println!("\nwrote {}", path.display());
}
