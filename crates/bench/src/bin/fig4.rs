//! Figure 4: FID vs. SLO-violation trade-off under static synthetic traces
//! at low / medium / high load, Cascade 1 on 16 workers.
//!
//! Paper claims to reproduce (shape): DiffServe traces the Pareto-optimal
//! (lower-left) curve; Clipper-Light has near-zero violations but the worst
//! FID; Clipper-Heavy has the best *model* but 45–74% violations under
//! load; Proteus sits in between. Dynamic systems sweep the
//! over-provisioning factor to trace their curves; DiffServe-Static equals
//! DiffServe under static demand (single point, paper §4.2).

use diffserve_bench::{f2, f3, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_core::{run_trace, Policy, RunSettings, SystemConfig};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::Trace;

fn main() {
    let runtime = prepare_runtime(CascadeId::One);
    let config = SystemConfig::default(); // 16 workers, SLO 5 s
    let loads = [("low", 8.0), ("medium", 16.0), ("high", 24.0)];
    let lambdas = [1.0, 1.05, 1.2, 1.5, 2.0, 3.0];
    let mut rows = Vec::new();

    for (label, qps) in loads {
        println!("\n== Fig 4: {label} load ({qps} QPS, static) ==");
        let trace = Trace::constant(qps, SimDuration::from_secs(120)).expect("valid trace");
        let mut t = Table::new(&["policy", "lambda", "slo_violation", "fid"]);

        for policy in [Policy::ClipperLight, Policy::ClipperHeavy] {
            let settings = RunSettings::new(policy, qps);
            let r = run_trace(&runtime, &config, &settings, &trace);
            t.row(vec![
                policy.name().into(),
                "-".into(),
                f3(r.violation_ratio),
                f2(r.fid),
            ]);
            rows.push(vec![
                label.into(),
                policy.name().into(),
                "1.0".into(),
                f3(r.violation_ratio),
                f3(r.fid),
            ]);
        }
        for policy in [Policy::Proteus, Policy::DiffServe] {
            for &lambda in &lambdas {
                let mut config = config.clone();
                config.over_provision = lambda;
                let settings = RunSettings::new(policy, qps);
                let r = run_trace(&runtime, &config, &settings, &trace);
                t.row(vec![
                    policy.name().into(),
                    f2(lambda),
                    f3(r.violation_ratio),
                    f2(r.fid),
                ]);
                rows.push(vec![
                    label.into(),
                    policy.name().into(),
                    f2(lambda),
                    f3(r.violation_ratio),
                    f3(r.fid),
                ]);
            }
        }
        t.print();
    }

    let path = write_csv(
        "fig4",
        &["load", "policy", "lambda", "slo_violation", "fid"],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
