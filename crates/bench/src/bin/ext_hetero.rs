//! §5 extension experiment: heterogeneous GPU fleets.
//!
//! The paper notes DiffServe deploys on mixed clusters with "a slightly
//! more complex MILP formulation ... for different server classes". This
//! experiment compares the threshold (quality) a fixed budget of compute
//! sustains across fleet compositions: all-fast, all-slow, and mixed —
//! and shows the allocator placing fast GPUs on the heavy tier.

use diffserve_bench::{f2, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_core::{solve_heterogeneous, HeteroInputs, WorkerClass};

fn main() {
    let runtime = prepare_runtime(CascadeId::One);
    let thresholds: Vec<f64> = (0..46).map(|i| 0.9 * i as f64 / 45.0).collect();
    let batches = [1usize, 2, 4, 8, 16];

    let class = |name: &str, count: usize, speed: f64| {
        WorkerClass::new(name, count, speed).expect("experiment fleet classes are valid")
    };
    let fleets: Vec<(&str, Vec<WorkerClass>)> = vec![
        ("16x A100", vec![class("A100", 16, 1.0)]),
        ("16x V100", vec![class("V100", 16, 0.5)]),
        (
            "8x A100 + 8x V100",
            vec![class("A100", 8, 1.0), class("V100", 8, 0.5)],
        ),
        (
            "4x A100 + 16x V100",
            vec![class("A100", 4, 1.0), class("V100", 16, 0.5)],
        ),
    ];

    let mut rows = Vec::new();
    for demand in [6.0, 12.0, 20.0] {
        println!("\n== heterogeneous fleets at {demand} QPS ==");
        let mut t = Table::new(&[
            "fleet",
            "threshold",
            "light_alloc",
            "heavy_alloc",
            "b1",
            "b2",
        ]);
        for (name, classes) in &fleets {
            let inputs = HeteroInputs {
                demand_qps: demand,
                slo: 5.0,
                queue_delays: (0.2, 0.5),
                classes,
                deferral: &runtime.deferral,
                light: *runtime.spec.light.latency(),
                heavy: *runtime.spec.heavy.latency(),
                discriminator_latency: 0.01,
                batch_sizes: &batches,
                thresholds: &thresholds,
            };
            match solve_heterogeneous(&inputs) {
                Some(a) => {
                    let fmt = |v: &[usize]| {
                        v.iter()
                            .zip(classes.iter())
                            .map(|(n, c)| format!("{n}x{}", c.name))
                            .collect::<Vec<_>>()
                            .join("+")
                    };
                    t.row(vec![
                        name.to_string(),
                        f2(a.threshold),
                        fmt(&a.light_per_class),
                        fmt(&a.heavy_per_class),
                        a.light_batch.to_string(),
                        a.heavy_batch.to_string(),
                    ]);
                    rows.push(vec![
                        format!("{demand}"),
                        name.to_string(),
                        f2(a.threshold),
                        a.light_workers().to_string(),
                        a.heavy_workers().to_string(),
                    ]);
                }
                None => {
                    t.row(vec![
                        name.to_string(),
                        "infeasible".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    rows.push(vec![
                        format!("{demand}"),
                        name.to_string(),
                        "nan".into(),
                        "0".into(),
                        "0".into(),
                    ]);
                }
            }
        }
        t.print();
    }
    println!("\nReading: mixed fleets sustain thresholds between the pure fleets;");
    println!("fast GPUs land on the heavy tier where their speed buys deferral capacity.");
    let path = write_csv(
        "ext_hetero",
        &[
            "demand_qps",
            "fleet",
            "threshold",
            "light_workers",
            "heavy_workers",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
}
