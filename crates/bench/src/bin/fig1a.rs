//! Figure 1a: FID vs. mean inference latency for independent model variants
//! and for cascades routed by Random / PickScore / CLIPScore / Discriminator,
//! on two light/heavy pairs (SD-Turbo+SDv1.5 and SDXS+SDv1.5).
//!
//! Paper claims to reproduce (shape): PickScore- and CLIPScore-routed
//! cascades are no better than random routing; the discriminator-routed
//! cascade dominates; FID worsens again at the all-heavy end of the curve.

use diffserve_bench::{f2, f3, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_imagegen::{
    evaluate_cascade, evaluate_single_model, fig1a_variants, ClipScorer, FeatureSpec, PickScorer,
    RoutingRule,
};
use diffserve_simkit::stats::Welford;

fn main() {
    let spec = FeatureSpec::default();
    let mut rows = Vec::new();

    println!("== Fig 1a: independent model variants (FID vs batch-1 latency) ==");
    let runtime1 = prepare_runtime(CascadeId::One);
    let mut t = Table::new(&["variant", "latency_s", "fid"]);
    for m in fig1a_variants(spec) {
        let e = evaluate_single_model(&runtime1.dataset, &m);
        t.row(vec![m.name().to_string(), f2(e.mean_latency), f2(e.fid)]);
        rows.push(vec![
            "variants".into(),
            m.name().to_string(),
            f3(e.mean_latency),
            f3(e.fid),
            "0".into(),
        ]);
    }
    t.print();

    for id in [CascadeId::One, CascadeId::Two] {
        let runtime = prepare_runtime(id);
        let light = &runtime.spec.light;
        let heavy = &runtime.spec.heavy;
        let dataset = &runtime.dataset;
        println!(
            "\n== Fig 1a cascade: H={} L={} ==",
            heavy.name(),
            light.name()
        );
        let mut t = Table::new(&["rule", "threshold", "deferral", "latency_s", "fid"]);

        // Discriminator-routed cascade across the threshold sweep.
        let rule = RoutingRule::Discriminator(&runtime.discriminator);
        for i in 0..=10 {
            let thr = i as f64 / 10.0;
            let e = evaluate_cascade(dataset, light, heavy, &rule, thr);
            t.row(vec![
                "discriminator".into(),
                f2(thr),
                f3(e.deferral_fraction),
                f2(e.mean_latency),
                f2(e.fid),
            ]);
            rows.push(vec![
                format!("{}-disc", id.name()),
                f2(thr),
                f3(e.mean_latency),
                f3(e.fid),
                f3(e.deferral_fraction),
            ]);
        }

        // PickScore / CLIPScore: thresholds swept over observed score
        // quantiles so the deferral fraction covers [0, 1].
        for (name, scores) in [
            (
                "pickscore",
                score_quantiles(dataset, light, &PickScorer::default()),
            ),
            (
                "clipscore",
                clip_quantiles(dataset, light, &ClipScorer::default()),
            ),
        ] {
            for (q, thr) in scores {
                let rule = match name {
                    "pickscore" => RoutingRule::PickScore(PickScorer::default()),
                    _ => RoutingRule::ClipScore(ClipScorer::default()),
                };
                let e = evaluate_cascade(dataset, light, heavy, &rule, thr);
                t.row(vec![
                    name.into(),
                    format!("q{q:.1}"),
                    f3(e.deferral_fraction),
                    f2(e.mean_latency),
                    f2(e.fid),
                ]);
                rows.push(vec![
                    format!("{}-{name}", id.name()),
                    f3(thr),
                    f3(e.mean_latency),
                    f3(e.fid),
                    f3(e.deferral_fraction),
                ]);
            }
        }

        // Random routing: 20 repetitions per deferral probability, with the
        // std-dev band the paper shades.
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let mut fid_acc = Welford::new();
            let mut lat_acc = Welford::new();
            for rep in 0..20u64 {
                let rule = RoutingRule::Random { seed: 1000 + rep };
                let e = evaluate_cascade(dataset, light, heavy, &rule, p);
                fid_acc.push(e.fid);
                lat_acc.push(e.mean_latency);
            }
            t.row(vec![
                "random".into(),
                f2(p),
                f2(p),
                f2(lat_acc.mean()),
                format!("{:.2}±{:.2}", fid_acc.mean(), fid_acc.std()),
            ]);
            rows.push(vec![
                format!("{}-random", id.name()),
                f2(p),
                f3(lat_acc.mean()),
                f3(fid_acc.mean()),
                f2(p),
            ]);
        }
        t.print();
    }

    let path = write_csv(
        "fig1a",
        &["series", "threshold", "latency_s", "fid", "deferral"],
        &rows,
    );
    println!("\nwrote {}", path.display());
}

/// Threshold values at deciles of the observed light-output PickScores.
fn score_quantiles(
    dataset: &diffserve_imagegen::PromptDataset,
    light: &diffserve_imagegen::DiffusionModel,
    scorer: &PickScorer,
) -> Vec<(f64, f64)> {
    let mut scores: Vec<f64> = dataset
        .prompts()
        .iter()
        .map(|p| scorer.score(p, &light.generate(p)))
        .collect();
    scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    (0..=10)
        .map(|i| {
            let q = i as f64 / 10.0;
            let idx = ((scores.len() - 1) as f64 * q) as usize;
            (q, scores[idx])
        })
        .collect()
}

fn clip_quantiles(
    dataset: &diffserve_imagegen::PromptDataset,
    light: &diffserve_imagegen::DiffusionModel,
    scorer: &ClipScorer,
) -> Vec<(f64, f64)> {
    let mut scores: Vec<f64> = dataset
        .prompts()
        .iter()
        .map(|p| scorer.score(p, &light.generate(p)))
        .collect();
    scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    (0..=10)
        .map(|i| {
            let q = i as f64 / 10.0;
            let idx = ((scores.len() - 1) as f64 * q) as usize;
            (q, scores[idx])
        })
        .collect()
}
