//! Figure 1b: CDFs of the per-prompt image-quality difference between the
//! lightweight and heavyweight model, measured by PickScore (top panels)
//! and by discriminator confidence (bottom panels), for both 512px pairs.
//!
//! Paper claim to reproduce: for 20–40% of queries the lightweight model's
//! output is as good as or better than the heavyweight model's ("easy
//! queries" — the mass at or below zero).

use diffserve_bench::{f3, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_imagegen::{easy_query_fraction, quality_differences, PickScorer};

fn main() {
    let mut rows = Vec::new();
    for id in [CascadeId::One, CascadeId::Two] {
        let runtime = prepare_runtime(id);
        let light = &runtime.spec.light;
        let heavy = &runtime.spec.heavy;
        let dataset = &runtime.dataset;
        println!("\n== Fig 1b: H={} L={} ==", heavy.name(), light.name());

        // Top panel: PickScore difference (heavy − light), same prompt.
        let pick = PickScorer::default();
        let pick_diffs = quality_differences(dataset, light, heavy, |p, img| pick.score(p, img));
        // Bottom panel: confidence difference.
        let disc = &runtime.discriminator;
        let conf_diffs = quality_differences(dataset, light, heavy, |_, img| {
            disc.confidence(&img.features)
        });

        let mut t = Table::new(&["metric", "p10", "p25", "p50", "p75", "p90", "frac<=0"]);
        for (name, diffs) in [
            ("pickscore_diff", &pick_diffs),
            ("confidence_diff", &conf_diffs),
        ] {
            let mut sorted = diffs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite diffs"));
            let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
            let frac_le0 =
                sorted.iter().filter(|&&d| d <= 0.0).count() as f64 / sorted.len() as f64;
            t.row(vec![
                name.into(),
                f3(q(0.10)),
                f3(q(0.25)),
                f3(q(0.50)),
                f3(q(0.75)),
                f3(q(0.90)),
                f3(frac_le0),
            ]);
            // Full 21-point CDF for the plot.
            for i in 0..=20 {
                let p = i as f64 / 20.0;
                rows.push(vec![format!("{}-{name}", id.name()), f3(p), f3(q(p))]);
            }
        }
        t.print();
        let easy = easy_query_fraction(dataset, light, heavy);
        println!(
            "latent easy-query fraction (light >= heavy quality): {:.3}  [paper: 20-40%]",
            easy
        );
    }
    let path = write_csv("fig1b", &["series", "cdf_p", "difference"], &rows);
    println!("\nwrote {}", path.display());
}
