//! §5 extension experiment: the "Predictive Router" open question.
//!
//! The paper asks whether routing from the query text *before* any
//! generation could beat the post-hoc discriminator cascade. This
//! experiment measures both sides of the trade on Cascade 1: the predictive
//! router saves the light-stage latency on deferred queries but routes on
//! strictly less information.

use diffserve_bench::{f2, f3, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_imagegen::{
    evaluate_cascade, evaluate_predictive, PredictiveConfig, PredictiveRouter, RoutingRule,
};

fn main() {
    let runtime = prepare_runtime(CascadeId::One);
    let router = PredictiveRouter::train(
        &runtime.dataset,
        &runtime.spec.light,
        PredictiveConfig::default(),
    );

    println!("== §5 open question: predictive (text-only) vs post-hoc (discriminator) routing ==");
    let mut t = Table::new(&[
        "threshold",
        "pred_defer",
        "pred_latency",
        "pred_fid",
        "disc_latency",
        "disc_fid",
    ]);
    let mut rows = Vec::new();
    let rule = RoutingRule::Discriminator(&runtime.discriminator);
    for i in 0..=10 {
        let thr = i as f64 / 10.0;
        let pred = evaluate_predictive(
            &runtime.dataset,
            &runtime.spec.light,
            &runtime.spec.heavy,
            &router,
            thr,
        );
        let disc = evaluate_cascade(
            &runtime.dataset,
            &runtime.spec.light,
            &runtime.spec.heavy,
            &rule,
            thr,
        );
        t.row(vec![
            f2(thr),
            f3(pred.heavy_fraction),
            f2(pred.mean_latency),
            f2(pred.fid),
            f2(disc.mean_latency),
            f2(disc.fid),
        ]);
        rows.push(vec![
            f2(thr),
            f3(pred.heavy_fraction),
            f3(pred.mean_latency),
            f3(pred.fid),
            f3(disc.mean_latency),
            f3(disc.fid),
        ]);
    }
    t.print();

    println!("\nReading: at matched thresholds the discriminator wins on FID (it sees");
    println!("the actual image), while the predictive router wins on latency (deferred");
    println!("queries skip the light stage entirely) — quantifying the paper's trade-off.");
    let path = write_csv(
        "ext_predictive",
        &[
            "threshold",
            "pred_defer",
            "pred_latency",
            "pred_fid",
            "disc_latency",
            "disc_fid",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
}
