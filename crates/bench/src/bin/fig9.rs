//! Figure 9: sensitivity to the SLO — average FID and average SLO-violation
//! ratio as the latency SLO sweeps 1..10 s, Cascade 1 on the dynamic trace.
//!
//! Paper claim to reproduce: DiffServe holds low violations (<5%) across
//! the whole range, with quality improving (FID falling) as the SLO
//! relaxes and plateauing once latency stops binding.

use diffserve_bench::{f2, f3, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_core::{run_trace, Policy, RunSettings, SystemConfig};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::{synthesize_azure_trace, AzureTraceConfig};

fn main() {
    let runtime = prepare_runtime(CascadeId::One);
    let trace = synthesize_azure_trace(&AzureTraceConfig::default()).expect("valid trace");

    let mut t = Table::new(&["slo_s", "avg_fid", "avg_slo_violation"]);
    let mut rows = Vec::new();
    for slo_s in 1..=10u64 {
        let config = SystemConfig {
            slo: SimDuration::from_secs(slo_s),
            ..Default::default()
        };
        let settings = RunSettings::new(Policy::DiffServe, trace.max_qps());
        let r = run_trace(&runtime, &config, &settings, &trace);
        t.row(vec![
            slo_s.to_string(),
            f2(r.mean_windowed_fid),
            f3(r.violation_ratio),
        ]);
        rows.push(vec![
            slo_s.to_string(),
            f3(r.mean_windowed_fid),
            f3(r.violation_ratio),
        ]);
    }
    println!("== Fig 9: SLO sensitivity (Cascade 1) ==");
    t.print();
    let path = write_csv("fig9", &["slo_s", "avg_fid", "avg_slo_violation"], &rows);
    println!("\nwrote {}", path.display());
}
