//! Scenario sweep: every Table 1 policy under the standard stress library
//! (steady control, flash crowd, worker failure with recovery, staggered
//! double failure, cascading failure, persistent demand shock, hard-prompt
//! shift, brownout, and the load-correlated hazard cascade).
//!
//! For each (scenario, policy) pair the table reports the paper's core
//! metrics — SLO violation ratio, FID, mean latency, heavy fraction — plus
//! the *recovery time*: seconds after the scenario's first perturbation
//! until the windowed violation ratio returns to ≤ 10%. This is the regime
//! the paper's evaluation does not reach (its demand curves are smooth);
//! query-aware adaptive provisioning should dominate the static baselines
//! exactly here.

use diffserve_bench::{f2, f3, prepare_runtime_small, write_csv, CascadeId, Table};
use diffserve_core::{run_scenario, Policy, RunSettings, SystemConfig};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::{standard_scenarios, Trace};

/// Violation level considered "recovered" after a perturbation.
const RECOVERY_TARGET: f64 = 0.10;

fn main() {
    // `--smoke`: the CI configuration — one policy, two scenarios, a short
    // horizon — so controller regressions that only manifest under
    // perturbations are caught pre-merge without paying for the full sweep.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runtime = prepare_runtime_small(CascadeId::One);
    let system = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    // A moderately loaded base: ~60% of what 8 workers sustain with the
    // cascade, leaving headroom the perturbations then eat.
    let horizon = if smoke { 60 } else { 240 };
    let base = Trace::constant(6.0, SimDuration::from_secs(horizon)).expect("valid base trace");
    let mut scenarios = standard_scenarios(&base, system.num_workers);
    let policies: Vec<Policy> = if smoke {
        // Steady control, the correlated-failure stressor, and the partial
        // degradation (brownout) regime.
        scenarios.retain(|s| matches!(s.name(), "steady" | "cascading-failure" | "brownout"));
        vec![Policy::DiffServe]
    } else {
        Policy::all().to_vec()
    };

    let mut rows = Vec::new();
    for scenario in &scenarios {
        println!(
            "\n== scenario: {} ({} perturbations) ==",
            scenario.name(),
            scenario.perturbations().len()
        );
        let mut t = Table::new(&[
            "policy",
            "slo_viol",
            "fid",
            "mean_lat_s",
            "heavy_frac",
            "recovery_s",
        ]);
        let onsets = scenario.perturbation_onsets();
        // Peak hint: what the scenario can reach, so static policies get a
        // fair peak-provisioned bootstrap.
        let peak = scenario.effective_trace().max_qps();
        for &policy in &policies {
            let settings = RunSettings::new(policy, peak);
            let report = run_scenario(&runtime, &system, &settings, scenario);
            // Worst recovery over all perturbations: a perturbation that
            // never recovers inside the run reports "never".
            let recovery = onsets
                .iter()
                .map(|&at| report.recovery_time_after(at, RECOVERY_TARGET))
                .collect::<Option<Vec<f64>>>()
                .map(|r| r.into_iter().fold(0.0f64, f64::max));
            let recovery_cell = match (onsets.is_empty(), recovery) {
                (true, _) => "n/a".to_string(),
                (false, Some(s)) => f2(s),
                (false, None) => "never".to_string(),
            };
            t.row(vec![
                policy.name().into(),
                f3(report.violation_ratio),
                f2(report.fid),
                f2(report.mean_latency),
                f3(report.heavy_fraction),
                recovery_cell.clone(),
            ]);
            rows.push(vec![
                scenario.name().into(),
                policy.name().into(),
                f3(report.violation_ratio),
                f3(report.fid),
                f3(report.mean_latency),
                f3(report.heavy_fraction),
                recovery_cell,
            ]);
        }
        t.print();
    }
    let path = write_csv(
        "scenarios",
        &[
            "scenario",
            "policy",
            "slo_viol",
            "fid",
            "mean_lat_s",
            "heavy_frac",
            "recovery_s",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
