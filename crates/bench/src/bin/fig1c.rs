//! Figure 1c: FID vs. serving throughput for every configuration of a
//! 10-GPU cluster serving Cascade 1 (threshold × batch sizes × placement),
//! with the Pareto frontier highlighted.
//!
//! Paper claim to reproduce: ~9K configurations; only the Pareto frontier
//! matters for allocation, and it spans a wide quality/throughput range.

use diffserve_bench::{f2, prepare_runtime, write_csv, CascadeId, Table};
use diffserve_imagegen::{evaluate_cascade, RoutingRule};

fn main() {
    let runtime = prepare_runtime(CascadeId::One);
    let light = &runtime.spec.light;
    let heavy = &runtime.spec.heavy;
    let workers = 10usize;
    let batches = [1usize, 2, 4, 8, 16];
    let disc_lat = runtime.discriminator.latency().as_secs_f64();

    // Precompute the FID-vs-threshold curve once (21 thresholds); each
    // configuration then reads its FID from its threshold.
    let rule = RoutingRule::Discriminator(&runtime.discriminator);
    let mut fid_at = Vec::new();
    for i in 0..=20 {
        let t = i as f64 / 20.0;
        let e = evaluate_cascade(&runtime.dataset, light, heavy, &rule, t);
        fid_at.push((t, e.fid, e.deferral_fraction));
    }

    let mut points: Vec<(f64, f64)> = Vec::new(); // (throughput, fid)
    let mut rows = Vec::new();
    let mut count = 0usize;
    for &(t, fid, f) in &fid_at {
        for &b1 in &batches {
            for &b2 in &batches {
                for x1 in 1..workers {
                    let x2 = workers - x1;
                    count += 1;
                    let t1 = b1 as f64
                        / (light.latency().exec_latency(b1).as_secs_f64() + disc_lat * b1 as f64);
                    let t2 = b2 as f64 / heavy.latency().exec_latency(b2).as_secs_f64();
                    let light_cap = x1 as f64 * t1;
                    let heavy_cap = x2 as f64 * t2;
                    // System throughput: light stage must pass everything;
                    // heavy stage must absorb the deferred fraction.
                    let tp = if f > 0.0 {
                        light_cap.min(heavy_cap / f)
                    } else {
                        light_cap
                    };
                    points.push((tp, fid));
                    rows.push(vec![
                        format!("{t:.2}"),
                        b1.to_string(),
                        b2.to_string(),
                        x1.to_string(),
                        x2.to_string(),
                        format!("{tp:.2}"),
                        format!("{fid:.3}"),
                    ]);
                }
            }
        }
    }
    println!("enumerated {count} configurations (paper: ~9K)");

    // Pareto frontier: maximize throughput, minimize FID.
    let mut frontier: Vec<(f64, f64)> = Vec::new();
    let mut sorted = points.clone();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite throughput"));
    let mut best_fid = f64::INFINITY;
    for (tp, fid) in sorted {
        if fid < best_fid - 1e-9 {
            best_fid = fid;
            frontier.push((tp, fid));
        }
    }
    frontier.reverse();

    let mut t = Table::new(&["throughput_qps", "fid", "on_frontier"]);
    for &(tp, fid) in &frontier {
        t.row(vec![f2(tp), f2(fid), "yes".into()]);
    }
    t.print();
    println!(
        "frontier spans {:.1}..{:.1} QPS and FID {:.2}..{:.2}",
        frontier.first().map(|p| p.0).unwrap_or(0.0),
        frontier.last().map(|p| p.0).unwrap_or(0.0),
        frontier.iter().map(|p| p.1).fold(f64::INFINITY, f64::min),
        frontier.iter().map(|p| p.1).fold(0.0f64, f64::max),
    );

    let path = write_csv(
        "fig1c",
        &["threshold", "b1", "b2", "x1", "x2", "throughput_qps", "fid"],
        &rows,
    );
    println!("wrote {}", path.display());
}
