//! Cost of the evaluation metric itself: FID over a full 5K-response set
//! (per-run accounting) and over one 200-response window (time series).

use criterion::{criterion_group, criterion_main, Criterion};
use diffserve_bench::{prepare_runtime_small, CascadeId};
use diffserve_linalg::Mat;
use diffserve_metrics::{fid_score, frechet_distance, GaussianStats};

fn bench_fid(c: &mut Criterion) {
    let runtime = prepare_runtime_small(CascadeId::One);
    let rows: Vec<Vec<f64>> = runtime
        .dataset
        .prompts()
        .iter()
        .map(|p| runtime.spec.light.generate(p).features)
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let generated = Mat::from_rows(&refs);

    c.bench_function("fid_full_dataset", |b| {
        b.iter(|| {
            fid_score(
                std::hint::black_box(&generated),
                runtime.dataset.real_features(),
                1e-6,
            )
            .expect("well-conditioned")
        })
    });

    let window_refs: Vec<&[f64]> = rows[..200].iter().map(|r| r.as_slice()).collect();
    let window = Mat::from_rows(&window_refs);
    c.bench_function("fid_window_200", |b| {
        b.iter(|| {
            let g = GaussianStats::fit(std::hint::black_box(&window), 1e-3).expect("fit");
            frechet_distance(&g, &runtime.reference).expect("finite")
        })
    });
}

criterion_group!(benches, bench_fid);
criterion_main!(benches);
