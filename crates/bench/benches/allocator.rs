//! End-to-end controller decision latency: the full per-tick path (demand
//! estimate → queue model → allocation solve) for both backends, plus
//! deferral-profile queries.

use criterion::{criterion_group, criterion_main, Criterion};
use diffserve_bench::{prepare_runtime_small, CascadeId};
use diffserve_core::{solve_exhaustive, solve_proteus, AllocatorInputs};

fn bench_allocator(c: &mut Criterion) {
    let runtime = prepare_runtime_small(CascadeId::One);
    let thresholds: Vec<f64> = (0..51).map(|i| 0.9 * i as f64 / 50.0).collect();
    let batches = [1usize, 2, 4, 8, 16];
    let mk = |demand: f64| AllocatorInputs {
        demand_qps: demand,
        queue_delay_light: 0.1,
        queue_delay_heavy: 0.4,
        slo: 5.0,
        total_workers: 16,
        deferral: &runtime.deferral,
        light: *runtime.spec.light.latency(),
        heavy: *runtime.spec.heavy.latency(),
        resume_heavy: None,
        discriminator_latency: 0.01,
        batch_sizes: &batches,
        thresholds: &thresholds,
    };
    c.bench_function("controller_tick_exhaustive", |b| {
        let inputs = mk(18.0);
        b.iter(|| solve_exhaustive(std::hint::black_box(&inputs)).expect("feasible"))
    });
    c.bench_function("controller_tick_proteus", |b| {
        let inputs = mk(18.0);
        b.iter(|| solve_proteus(std::hint::black_box(&inputs)).expect("feasible"))
    });
    c.bench_function("deferral_profile_lookup", |b| {
        b.iter(|| {
            runtime
                .deferral
                .fraction_deferred(std::hint::black_box(0.63))
        })
    });
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
