//! Event-throughput of the discrete-event serving simulator: one full
//! 60-second 8-QPS DiffServe run (≈500 queries, thousands of events).

use criterion::{criterion_group, criterion_main, Criterion};
use diffserve_bench::{prepare_runtime_small, CascadeId};
use diffserve_core::{run_trace, Policy, RunSettings, SystemConfig};
use diffserve_simkit::time::SimDuration;
use diffserve_trace::Trace;

fn bench_simulator(c: &mut Criterion) {
    let runtime = prepare_runtime_small(CascadeId::One);
    let config = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    let trace = Trace::constant(8.0, SimDuration::from_secs(60)).expect("valid trace");
    let settings = RunSettings::new(Policy::DiffServe, 8.0);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("run_60s_8qps_diffserve", |b| {
        b.iter(|| run_trace(&runtime, &config, &settings, std::hint::black_box(&trace)))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
