//! §3.2 / §4.4 claim: discriminator scoring overhead is negligible next to
//! diffusion inference (the paper's EfficientNet costs 10 ms on an A100 vs
//! 100 ms+ for even the lightest diffusion model).
//!
//! Benchmarks confidence scoring per image and per batch of 16.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use diffserve_bench::{prepare_runtime_small, CascadeId};
use diffserve_linalg::Mat;

fn bench_discriminator(c: &mut Criterion) {
    let runtime = prepare_runtime_small(CascadeId::One);
    let prompts = runtime.dataset.prompts();
    let image = runtime.spec.light.generate(&prompts[0]);
    c.bench_function("discriminator_confidence_single", |b| {
        b.iter(|| {
            runtime
                .discriminator
                .confidence(std::hint::black_box(&image.features))
        })
    });
    let batch_rows: Vec<Vec<f64>> = prompts[..16]
        .iter()
        .map(|p| runtime.spec.light.generate(p).features)
        .collect();
    c.bench_function("discriminator_confidence_batch16", |b| {
        b.iter_batched(
            || {
                let refs: Vec<&[f64]> = batch_rows.iter().map(|r| r.as_slice()).collect();
                Mat::from_rows(&refs)
            },
            |m| runtime.discriminator.confidences(std::hint::black_box(&m)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_discriminator);
criterion_main!(benches);
