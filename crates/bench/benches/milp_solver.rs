//! §4.5 claim: "the average runtime of the MILP solver is ~10 ms".
//!
//! Benchmarks the allocation MILP at production size (51 thresholds ×
//! 5 batch sizes × 16 workers) against the exhaustive grid solver.

use criterion::{criterion_group, criterion_main, Criterion};
use diffserve_bench::{prepare_runtime_small, CascadeId};
use diffserve_core::{solve_exhaustive, solve_milp_allocation, AllocatorInputs};

fn bench_milp(c: &mut Criterion) {
    let runtime = prepare_runtime_small(CascadeId::One);
    let thresholds: Vec<f64> = (0..51).map(|i| 0.9 * i as f64 / 50.0).collect();
    let batches = [1usize, 2, 4, 8, 16];
    let inputs = AllocatorInputs {
        demand_qps: 18.0,
        queue_delay_light: 0.2,
        queue_delay_heavy: 0.5,
        slo: 5.0,
        total_workers: 16,
        deferral: &runtime.deferral,
        light: *runtime.spec.light.latency(),
        heavy: *runtime.spec.heavy.latency(),
        resume_heavy: None,
        discriminator_latency: 0.01,
        batch_sizes: &batches,
        thresholds: &thresholds,
    };
    c.bench_function("milp_allocation_16workers_51thresholds", |b| {
        b.iter(|| solve_milp_allocation(std::hint::black_box(&inputs)).expect("feasible"))
    });
    c.bench_function("exhaustive_allocation_16workers_51thresholds", |b| {
        b.iter(|| solve_exhaustive(std::hint::black_box(&inputs)).expect("feasible"))
    });
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);
