//! Seeded-determinism guarantee at the simulation-substrate level: the same
//! seed must produce a bit-identical event trace (timestamps, payloads, and
//! every sampler draw along the way). This complements the workspace-level
//! `tests/determinism.rs`, which asserts the same property for the full
//! serving pipeline — if that suite ever regresses, this one tells you
//! whether the fault is below or above the simkit boundary.

use diffserve_simkit::prelude::*;

/// A stochastic actor: every event re-schedules itself after an
/// exponentially distributed delay and logs the (time, draw) pair.
struct PoissonLogger {
    rng: rand::rngs::StdRng,
    exp: Exponential,
    trace: Vec<(SimTime, u64)>,
}

impl Actor<u32> for PoissonLogger {
    fn handle(&mut self, now: SimTime, event: u32, queue: &mut EventQueue<u32>) {
        let delay = self.exp.draw(&mut self.rng);
        self.trace.push((now, u64::from(event)));
        if event < 500 {
            queue.push(now + SimDuration::from_secs_f64(delay), event + 1);
        }
    }
}

fn run_trace_with_seed(seed: u64) -> Vec<(SimTime, u64)> {
    let actor = PoissonLogger {
        rng: seeded_rng(seed),
        exp: Exponential::new(25.0).expect("valid rate"),
        trace: Vec::new(),
    };
    let mut sim = Simulation::new(actor);
    sim.schedule(SimTime::ZERO, 0);
    let outcome = sim.run_until(SimTime::from_secs(1_000_000));
    assert_eq!(outcome, RunOutcome::Drained);
    sim.into_actor().trace
}

#[test]
fn same_seed_produces_bit_identical_event_trace() {
    let a = run_trace_with_seed(2025);
    let b = run_trace_with_seed(2025);
    assert_eq!(a.len(), 501);
    // SimTime is integer microseconds, so Eq here is bit-exactness.
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_traces() {
    let a = run_trace_with_seed(2025);
    let b = run_trace_with_seed(2026);
    assert_eq!(a.len(), b.len(), "trace length is structural, not random");
    assert_ne!(a, b, "timestamps must depend on the seed");
}

#[test]
fn sampler_streams_are_bit_identical_per_seed() {
    fn check<S: Sampler>(name: &str, dist: &S) {
        let mut a = seeded_rng(99);
        let mut b = seeded_rng(99);
        for i in 0..256 {
            let xa = dist.draw(&mut a);
            let xb = dist.draw(&mut b);
            assert_eq!(xa.to_bits(), xb.to_bits(), "{name} diverged at draw {i}");
        }
    }
    check("exp", &Exponential::new(3.0).unwrap());
    check("normal", &Normal::new(1.0, 2.0).unwrap());
    check("gamma", &Gamma::new(2.5, 0.7).unwrap());
    check("lognormal", &LogNormal::new(0.0, 0.4).unwrap());
    check("beta", &Beta::new(2.0, 5.0).unwrap());
}

#[test]
fn derived_streams_are_independent_but_reproducible() {
    let parent = 7;
    let traces: Vec<Vec<(SimTime, u64)>> = (0..3)
        .map(|stream| run_trace_with_seed(derive_seed(parent, stream)))
        .collect();
    assert_ne!(traces[0], traces[1]);
    assert_ne!(traces[1], traces[2]);
    assert_eq!(traces[0], run_trace_with_seed(derive_seed(parent, 0)));
}
