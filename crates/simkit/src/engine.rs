//! A minimal discrete-event simulation driver.
//!
//! [`Simulation`] pairs an [`EventQueue`] with user state implementing
//! [`Actor`]. The driver pops events in timestamp order, advances the clock,
//! and lets the actor schedule follow-up events. The DiffServe end-to-end
//! simulator in `diffserve-core` is built on this loop.

use crate::event::EventQueue;
use crate::time::SimTime;

/// State machine advanced by simulation events.
pub trait Actor<E> {
    /// Handles one event at simulated time `now`, scheduling any follow-up
    /// events on `queue`.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>);
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (likely a runaway schedule loop).
    EventBudgetExhausted,
}

/// Discrete-event simulation driver.
///
/// # Examples
///
/// ```
/// use diffserve_simkit::engine::{Actor, Simulation};
/// use diffserve_simkit::event::EventQueue;
/// use diffserve_simkit::time::{SimDuration, SimTime};
///
/// struct Counter {
///     ticks: u32,
/// }
///
/// impl Actor<()> for Counter {
///     fn handle(&mut self, now: SimTime, _event: (), queue: &mut EventQueue<()>) {
///         self.ticks += 1;
///         if self.ticks < 5 {
///             queue.push(now + SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter { ticks: 0 });
/// sim.schedule(SimTime::ZERO, ());
/// sim.run_until(SimTime::from_secs(100));
/// assert_eq!(sim.actor().ticks, 5);
/// ```
#[derive(Debug)]
pub struct Simulation<E, A> {
    queue: EventQueue<E>,
    actor: A,
    now: SimTime,
    processed: u64,
}

impl<E, A: Actor<E>> Simulation<E, A> {
    /// Creates a simulation around `actor` with an empty event queue.
    pub fn new(actor: A) -> Self {
        Simulation {
            queue: EventQueue::new(),
            actor,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates a simulation around `actor`, preallocating queue space for
    /// `capacity` concurrently pending events. Fleet-scale replays size
    /// this at their steady-state in-flight event count so the event
    /// queue never reallocates mid-run.
    pub fn with_capacity(actor: A, capacity: usize) -> Self {
        Simulation {
            queue: EventQueue::with_capacity(capacity),
            actor,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Schedules an initial event.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.queue.push(time, event);
    }

    /// Current simulated time (timestamp of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the actor state.
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// Exclusive access to the actor state.
    pub fn actor_mut(&mut self) -> &mut A {
        &mut self.actor
    }

    /// Consumes the simulation, returning the actor state.
    pub fn into_actor(self) -> A {
        self.actor
    }

    /// Runs until the queue drains or the next event lies beyond `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.run_until_with_budget(horizon, u64::MAX)
    }

    /// Runs until the queue drains, the horizon is passed, or `budget`
    /// additional events have been processed.
    pub fn run_until_with_budget(&mut self, horizon: SimTime, budget: u64) -> RunOutcome {
        let mut remaining = budget;
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {}
            }
            if remaining == 0 {
                return RunOutcome::EventBudgetExhausted;
            }
            remaining -= 1;
            let (t, event) = self.queue.pop().expect("peeked event must pop");
            debug_assert!(t >= self.now, "time went backwards: {t} < {}", self.now);
            self.now = t;
            self.processed += 1;
            self.actor.handle(t, event, &mut self.queue);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Ev {
        Ping,
        Pong,
    }

    struct PingPong {
        pings: u32,
        pongs: u32,
        limit: u32,
    }

    impl Actor<Ev> for PingPong {
        fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Ping => {
                    self.pings += 1;
                    queue.push(now + SimDuration::from_millis(1), Ev::Pong);
                }
                Ev::Pong => {
                    self.pongs += 1;
                    if self.pongs < self.limit {
                        queue.push(now + SimDuration::from_millis(1), Ev::Ping);
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_alternates_until_limit() {
        let mut sim = Simulation::new(PingPong {
            pings: 0,
            pongs: 0,
            limit: 10,
        });
        sim.schedule(SimTime::ZERO, Ev::Ping);
        let outcome = sim.run_until(SimTime::from_secs(60));
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(sim.actor().pings, 10);
        assert_eq!(sim.actor().pongs, 10);
        assert_eq!(sim.processed(), 20);
        assert_eq!(sim.now(), SimTime::from_millis(19));
    }

    #[test]
    fn horizon_stops_early() {
        let mut sim = Simulation::new(PingPong {
            pings: 0,
            pongs: 0,
            limit: u32::MAX,
        });
        sim.schedule(SimTime::ZERO, Ev::Ping);
        let outcome = sim.run_until(SimTime::from_millis(4));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Events at t = 0,1,2,3,4 ms processed.
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn event_budget_guards_runaway_loops() {
        struct Forever;
        impl Actor<()> for Forever {
            fn handle(&mut self, now: SimTime, _e: (), queue: &mut EventQueue<()>) {
                queue.push(now, ());
            }
        }
        let mut sim = Simulation::new(Forever);
        sim.schedule(SimTime::ZERO, ());
        let outcome = sim.run_until_with_budget(SimTime::MAX, 1000);
        assert_eq!(outcome, RunOutcome::EventBudgetExhausted);
        assert_eq!(sim.processed(), 1000);
    }

    #[test]
    fn into_actor_returns_state() {
        let sim = Simulation::new(PingPong {
            pings: 3,
            pongs: 0,
            limit: 0,
        });
        assert_eq!(sim.into_actor().pings, 3);
    }
}
