//! Time-ordered event queue.
//!
//! [`EventQueue`] is the heart of the discrete-event simulator: a binary heap
//! keyed by `(time, sequence)` so that events scheduled for the same instant
//! pop in insertion order, which keeps simulations deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps are delivered in the order they were pushed
/// (FIFO tie-breaking), which makes whole-simulation replays bit-identical.
///
/// # Examples
///
/// ```
/// use diffserve_simkit::event::EventQueue;
/// use diffserve_simkit::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(7));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 0);
        q.push(SimTime::ZERO, 1);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    proptest! {
        #[test]
        fn drains_sorted(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0usize;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }
    }
}
