//! Time-ordered event queue.
//!
//! [`EventQueue`] is the heart of the discrete-event simulator: a
//! slab-backed 4-ary min-heap keyed by `(time, sequence)` so that events
//! scheduled for the same instant pop in insertion order, which keeps
//! simulations deterministic.
//!
//! The layout is allocation-friendly for multi-million-event replays: the
//! heap array holds only small `(time, seq, slot)` keys, payloads live in a
//! slot-addressed slab that recycles freed slots, and both grow amortized —
//! a simulation that preallocates via [`EventQueue::with_capacity`] never
//! reallocates once it reaches its steady-state in-flight event count. The
//! 4-ary shape halves the sift-down depth of a binary heap and keeps the
//! hot path in one cache line per level.

use crate::time::SimTime;

/// Heap fan-out. Four children per node: shallower sifts than a binary
/// heap, and a node's children share a cache line.
const ARITY: usize = 4;

/// One heap entry: the ordering key plus the payload's slab slot.
#[derive(Debug, Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: usize,
}

impl Key {
    /// The total order popped: earliest time first, FIFO within a time.
    #[inline]
    fn rank(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps are delivered in the order they were pushed
/// (FIFO tie-breaking), which makes whole-simulation replays bit-identical.
///
/// # Examples
///
/// ```
/// use diffserve_simkit::event::EventQueue;
/// use diffserve_simkit::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// 4-ary min-heap over [`Key::rank`]; payloads live in `slab`.
    heap: Vec<Key>,
    /// Slot-addressed payload arena; `None` marks a free slot.
    slab: Vec<Option<E>>,
    /// Freed `slab` slots, reused before the slab grows.
    free: Vec<usize>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Some(event);
                slot
            }
            None => {
                self.slab.push(Some(event));
                self.slab.len() - 1
            }
        };
        self.heap.push(Key { time, seq, slot });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let key = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        let event = self.slab[key.slot].take().expect("popped slot is live");
        self.free.push(key.slot);
        Some((key.time, event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|k| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
    }

    /// Restores the heap property upward from `i` after a push.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[i].rank() < self.heap[parent].rank() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Restores the heap property downward from `i` after a pop.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let first_child = ARITY * i + 1;
            if first_child >= n {
                break;
            }
            let mut min = i;
            for c in first_child..(first_child + ARITY).min(n) {
                if self.heap[c].rank() < self.heap[min].rank() {
                    min = c;
                }
            }
            if min == i {
                break;
            }
            self.heap.swap(i, min);
            i = min;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(7));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 0);
        q.push(SimTime::ZERO, 1);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        // The queue stays usable (and ordered) after a clear.
        q.push(SimTime::from_secs(2), 2);
        q.push(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn slab_slots_are_recycled() {
        // A steady-state workload (push one, pop one) must not grow the
        // slab past its high-water mark of in-flight events.
        let mut q = EventQueue::with_capacity(4);
        for i in 0..4u64 {
            q.push(SimTime::from_micros(i), i);
        }
        for i in 4..10_000u64 {
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, i - 4);
            q.push(SimTime::from_micros(i), i);
        }
        assert_eq!(q.slab.len(), 4);
        assert!(q.slab.capacity() >= 4);
    }

    #[test]
    fn preallocated_capacity_is_respected() {
        let q: EventQueue<u32> = EventQueue::with_capacity(1024);
        assert!(q.heap.capacity() >= 1024);
        assert!(q.slab.capacity() >= 1024);
        assert!(q.is_empty());
    }

    proptest! {
        #[test]
        fn drains_sorted(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0usize;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        /// The arena heap must pop in exactly the order the previous
        /// `BinaryHeap<Reverse<(time, seq)>>` implementation did —
        /// interleaving pushes and pops so slot recycling is exercised.
        #[test]
        fn pop_order_matches_reference_heap(
            ops in proptest::collection::vec((0u64..1_000, 0u8..2), 0..400)
        ) {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;

            let mut q = EventQueue::new();
            let mut reference: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for &(t, op) in &ops {
                if op == 1 {
                    let got = q.pop();
                    let want = reference.pop().map(|Reverse((time, _, id))| (time, id));
                    prop_assert_eq!(got, want);
                } else {
                    let time = SimTime::from_micros(t);
                    q.push(time, seq as u32);
                    reference.push(Reverse((time, seq, seq as u32)));
                    seq += 1;
                }
            }
            // Drain both; tails must agree element-for-element too.
            loop {
                let got = q.pop();
                let want = reference.pop().map(|Reverse((time, _, id))| (time, id));
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
