//! # diffserve-simkit
//!
//! Discrete-event simulation substrate for the DiffServe reproduction
//! (MLSys 2025, "DiffServe: Efficiently Serving Text-to-Image Diffusion
//! Models with Query-Aware Model Scaling").
//!
//! The paper's primary evaluation vehicle is a discrete-event simulator of a
//! GPU serving cluster; this crate provides the simulation machinery it is
//! built on:
//!
//! * [`time`] — integer-microsecond simulated time ([`SimTime`],
//!   [`SimDuration`]) for exact, platform-independent event ordering.
//! * [`event`] — a deterministic time-ordered [`EventQueue`] with FIFO
//!   tie-breaking.
//! * [`engine`] — a small driver loop ([`Simulation`]) over an [`Actor`]
//!   state machine.
//! * [`rng`] — seeded RNG helpers and from-scratch samplers (exponential,
//!   normal, gamma, beta, log-normal).
//! * [`stats`] — online statistics (Welford, EWMA, quantiles) used by the
//!   controller and by experiment harnesses.
//!
//! # Examples
//!
//! ```
//! use diffserve_simkit::prelude::*;
//!
//! // A Poisson arrival process with deterministic replay.
//! let exp = Exponential::new(20.0)?;
//! let mut rng = seeded_rng(7);
//! let mut t = SimTime::ZERO;
//! let mut queue = EventQueue::new();
//! for i in 0..100u32 {
//!     t += SimDuration::from_secs_f64(exp.draw(&mut rng));
//!     queue.push(t, i);
//! }
//! assert_eq!(queue.len(), 100);
//! # Ok::<(), diffserve_simkit::rng::DistributionError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Actor, RunOutcome, Simulation};
pub use event::EventQueue;
pub use rng::{seeded_rng, Sampler};
pub use time::{SimDuration, SimTime};

/// Convenience re-exports for simulation code.
pub mod prelude {
    pub use crate::engine::{Actor, RunOutcome, Simulation};
    pub use crate::event::EventQueue;
    pub use crate::rng::{
        derive_seed, seeded_rng, Beta, Exponential, Gamma, LogNormal, Normal, Sampler,
    };
    pub use crate::stats::{Ewma, Quantiles, Welford};
    pub use crate::time::{SimDuration, SimTime};
}
