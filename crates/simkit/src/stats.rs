//! Online statistics: Welford mean/variance, EWMA, and empirical quantiles.

/// Numerically stable online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use diffserve_simkit::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert_eq!(w.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        *self = Welford { n, mean, m2 };
    }
}

/// Exponentially weighted moving average.
///
/// The DiffServe controller smooths observed demand with an EWMA before
/// feeding it to the resource allocator (paper §3.3).
///
/// # Examples
///
/// ```
/// use diffserve_simkit::stats::Ewma;
///
/// let mut e = Ewma::new(0.5).unwrap();
/// e.update(10.0);
/// e.update(20.0);
/// assert_eq!(e.value(), Some(15.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Result<Self, EwmaError> {
        if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
            return Err(EwmaError { alpha });
        }
        Ok(Ewma { alpha, value: None })
    }

    /// Feeds one observation and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        };
        self.value = Some(next);
        next
    }

    /// Current smoothed value, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current smoothed value, or `fallback` before the first observation.
    pub fn value_or(&self, fallback: f64) -> f64 {
        self.value.unwrap_or(fallback)
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Error returned for an invalid EWMA smoothing factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwmaError {
    alpha: f64,
}

impl std::fmt::Display for EwmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EWMA smoothing factor must lie in (0, 1], got {}",
            self.alpha
        )
    }
}

impl std::error::Error for EwmaError {}

/// Buffered empirical quantile estimator.
///
/// Stores all observations; suitable for per-experiment latency summaries
/// (tens of thousands of points), not unbounded streams.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Quantiles {
    data: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Quantiles::default()
    }

    /// Adds one observation. NaN observations are ignored.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.data.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.data.len()
    }

    /// Returns the `q`-quantile (linear interpolation), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.data.is_empty() {
            return None;
        }
        if !self.sorted {
            self.data
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered on push"));
            self.sorted = true;
        }
        let pos = q * (self.data.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.data[lo] * (1.0 - frac) + self.data[hi] * frac)
    }

    /// Median shortcut.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_basic() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn ewma_smooths() {
        let mut e = Ewma::new(0.25).unwrap();
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(1.5), 1.5);
        e.update(8.0);
        assert_eq!(e.value(), Some(8.0));
        let v = e.update(0.0);
        assert!((v - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_rejects_bad_alpha() {
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(1.5).is_err());
        assert!(Ewma::new(f64::NAN).is_err());
        assert!(Ewma::new(1.0).is_ok());
        let err = Ewma::new(2.0).unwrap_err();
        assert!(format!("{err}").contains("(0, 1]"));
    }

    #[test]
    fn quantiles_interpolate() {
        let mut q = Quantiles::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            q.push(x);
        }
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(4.0));
        assert_eq!(q.median(), Some(2.5));
        assert_eq!(q.count(), 4);
    }

    #[test]
    fn quantiles_ignore_nan_and_handle_empty() {
        let mut q = Quantiles::new();
        q.push(f64::NAN);
        assert_eq!(q.count(), 0);
        assert_eq!(q.median(), None);
    }

    proptest! {
        #[test]
        fn welford_mean_bounded_by_extremes(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(w.mean() >= lo - 1e-6 && w.mean() <= hi + 1e-6);
            prop_assert!(w.variance() >= -1e-9);
        }

        #[test]
        fn quantiles_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let mut q = Quantiles::new();
            for &x in &xs {
                q.push(x);
            }
            let q25 = q.quantile(0.25).unwrap();
            let q50 = q.quantile(0.50).unwrap();
            let q75 = q.quantile(0.75).unwrap();
            prop_assert!(q25 <= q50 && q50 <= q75);
        }
    }
}
