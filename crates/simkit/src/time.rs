//! Simulated time as integer microseconds.
//!
//! The simulator keeps time as a `u64` microsecond counter instead of `f64`
//! seconds so that event ordering is exact and runs are bit-reproducible
//! across platforms. [`SimTime`] is a point on the simulated timeline;
//! [`SimDuration`] is a span between two points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, measured in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use diffserve_simkit::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_secs_f64(1.5);
/// assert_eq!(t.as_micros(), 1_500_000);
/// let later = t + SimDuration::from_millis(250);
/// assert_eq!(later.as_secs_f64(), 1.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use diffserve_simkit::time::SimDuration;
///
/// let d = SimDuration::from_millis(10) * 3;
/// assert_eq!(d.as_secs_f64(), 0.03);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from integer milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from integer seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime requires a finite non-negative number of seconds, got {secs}"
        );
        SimTime((secs * 1e6).round() as u64)
    }

    /// Returns the time as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Duration elapsed since `earlier`, or `None` if `earlier` is in the
    /// future.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from integer seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration requires a finite non-negative number of seconds, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the duration as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_micros() {
        let t = SimTime::from_micros(1234);
        assert_eq!(t.as_micros(), 1234);
    }

    #[test]
    fn seconds_roundtrip() {
        let t = SimTime::from_secs_f64(2.5);
        assert_eq!(t.as_micros(), 2_500_000);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        let d = t.saturating_since(SimTime::from_secs(1));
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn saturating_since_future_is_zero() {
        let past = SimTime::from_secs(1);
        let future = SimTime::from_secs(2);
        assert_eq!(past.saturating_since(future), SimDuration::ZERO);
        assert_eq!(past.checked_since(future), None);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::ZERO).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10) * 4 / 2;
        assert_eq!(d, SimDuration::from_millis(20));
    }

    proptest! {
        #[test]
        fn add_then_since_is_identity(base in 0u64..1 << 40, delta in 0u64..1 << 40) {
            let t = SimTime::from_micros(base);
            let d = SimDuration::from_micros(delta);
            prop_assert_eq!((t + d).saturating_since(t), d);
        }

        #[test]
        fn secs_f64_roundtrip_close(us in 0u64..1 << 50) {
            let t = SimTime::from_micros(us);
            let back = SimTime::from_secs_f64(t.as_secs_f64());
            let err = back.as_micros().abs_diff(t.as_micros());
            // f64 has 52 bits of mantissa; allow tiny rounding slack.
            prop_assert!(err <= 1, "err={err}");
        }
    }
}
