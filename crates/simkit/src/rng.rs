//! Seeded random-number utilities and sampling distributions.
//!
//! All stochastic components of the reproduction draw from [`StdRng`]
//! instances created with [`seeded_rng`], so every experiment is reproducible
//! from its seed. The distributions here (exponential, normal, gamma, beta,
//! log-normal) are implemented from scratch because only the base `rand`
//! crate is sanctioned for this workspace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a `u64` seed.
///
/// # Examples
///
/// ```
/// use diffserve_simkit::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to give independent deterministic streams to different components
/// (arrival process, model noise, discriminator init, ...) from one
/// experiment seed. Based on SplitMix64 mixing.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A distribution over `f64` that can be sampled with any [`Rng`].
pub trait Sampler {
    /// Draws one sample.
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `n` samples into a vector.
    fn draw_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.draw(rng)).collect()
    }
}

/// Exponential distribution with the given rate (events per unit time).
///
/// Used for Poisson-process inter-arrival times.
///
/// # Examples
///
/// ```
/// use diffserve_simkit::rng::{seeded_rng, Exponential, Sampler};
///
/// let exp = Exponential::new(10.0).unwrap();
/// let mut rng = seeded_rng(7);
/// let x = exp.draw(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Result<Self, DistributionError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(DistributionError::new(format!(
                "exponential rate must be finite and positive, got {rate}"
            )));
        }
        Ok(Exponential { rate })
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Sampler for Exponential {
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF; guard against u == 0 so ln stays finite.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

/// Normal (Gaussian) distribution, sampled with the Marsaglia polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` is not finite or `std` is negative/NaN.
    pub fn new(mean: f64, std: f64) -> Result<Self, DistributionError> {
        if !(mean.is_finite() && std.is_finite() && std >= 0.0) {
            return Err(DistributionError::new(format!(
                "normal requires finite mean and non-negative std, got ({mean}, {std})"
            )));
        }
        Ok(Normal { mean, std })
    }

    /// The standard normal N(0, 1).
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Sampler for Normal {
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; we discard the second variate to keep the
        // sampler stateless (and deterministic per call).
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std * u * factor;
            }
        }
    }
}

/// Gamma distribution (shape/scale parameterization), sampled with the
/// Marsaglia–Tsang method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with `shape` k and `scale` θ.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistributionError> {
        if !(shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0) {
            return Err(DistributionError::new(format!(
                "gamma requires positive shape and scale, got ({shape}, {scale})"
            )));
        }
        Ok(Gamma { shape, scale })
    }

    fn draw_shape_ge_one<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let normal = Normal::standard();
        loop {
            let x = normal.draw(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
                return d * v3;
            }
        }
    }
}

impl Sampler for Gamma {
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape >= 1.0 {
            self.scale * Self::draw_shape_ge_one(self.shape, rng)
        } else {
            // Boost for shape < 1: Gamma(a) = Gamma(a + 1) * U^(1/a).
            let g = Self::draw_shape_ge_one(self.shape + 1.0, rng);
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            self.scale * g * u.powf(1.0 / self.shape)
        }
    }
}

/// Beta distribution on `[0, 1]`, sampled as a ratio of gammas.
///
/// The reproduction uses a beta to model prompt *difficulty*: most prompts
/// are easy, with a long tail of hard ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: Gamma,
    b: Gamma,
}

impl Beta {
    /// Creates a beta distribution with parameters `alpha`, `beta`.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and positive.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, DistributionError> {
        Ok(Beta {
            a: Gamma::new(alpha, 1.0)?,
            b: Gamma::new(beta, 1.0)?,
        })
    }
}

impl Sampler for Beta {
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = self.a.draw(rng);
        let y = self.b.draw(rng);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Creates a log-normal with location `mu` and scale `sigma` (parameters
    /// of the underlying normal).
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying normal parameters are invalid.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistributionError> {
        Ok(LogNormal {
            inner: Normal::new(mu, sigma)?,
        })
    }
}

impl Sampler for LogNormal {
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.draw(rng).exp()
    }
}

/// Error returned when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributionError {
    message: String,
}

impl DistributionError {
    fn new(message: String) -> Self {
        DistributionError { message }
    }
}

impl std::fmt::Display for DistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.message)
    }
}

impl std::error::Error for DistributionError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_seed_varies_by_stream() {
        let s0 = derive_seed(1, 0);
        let s1 = derive_seed(1, 1);
        let s2 = derive_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // Deterministic.
        assert_eq!(derive_seed(1, 0), s0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let exp = Exponential::new(4.0).unwrap();
        let mut rng = seeded_rng(9);
        let samples = exp.draw_n(&mut rng, 50_000);
        let (mean, _) = mean_and_var(&samples);
        assert!((mean - 0.25).abs() < 0.01, "mean={mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_moments() {
        let n = Normal::new(3.0, 2.0).unwrap();
        let mut rng = seeded_rng(10);
        let samples = n.draw_n(&mut rng, 50_000);
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn gamma_moments() {
        // Gamma(k, theta): mean k*theta, var k*theta^2.
        let g = Gamma::new(3.0, 2.0).unwrap();
        let mut rng = seeded_rng(11);
        let samples = g.draw_n(&mut rng, 50_000);
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 6.0).abs() < 0.15, "mean={mean}");
        assert!((var - 12.0).abs() < 0.8, "var={var}");
    }

    #[test]
    fn gamma_small_shape() {
        let g = Gamma::new(0.5, 1.0).unwrap();
        let mut rng = seeded_rng(12);
        let samples = g.draw_n(&mut rng, 50_000);
        let (mean, _) = mean_and_var(&samples);
        assert!((mean - 0.5).abs() < 0.03, "mean={mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn beta_moments_and_support() {
        let b = Beta::new(2.0, 5.0).unwrap();
        let mut rng = seeded_rng(13);
        let samples = b.draw_n(&mut rng, 50_000);
        let (mean, _) = mean_and_var(&samples);
        assert!((mean - 2.0 / 7.0).abs() < 0.01, "mean={mean}");
        assert!(samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn lognormal_positive() {
        let ln = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = seeded_rng(14);
        assert!(ln.draw_n(&mut rng, 1000).iter().all(|&x| x > 0.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Beta::new(1.0, 0.0).is_err());
    }

    #[test]
    fn error_display_nonempty() {
        let err = Exponential::new(-1.0).unwrap_err();
        assert!(format!("{err}").contains("exponential"));
    }
}
