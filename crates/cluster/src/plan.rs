//! The shared serving plan updated by the controller and read by workers.

use diffserve_core::ModelTier;

/// A snapshot of the controller's decisions: worker tier assignments, batch
/// sizes, and the cascade threshold. Workers read the current plan at every
/// batch boundary; the controller swaps in new plans atomically behind a
/// lock.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingPlan {
    /// Tier each worker should host.
    pub tiers: Vec<ModelTier>,
    /// Light-stage batch size.
    pub light_batch: usize,
    /// Heavy-stage batch size.
    pub heavy_batch: usize,
    /// Cascade confidence threshold.
    pub threshold: f64,
}

impl ServingPlan {
    /// A bootstrap plan: half the fleet per tier, batch 1, mid threshold.
    pub fn bootstrap(num_workers: usize) -> Self {
        ServingPlan {
            tiers: (0..num_workers)
                .map(|i| {
                    if i < num_workers / 2 {
                        ModelTier::Light
                    } else {
                        ModelTier::Heavy
                    }
                })
                .collect(),
            light_batch: 1,
            heavy_batch: 1,
            threshold: 0.5,
        }
    }

    /// Batch size for a tier.
    pub fn batch_for(&self, tier: ModelTier) -> usize {
        match tier {
            ModelTier::Light => self.light_batch,
            ModelTier::Heavy => self.heavy_batch,
        }
    }

    /// Worker indices currently assigned to a tier.
    pub fn workers_of(&self, tier: ModelTier) -> Vec<usize> {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == tier)
            .map(|(i, _)| i)
            .collect()
    }

    /// Re-derives tier assignments from target counts, switching as few
    /// workers as possible (stable assignment).
    pub fn retarget(&mut self, light_workers: usize, heavy_workers: usize) {
        self.retarget_masked(light_workers, heavy_workers, &[]);
    }

    /// Like [`ServingPlan::retarget`], but only counts and reassigns workers
    /// whose `excluded` flag is unset — used under scenario-driven worker
    /// churn so a failed worker's slot neither satisfies nor distorts the
    /// allocation. `excluded` may be shorter than the fleet; missing entries
    /// mean "not excluded".
    ///
    /// # Examples
    ///
    /// ```
    /// use diffserve_cluster::ServingPlan;
    /// use diffserve_core::ModelTier;
    ///
    /// let mut plan = ServingPlan::bootstrap(4); // 2 light, 2 heavy
    /// // Worker 3 is down: rebalance the 3 alive workers to 1 light / 2 heavy.
    /// plan.retarget_masked(1, 2, &[false, false, false, true]);
    /// let alive_light = plan
    ///     .workers_of(ModelTier::Light)
    ///     .into_iter()
    ///     .filter(|&i| i != 3)
    ///     .count();
    /// assert_eq!(alive_light, 1);
    /// ```
    pub fn retarget_masked(
        &mut self,
        light_workers: usize,
        heavy_workers: usize,
        excluded: &[bool],
    ) {
        let is_excluded = |i: usize| excluded.get(i).copied().unwrap_or(false);
        let avail: Vec<usize> = (0..self.tiers.len()).filter(|&i| !is_excluded(i)).collect();
        let n = avail.len();
        let spare = n.saturating_sub(light_workers + heavy_workers);
        let target_light = (light_workers + spare).min(n);
        let mut current_light = avail
            .iter()
            .filter(|&&i| self.tiers[i] == ModelTier::Light)
            .count();
        // Flip workers one at a time until the count matches.
        for &i in &avail {
            if current_light == target_light {
                break;
            }
            if current_light < target_light && self.tiers[i] == ModelTier::Heavy {
                self.tiers[i] = ModelTier::Light;
                current_light += 1;
            } else if current_light > target_light && self.tiers[i] == ModelTier::Light {
                self.tiers[i] = ModelTier::Heavy;
                current_light -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_splits_fleet() {
        let p = ServingPlan::bootstrap(8);
        assert_eq!(p.workers_of(ModelTier::Light).len(), 4);
        assert_eq!(p.workers_of(ModelTier::Heavy).len(), 4);
        assert_eq!(p.batch_for(ModelTier::Light), 1);
    }

    #[test]
    fn retarget_minimizes_switches() {
        let mut p = ServingPlan::bootstrap(8);
        p.retarget(6, 2);
        assert_eq!(p.workers_of(ModelTier::Light).len(), 6);
        // The original 4 light workers must not have flipped.
        for i in 0..4 {
            assert_eq!(p.tiers[i], ModelTier::Light);
        }
    }

    #[test]
    fn retarget_masked_ignores_failed_workers() {
        let mut p = ServingPlan::bootstrap(8); // 0..4 light, 4..8 heavy
        let mut excluded = vec![false; 8];
        excluded[6] = true;
        excluded[7] = true;
        p.retarget_masked(4, 2, &excluded);
        let alive_light = (0..6).filter(|&i| p.tiers[i] == ModelTier::Light).count();
        let alive_heavy = (0..6).filter(|&i| p.tiers[i] == ModelTier::Heavy).count();
        assert_eq!(alive_light, 4);
        assert_eq!(alive_heavy, 2);
        // Excluded workers were not touched.
        assert_eq!(p.tiers[6], ModelTier::Heavy);
        assert_eq!(p.tiers[7], ModelTier::Heavy);
    }

    #[test]
    fn retarget_assigns_spare_to_light() {
        let mut p = ServingPlan::bootstrap(8);
        p.retarget(2, 2); // 4 spare → light
        assert_eq!(p.workers_of(ModelTier::Light).len(), 6);
        assert_eq!(p.workers_of(ModelTier::Heavy).len(), 2);
    }
}
