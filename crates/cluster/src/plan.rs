//! The shared serving plan updated by the controller and read by workers.

/// A snapshot of the controller's decisions: worker tier assignments,
/// per-tier batch sizes, and the per-boundary cascade thresholds. Workers
/// read the current plan at every batch boundary; the controller swaps in
/// new plans atomically behind a lock.
///
/// Tiers are 0-based ladder indices, cheapest first. A legacy two-model
/// cascade is the `num_tiers == 2` special case: tier `0` is the light
/// model, tier `1` the heavy model, and `thresholds` holds the single
/// cascade threshold (which Proteus reuses as its heavy routing fraction).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingPlan {
    /// Ladder tier each worker should host.
    pub tiers: Vec<usize>,
    /// Batch size per ladder tier (length = number of tiers).
    pub batches: Vec<usize>,
    /// Confidence threshold per escalation boundary (length = tiers − 1).
    pub thresholds: Vec<f64>,
    /// `true` while the actuated plan is the overload fallback: the
    /// predictive router stops bypassing so every arrival enters the entry
    /// tier, where the floored thresholds can shed it.
    pub bypass_suspended: bool,
}

impl ServingPlan {
    /// A two-tier bootstrap plan: half the fleet per tier, batch 1, mid
    /// threshold.
    pub fn bootstrap(num_workers: usize) -> Self {
        ServingPlan::bootstrap_tiers(num_workers, 2)
    }

    /// An N-tier bootstrap plan: half the fleet on the entry tier, half on
    /// the terminal tier (mid tiers start empty — the first control tick
    /// staffs them), batch 1 everywhere, mid thresholds. Mirrors the
    /// simulator's pre-bootstrap worker split.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiers < 2`.
    pub fn bootstrap_tiers(num_workers: usize, num_tiers: usize) -> Self {
        assert!(num_tiers >= 2, "a ladder needs at least two tiers");
        ServingPlan {
            tiers: (0..num_workers)
                .map(|i| {
                    if i < num_workers / 2 {
                        0
                    } else {
                        num_tiers - 1
                    }
                })
                .collect(),
            batches: vec![1; num_tiers],
            thresholds: vec![0.5; num_tiers - 1],
            bypass_suspended: false,
        }
    }

    /// Number of ladder tiers this plan provisions for.
    pub fn num_tiers(&self) -> usize {
        self.batches.len()
    }

    /// Batch size for a ladder tier (clamped to the last tier's slot for
    /// out-of-range indices, which only arise mid-reconfiguration).
    pub fn batch_for(&self, tier: usize) -> usize {
        self.batches[tier.min(self.batches.len() - 1)]
    }

    /// Worker indices currently assigned to a ladder tier.
    pub fn workers_of(&self, tier: usize) -> Vec<usize> {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == tier)
            .map(|(i, _)| i)
            .collect()
    }

    /// Re-derives two-tier assignments from target counts, switching as few
    /// workers as possible (stable assignment).
    pub fn retarget(&mut self, light_workers: usize, heavy_workers: usize) {
        self.retarget_masked(light_workers, heavy_workers, &[]);
    }

    /// Like [`ServingPlan::retarget`], but only counts and reassigns workers
    /// whose `excluded` flag is unset — used under scenario-driven worker
    /// churn so a failed worker's slot neither satisfies nor distorts the
    /// allocation. `excluded` may be shorter than the fleet; missing entries
    /// mean "not excluded".
    ///
    /// # Examples
    ///
    /// ```
    /// use diffserve_cluster::ServingPlan;
    ///
    /// let mut plan = ServingPlan::bootstrap(4); // 2 light, 2 heavy
    /// // Worker 3 is down: rebalance the 3 alive workers to 1 light / 2 heavy.
    /// plan.retarget_masked(1, 2, &[false, false, false, true]);
    /// let alive_light = plan.workers_of(0).into_iter().filter(|&i| i != 3).count();
    /// assert_eq!(alive_light, 1);
    /// ```
    pub fn retarget_masked(
        &mut self,
        light_workers: usize,
        heavy_workers: usize,
        excluded: &[bool],
    ) {
        let is_excluded = |i: usize| excluded.get(i).copied().unwrap_or(false);
        let avail: Vec<usize> = (0..self.tiers.len()).filter(|&i| !is_excluded(i)).collect();
        let n = avail.len();
        let spare = n.saturating_sub(light_workers + heavy_workers);
        let target_light = (light_workers + spare).min(n);
        let mut current_light = avail.iter().filter(|&&i| self.tiers[i] == 0).count();
        // Flip workers one at a time until the count matches.
        for &i in &avail {
            if current_light == target_light {
                break;
            }
            if current_light < target_light && self.tiers[i] != 0 {
                self.tiers[i] = 0;
                current_light += 1;
            } else if current_light > target_light && self.tiers[i] == 0 {
                self.tiers[i] = 1;
                current_light -= 1;
            }
        }
    }

    /// N-tier generalization of [`ServingPlan::retarget_masked`]: re-derives
    /// tier assignments from per-tier target counts over the non-excluded
    /// workers, flipping as few workers as possible. Spare capacity beyond
    /// the targets defaults to the entry tier (mirroring the two-tier
    /// retarget); an over-subscribed plan is truncated from the deep end.
    pub fn retarget_ladder_masked(&mut self, workers: &[usize], excluded: &[bool]) {
        let nt = self.num_tiers();
        let is_excluded = |i: usize| excluded.get(i).copied().unwrap_or(false);
        let avail: Vec<usize> = (0..self.tiers.len()).filter(|&i| !is_excluded(i)).collect();
        let mut target = vec![0usize; nt];
        for (t, &w) in workers.iter().enumerate().take(nt) {
            target[t] = w;
        }
        let assigned: usize = target.iter().sum();
        target[0] += avail.len().saturating_sub(assigned);
        let mut excess = assigned.saturating_sub(avail.len());
        for t in (0..nt).rev() {
            if excess == 0 {
                break;
            }
            let cut = target[t].min(excess);
            target[t] -= cut;
            excess -= cut;
        }
        let mut current = vec![0usize; nt];
        for &i in &avail {
            current[self.tiers[i].min(nt - 1)] += 1;
        }
        // Move workers from surplus tiers to deficit tiers, lowest worker
        // index first (the two-tier retarget's tie-break).
        for &i in &avail {
            let t = self.tiers[i].min(nt - 1);
            if current[t] <= target[t] {
                continue;
            }
            let Some(d) = (0..nt).find(|&d| current[d] < target[d]) else {
                break;
            };
            self.tiers[i] = d;
            current[t] -= 1;
            current[d] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_splits_fleet() {
        let p = ServingPlan::bootstrap(8);
        assert_eq!(p.workers_of(0).len(), 4);
        assert_eq!(p.workers_of(1).len(), 4);
        assert_eq!(p.batch_for(0), 1);
        assert_eq!(p.num_tiers(), 2);
    }

    #[test]
    fn bootstrap_tiers_leaves_mid_tiers_empty() {
        let p = ServingPlan::bootstrap_tiers(8, 4);
        assert_eq!(p.workers_of(0).len(), 4);
        assert_eq!(p.workers_of(1).len(), 0);
        assert_eq!(p.workers_of(2).len(), 0);
        assert_eq!(p.workers_of(3).len(), 4);
        assert_eq!(p.thresholds.len(), 3);
    }

    #[test]
    fn retarget_minimizes_switches() {
        let mut p = ServingPlan::bootstrap(8);
        p.retarget(6, 2);
        assert_eq!(p.workers_of(0).len(), 6);
        // The original 4 light workers must not have flipped.
        for i in 0..4 {
            assert_eq!(p.tiers[i], 0);
        }
    }

    #[test]
    fn retarget_masked_ignores_failed_workers() {
        let mut p = ServingPlan::bootstrap(8); // 0..4 light, 4..8 heavy
        let mut excluded = vec![false; 8];
        excluded[6] = true;
        excluded[7] = true;
        p.retarget_masked(4, 2, &excluded);
        let alive_light = (0..6).filter(|&i| p.tiers[i] == 0).count();
        let alive_heavy = (0..6).filter(|&i| p.tiers[i] == 1).count();
        assert_eq!(alive_light, 4);
        assert_eq!(alive_heavy, 2);
        // Excluded workers were not touched.
        assert_eq!(p.tiers[6], 1);
        assert_eq!(p.tiers[7], 1);
    }

    #[test]
    fn retarget_assigns_spare_to_light() {
        let mut p = ServingPlan::bootstrap(8);
        p.retarget(2, 2); // 4 spare → light
        assert_eq!(p.workers_of(0).len(), 6);
        assert_eq!(p.workers_of(1).len(), 2);
    }

    #[test]
    fn ladder_retarget_staffs_mid_tiers_stably() {
        let mut p = ServingPlan::bootstrap_tiers(8, 3); // 4 on tier 0, 4 on tier 2
        p.retarget_ladder_masked(&[4, 2, 2], &[]);
        assert_eq!(p.workers_of(0).len(), 4);
        assert_eq!(p.workers_of(1).len(), 2);
        assert_eq!(p.workers_of(2).len(), 2);
        // Tier-0 workers were already in place and must not have flipped.
        for i in 0..4 {
            assert_eq!(p.tiers[i], 0);
        }
    }

    #[test]
    fn ladder_retarget_spills_spare_to_entry_tier() {
        let mut p = ServingPlan::bootstrap_tiers(6, 3);
        p.retarget_ladder_masked(&[1, 1, 1], &[]);
        assert_eq!(p.workers_of(0).len(), 4); // 1 target + 3 spare
        assert_eq!(p.workers_of(1).len(), 1);
        assert_eq!(p.workers_of(2).len(), 1);
    }

    #[test]
    fn ladder_retarget_truncates_oversubscription_from_deep_end() {
        let mut p = ServingPlan::bootstrap_tiers(4, 3);
        let mut excluded = vec![false; 4];
        excluded[3] = true;
        p.retarget_ladder_masked(&[2, 1, 1], &excluded); // 4 targets, 3 alive
        let alive: Vec<usize> = (0..3).map(|i| p.tiers[i]).collect();
        assert_eq!(alive.iter().filter(|&&t| t == 0).count(), 2);
        assert_eq!(alive.iter().filter(|&&t| t == 1).count(), 1);
        assert_eq!(alive.iter().filter(|&&t| t == 2).count(), 0);
    }
}
