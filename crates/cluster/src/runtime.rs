//! The thread-based testbed runtime.
//!
//! The paper validates its simulator against a 16×A100 cluster where the
//! controller, load balancer, and workers are separate processes talking
//! over gRPC (§4.1). This module reproduces that architecture at
//! thread-and-channel scale: worker threads batch and "execute" queries by
//! sleeping the profiled latency (scaled by [`ClusterConfig::time_scale`]),
//! escalations travel over channels, and a controller thread re-solves the
//! allocation periodically. The Fig. 6 experiment compares its measurements
//! with the simulator's — the paper reports a 0.56% FID / 1.1%
//! SLO-violation gap between the two.
//!
//! The testbed is the second engine behind the unified session API:
//! [`ClusterBackend`] implements [`ServingBackend`], and
//! [`ClusterSessionExt::build_cluster`] plugs it into the
//! [`SessionBuilder`] fluent path.
//! The batch entry points [`run_cluster`] / [`run_cluster_scenario`] are
//! thin wrappers over such a session.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use diffserve_core::serve::{
    drain_outcomes, session_rolling_fid, BuildError, QueryOutcome, QuerySpec, QueryTicket,
    ServingBackend, ServingSession, SessionBuilder, SessionSnapshot, SessionSpec,
};
use diffserve_core::{
    AddonStats, AddonsConfig, CascadeRuntime, CompletedResponse, ConfigError, ControlDirective,
    ControlLoop, ControlObservation, ModelTier, ModuleCache, PlanActuator, Policy, QueryId,
    RunReport, RunSettings, SystemConfig,
};
use diffserve_imagegen::{
    resume_savings, reused_steps, DiffusionModel, Discriminator, OnlinePredictiveRouter,
    OnlineRouterConfig, Prompt, StageLatencyBreakdown, StageState,
};
use diffserve_metrics::{GaussianStats, RollingFid, SloTracker, WindowedSeries};
use diffserve_simkit::prelude::*;
use diffserve_trace::{
    CapacityEvent, FleetHealth, Hazard, HazardProcess, Incident, IncidentLog, Scenario,
    ScenarioError, ScenarioEvent, Trace,
};
use parking_lot::{Mutex, RwLock};
use rand::Rng;

use crate::plan::ServingPlan;

/// Cluster-runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// The shared system configuration (workers, SLO, controller settings).
    pub system: SystemConfig,
    /// Wall-clock seconds per simulated second. `0.02` runs a 350 s trace
    /// in 7 s while keeping all latency ratios intact.
    pub time_scale: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            system: SystemConfig::default(),
            time_scale: 0.02,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    qid: u64,
    arrival: f64,  // sim seconds
    deadline: f64, // sim seconds
    /// Ladder tier the query entered the system at — `0` on the classic
    /// policy path, deeper when the predictive router skipped cheap tiers.
    /// The cross-tier GPU-time accounting sums sunk stages from here.
    entry: usize,
    /// Explicit prompt payload; `None` serves the dataset's cyclic prompt.
    prompt: Option<Prompt>,
    /// Denoise progress carried over from the light tier, set at the
    /// escalation site when [`SystemConfig::resume_from_latents`] is on.
    resume: Option<StageState>,
    /// Add-on module (catalog index) this job requires; rides along on
    /// escalation so the heavy pass needs the same module.
    addon: Option<usize>,
}

struct Shared {
    plan: RwLock<ServingPlan>,
    depths: Vec<AtomicUsize>,
    arrivals_since_tick: AtomicU64,
    heavy_since_tick: AtomicU64,
    /// SLO violations (drops + late completions) attributed to the light
    /// tier since the last control tick — AIMD's decrease signal.
    violations_light_since_tick: AtomicU64,
    /// SLO violations attributed to the heavy tier since the last tick.
    violations_heavy_since_tick: AtomicU64,
    shutdown: AtomicBool,
    start: Instant,
    scale: f64,
    /// Scenario fail-stop flags, one per worker.
    failed: Vec<AtomicBool>,
    /// Busy flags (executing a batch or loading a model), one per worker —
    /// feeds the per-tier utilization in [`SessionSnapshot`].
    busy: Vec<AtomicBool>,
    /// Per-worker health speed factor (f64 bits; 1.0 = nameplate). Workers
    /// read their own factor at every batch and sleep-scale execution by
    /// its reciprocal, so a degraded worker serves proportionally slower.
    speed_bits: Vec<AtomicU64>,
    /// Controller threshold decisions over time — the series the final
    /// report's `threshold_series` is assembled from (previously it shipped
    /// empty on cluster runs).
    threshold_track: Mutex<WindowedSeries>,
    /// Every perturbation fired against this fleet (scheduled, injected,
    /// hazard-drawn), for the report's incident log.
    incident_log: Mutex<IncidentLog>,
    /// Active prompt-difficulty offset (f64 bits), set by the scenario
    /// thread and read by workers at generation time.
    difficulty_bits: AtomicU64,
    /// Discriminator confidences observed by workers since the last control
    /// tick — drained by the controller thread into the shared
    /// [`ControlLoop`]'s profile estimator.
    confidences: Mutex<Vec<f64>>,
    /// Rank balancer candidates by raw channel depth instead of
    /// health-weighted depth (the health-blind routing ablation, from
    /// [`AblationKnobs::health_blind_routing`]).
    ///
    /// [`AblationKnobs::health_blind_routing`]: diffserve_core::AblationKnobs
    health_blind_routing: bool,
    /// Stage-level resume switch copied from
    /// [`SystemConfig::resume_from_latents`]: when set, escalated jobs carry
    /// the light tier's denoise progress and heavy workers serve only the
    /// residual steps.
    resume_enabled: bool,
    /// [`SystemConfig::resume_step_credit`], consulted only when
    /// `resume_enabled`.
    resume_step_credit: f64,
    /// [`SystemConfig::resume_quality_penalty`], applied only to resumed
    /// heavy passes.
    resume_quality_penalty: f64,
    /// Add-on subsystem configuration, copied from
    /// [`SystemConfig::addons`]; `None` disables the module caches, swap
    /// charging, and affinity routing entirely.
    addons: Option<AddonsConfig>,
    /// Per-worker bounded LRU module caches (empty with add-ons off).
    module_caches: Vec<Mutex<ModuleCache>>,
    /// Per-tier add-on cache accounting (hits, misses, swap seconds).
    addon_stats: Mutex<AddonStats>,
    /// Route add-on-carrying jobs by queue depth alone, ignoring cache
    /// residency (the affinity-blindness ablation, from
    /// [`AblationKnobs::affinity_blind_routing`]).
    ///
    /// [`AblationKnobs::affinity_blind_routing`]: diffserve_core::AblationKnobs
    affinity_blind_routing: bool,
    /// Single-query nameplate service seconds per ladder tier
    /// (discriminator included when cascading) — the affinity miss
    /// penalty's normalizer.
    tier_unit_secs: Vec<f64>,
    /// Number of ladder tiers this fleet serves (`2` on a legacy cascade).
    num_tiers: usize,
    /// Escalations observed at each boundary (`tier k → k + 1`) over the
    /// whole run — the per-tier series the snapshot reports and the
    /// sim-vs-cluster parity tests compare.
    tier_escalations: Vec<AtomicU64>,
    /// Confidences observed at boundaries deeper than the first since the
    /// last control tick — `deep_confidences[i]` is boundary `i + 1`'s
    /// stream (boundary 0 reports through [`Shared::confidences`]). Empty
    /// on two-tier runs.
    deep_confidences: Vec<Mutex<Vec<f64>>>,
    /// Queries admitted directly at each tier since the last control tick
    /// (index ≥ 1 is the predictive router's bypass flow); feeds the
    /// controller's bypass-aware demand split. Empty with the router off.
    tier_direct_since_tick: Vec<AtomicU64>,
    /// Online pre-execution router sending predicted-hard queries straight
    /// to a deeper tier; `None` on two-tier runs or with predictive
    /// routing disabled. Trained by workers on every boundary verdict.
    router: Option<Mutex<OnlinePredictiveRouter>>,
}

impl Shared {
    fn sim_now(&self) -> f64 {
        self.start.elapsed().as_secs_f64() / self.scale
    }

    fn sleep_sim(&self, sim_secs: f64) {
        if sim_secs > 0.0 {
            thread::sleep(Duration::from_secs_f64(sim_secs * self.scale));
        }
    }

    fn is_failed(&self, i: usize) -> bool {
        self.failed[i].load(Ordering::Relaxed)
    }

    fn failed_count(&self) -> usize {
        self.failed
            .iter()
            .filter(|f| f.load(Ordering::SeqCst))
            .count()
    }

    fn difficulty_delta(&self) -> f64 {
        f64::from_bits(self.difficulty_bits.load(Ordering::Relaxed))
    }

    /// The worker's current health speed factor (1.0 = nameplate).
    fn speed_factor(&self, i: usize) -> f64 {
        f64::from_bits(self.speed_bits[i].load(Ordering::Relaxed))
    }

    /// Service-time multiplier the worker currently pays.
    fn slowdown(&self, i: usize) -> f64 {
        1.0 / self.speed_factor(i)
    }

    fn is_degraded(&self, i: usize) -> bool {
        self.speed_factor(i) < 1.0
    }

    fn degraded_count(&self) -> usize {
        (0..self.speed_bits.len())
            .filter(|&i| !self.is_failed(i) && self.is_degraded(i))
            .count()
    }

    /// Sum of alive workers' speed factors — the fleet's effective
    /// capacity in worker-equivalents, fed to the control plane.
    fn effective_capacity(&self) -> f64 {
        (0..self.speed_bits.len())
            .filter(|&i| !self.is_failed(i))
            .map(|i| self.speed_factor(i))
            .sum()
    }

    /// Attributes one SLO violation (a drop or a late completion) to the
    /// tier that was serving the query. Mirroring the simulator's
    /// two-bucket AIMD bookkeeping, every tier past the entry tier counts
    /// against the heavy side.
    fn record_violation(&self, tier: usize) {
        if tier == 0 {
            &self.violations_light_since_tick
        } else {
            &self.violations_heavy_since_tick
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Applies one lowered scenario event against live state and records it
    /// in the incident log — the single funnel the scenario replay thread,
    /// mid-run injection, and the hazard thread all go through. Fails the
    /// highest-indexed alive workers, recovers the lowest-indexed failed
    /// workers, degrades the lowest-indexed healthy workers, restores the
    /// lowest-indexed degraded workers (all mirroring the simulator), or
    /// swaps the difficulty offset.
    ///
    /// Those three threads can race each other, so the whole
    /// clamp-apply-log sequence is serialized under the log lock, and every
    /// capacity event is clamped to what the live fleet can actually absorb
    /// (failures never shrink the pool below two alive workers; recoveries,
    /// degradations, and restorations never exceed their eligible sets).
    /// Only the *applied* event is logged — the incident log must stay a
    /// faithful, replayable account, never a wish list.
    fn apply_event(&self, action: ScenarioEvent) {
        let mut log = self.incident_log.lock();
        let n = self.failed.len();
        let applied = match action {
            ScenarioEvent::Capacity(CapacityEvent::Fail(count)) => {
                let alive = (0..n).filter(|&i| !self.is_failed(i)).count();
                let allowed = count.min(alive.saturating_sub(2));
                let mut remaining = allowed;
                for i in (0..n).rev() {
                    if remaining == 0 {
                        break;
                    }
                    if !self.is_failed(i) {
                        self.failed[i].store(true, Ordering::SeqCst);
                        // A dead worker's degradation dies with it; it
                        // rejoins at nameplate speed.
                        self.speed_bits[i].store(1.0f64.to_bits(), Ordering::SeqCst);
                        remaining -= 1;
                    }
                }
                (allowed > 0).then_some(ScenarioEvent::Capacity(CapacityEvent::Fail(allowed)))
            }
            ScenarioEvent::Capacity(CapacityEvent::Recover(count)) => {
                let mut done = 0;
                for flag in &self.failed {
                    if done == count {
                        break;
                    }
                    if flag.load(Ordering::SeqCst) {
                        flag.store(false, Ordering::SeqCst);
                        done += 1;
                    }
                }
                (done > 0).then_some(ScenarioEvent::Capacity(CapacityEvent::Recover(done)))
            }
            ScenarioEvent::Capacity(CapacityEvent::Degrade(count, slowdown)) => {
                let factor = (1.0 / slowdown.max(1.0)).to_bits();
                let mut done = 0;
                for i in 0..n {
                    if done == count {
                        break;
                    }
                    if !self.is_failed(i) && !self.is_degraded(i) {
                        self.speed_bits[i].store(factor, Ordering::SeqCst);
                        done += 1;
                    }
                }
                (done > 0).then_some(ScenarioEvent::Capacity(CapacityEvent::Degrade(
                    done, slowdown,
                )))
            }
            ScenarioEvent::Capacity(CapacityEvent::Restore(count)) => {
                let mut done = 0;
                for i in 0..n {
                    if done == count {
                        break;
                    }
                    if !self.is_failed(i) && self.is_degraded(i) {
                        self.speed_bits[i].store(1.0f64.to_bits(), Ordering::SeqCst);
                        done += 1;
                    }
                }
                (done > 0).then_some(ScenarioEvent::Capacity(CapacityEvent::Restore(done)))
            }
            ScenarioEvent::Difficulty(delta) => {
                self.difficulty_bits
                    .store(delta.to_bits(), Ordering::SeqCst);
                Some(action)
            }
        };
        if let Some(event) = applied {
            log.push(Incident {
                at: SimTime::from_secs_f64(self.sim_now().max(0.0)),
                event,
            });
        }
    }

    /// Denoise steps this job would skip at `tier` by resuming — zero at
    /// the entry tier, with resume disabled, or with no carried progress.
    /// Mirrors the simulator's `reused_steps_for`.
    fn job_reused_steps(&self, runtime: &CascadeRuntime, tier: usize, job: &Job) -> u32 {
        if tier == 0 || !self.resume_enabled {
            return 0;
        }
        match job.resume {
            Some(st) => reused_steps(
                tier_model(runtime, tier).steps(),
                st,
                self.resume_step_credit,
            ),
            None => 0,
        }
    }

    /// Whether any alive worker is assigned a tier deeper than `tier` —
    /// when churn wipes the deeper pools out, escalations would bounce
    /// between same-tier workers forever (generation is deterministic), so
    /// callers serve this tier's output instead.
    fn has_alive_deeper(&self, tier: usize) -> bool {
        let plan = self.plan.read();
        plan.tiers
            .iter()
            .enumerate()
            .any(|(i, &t)| t > tier && !self.is_failed(i))
    }

    /// The balancer's ETA estimate for a query arriving at worker `i`:
    /// channel depth, plus the batch in service (the busy flag — depths are
    /// decremented when a worker pulls a job into a batch, so without it a
    /// mid-execution straggler scores zero), plus the arriving query
    /// itself, weighted by the worker's health slowdown. Counting the
    /// arrival matters: an idle straggler would otherwise tie an idle
    /// healthy worker at zero. On a healthy fleet the weighting is 1.0 and
    /// the `+1` shifts every score equally, so the ranking matches raw
    /// depth. The health-blind routing ablation skips only the slowdown
    /// weighting, so regression tests isolate exactly the health term.
    fn effective_depth(&self, i: usize) -> f64 {
        let depth = (self.depths[i].load(Ordering::Relaxed)
            + usize::from(self.busy[i].load(Ordering::Relaxed))
            + 1) as f64;
        if self.health_blind_routing {
            depth
        } else {
            depth * self.slowdown(i)
        }
    }

    /// Health-weighted JSQ among alive workers currently assigned to
    /// `tier`: candidates are ranked by [`Shared::effective_depth`], so a
    /// 2×-degraded worker's queue slot costs twice a healthy one's.
    /// Health-blind depth comparison kept feeding stragglers at nameplate
    /// rate — the brownout regime where SLO violations pile up. Strict `<`
    /// keeps the historical first-minimum (lowest-index) tie-break, so a
    /// fully healthy fleet routes identically to the old balancer.
    fn pick_worker(&self, tier: usize) -> usize {
        let plan = self.plan.read();
        let mut best: Option<(f64, usize)> = None;
        for (i, &t) in plan.tiers.iter().enumerate() {
            if t != tier || self.is_failed(i) {
                continue;
            }
            let d = self.effective_depth(i);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, i));
            }
        }
        match best {
            Some((_, i)) => i,
            // No alive worker currently on that tier (mid-reconfiguration
            // or tier wiped out by churn): fall back to the least-loaded
            // alive worker. Scenario validation guarantees one exists.
            None => {
                let mut idx = usize::MAX;
                let mut min = f64::INFINITY;
                for i in 0..self.depths.len() {
                    if self.is_failed(i) {
                        continue;
                    }
                    let v = self.effective_depth(i);
                    if v < min {
                        min = v;
                        idx = i;
                    }
                }
                assert_ne!(idx, usize::MAX, "at least one worker must be alive");
                idx
            }
        }
    }

    /// Affinity-aware variant of [`Shared::pick_worker`] for jobs that
    /// carry an add-on requirement: each candidate's effective depth is
    /// bumped by the module load latency (normalized to single-query
    /// service slots on the target tier) when the worker's cache lacks the
    /// module. Falls back to plain JSQ when add-ons are off, the job
    /// carries no add-on, or the affinity-blind ablation is set — so the
    /// disabled path routes bit-identically to [`Shared::pick_worker`].
    fn pick_worker_for(&self, tier: usize, addon: Option<usize>) -> usize {
        let (Some(addons), Some(id)) = (&self.addons, addon) else {
            return self.pick_worker(tier);
        };
        if self.affinity_blind_routing {
            return self.pick_worker(tier);
        }
        let unit = self.tier_unit_secs[tier.min(self.tier_unit_secs.len() - 1)];
        let penalty = addons.catalog.get(id).load_secs / unit;
        let score = |i: usize| {
            let miss = !self.module_caches[i].lock().contains(id);
            self.effective_depth(i) + if miss { penalty } else { 0.0 }
        };
        let plan = self.plan.read();
        let mut best: Option<(f64, usize)> = None;
        for (i, &t) in plan.tiers.iter().enumerate() {
            if t != tier || self.is_failed(i) {
                continue;
            }
            let d = score(i);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, i));
            }
        }
        if let Some((_, i)) = best {
            return i;
        }
        let mut idx = usize::MAX;
        let mut min = f64::INFINITY;
        for i in 0..self.depths.len() {
            if self.is_failed(i) {
                continue;
            }
            let v = score(i);
            if v < min {
                min = v;
                idx = i;
            }
        }
        assert_ne!(idx, usize::MAX, "at least one worker must be alive");
        idx
    }

    /// Total module-load seconds a prospective batch would pay on worker
    /// `wid` right now: one load per distinct required module absent from
    /// the worker's cache. Read-only — the drop-front latency estimate uses
    /// it; [`Shared::charge_batch_swaps`] does the matching mutation.
    fn batch_swap_secs(&self, wid: usize, jobs: &[Job]) -> f64 {
        let Some(addons) = &self.addons else {
            return 0.0;
        };
        let cache = self.module_caches[wid].lock();
        let mut seen: Vec<usize> = Vec::new();
        let mut secs = 0.0;
        for job in jobs {
            if let Some(id) = job.addon {
                if !cache.contains(id) && !seen.contains(&id) {
                    seen.push(id);
                    secs += addons.catalog.get(id).load_secs;
                }
            }
        }
        secs
    }

    /// Charges the batch's module swaps against worker `wid`'s cache:
    /// records a hit/miss per add-on-carrying member (judged against
    /// residency at batch start, with each distinct missing module's load
    /// latency attributed to its first requester), then admits every
    /// required module in member order so LRU recency reflects the batch.
    /// Returns the total swap seconds added to the batch's service time —
    /// exactly [`Shared::batch_swap_secs`] for the same members.
    fn charge_batch_swaps(&self, wid: usize, tier: usize, jobs: &[Job]) -> f64 {
        let Some(addons) = &self.addons else {
            return 0.0;
        };
        let mut cache = self.module_caches[wid].lock();
        let mut stats = self.addon_stats.lock();
        let mut seen: Vec<usize> = Vec::new();
        let mut secs = 0.0;
        // The add-on ledger keeps its legacy two-bucket breakdown: every
        // tier past the entry tier charges the heavy side.
        let stats_tier = if tier == 0 {
            ModelTier::Light
        } else {
            ModelTier::Heavy
        };
        for job in jobs {
            let Some(id) = job.addon else { continue };
            let hit = cache.contains(id);
            let swap = if !hit && !seen.contains(&id) {
                seen.push(id);
                addons.catalog.get(id).load_secs
            } else {
                0.0
            };
            stats.record(stats_tier, hit, swap);
            secs += swap;
        }
        for job in jobs {
            if let Some(id) = job.addon {
                cache.admit(id, &addons.catalog);
            }
        }
        secs
    }
}

enum Outcome {
    Completed(CompletedResponse),
    Dropped { qid: u64, arrival: f64, at: f64 },
}

/// The thread-based testbed behind the unified session API: real threads,
/// real (crossbeam) channels, wall-clock time scaled by `time_scale`.
///
/// Workers, controller, and scenario threads are launched at construction
/// and serve continuously; [`ServingBackend::submit`] routes one query into
/// the fleet, [`ServingBackend::tick`] sleeps scaled wall-clock time, and
/// [`ServingBackend::finish`] shuts the fleet down and assembles the
/// [`RunReport`]. Build one through [`ClusterSessionExt::build_cluster`].
pub struct ClusterBackend {
    shared: Arc<Shared>,
    job_txs: Arc<Vec<Sender<Job>>>,
    done_rx: Receiver<Outcome>,
    worker_handles: Vec<thread::JoinHandle<()>>,
    controller: Option<thread::JoinHandle<()>>,
    scenario_thread: Option<thread::JoinHandle<()>>,
    hazard_thread: Option<thread::JoinHandle<()>>,
    /// The shared control plane, driven by the controller thread and read
    /// for snapshots and the final report.
    control: Arc<Mutex<ControlLoop>>,
    settings: RunSettings,
    sys: SystemConfig,
    reference: GaussianStats,
    slo: SloTracker,
    responses: Vec<CompletedResponse>,
    /// Incremental windowed FID over the most recent completions, read at
    /// every snapshot tap.
    rolling_fid: RollingFid,
    completion_cursor: usize,
    drop_log: Vec<(QueryId, SimTime, SimTime)>,
    route_rng: rand::rngs::StdRng,
    demand_track: WindowedSeries,
    submitted: u64,
    /// Single-query nameplate execution latency of the entry and terminal
    /// tiers (discriminator excluded), cached at launch for the snapshot's
    /// stage breakdowns.
    light_exec1: f64,
    heavy_exec1: f64,
    /// The serving artifacts, kept for submit-time predictive routing
    /// (the router scores the same prompt the tiers will serve).
    runtime: CascadeRuntime,
}

impl std::fmt::Debug for ClusterBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBackend")
            .field("workers", &self.worker_handles.len())
            .field("submitted", &self.submitted)
            .field("policy", &self.settings.policy)
            .finish_non_exhaustive()
    }
}

impl ClusterBackend {
    /// Launches the testbed fleet (workers, controller, scenario thread)
    /// from validated session inputs.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive or non-finite `time_scale`.
    pub fn launch(spec: &SessionSpec<'_>, time_scale: f64) -> Result<Self, BuildError> {
        if !(time_scale > 0.0 && time_scale.is_finite()) {
            return Err(BuildError::Config(ConfigError::new(
                "time scale must be finite and positive",
            )));
        }
        let sys = spec.config.clone();
        let settings = spec.settings.clone();
        let runtime = spec.runtime;
        let n = sys.num_workers;
        let effective_trace = spec.scenario.as_ref().map(|s| s.effective_trace());

        // Bootstrap through the shared control plane. Static provisioning
        // anticipates the larger of the caller's peak hint and the known
        // trace maximum, with the over-provisioning headroom applied.
        let mut control = spec.control_loop();
        let anticipated = settings
            .peak_demand_hint
            .max(effective_trace.as_ref().map(Trace::max_qps).unwrap_or(0.0));
        let peak_demand = match settings.policy {
            Policy::DiffServeStatic => anticipated * sys.over_provision,
            _ => settings.peak_demand_hint,
        };
        let nt = runtime.num_tiers();
        let mut plan = ServingPlan::bootstrap_tiers(n, nt);
        ClusterActuator {
            plan: &mut plan,
            excluded: &[],
        }
        .actuate(&control.bootstrap(peak_demand));
        let control = Arc::new(Mutex::new(control));

        // Online pre-execution router, mirroring the simulator's gating:
        // only deep ladders on a cascade policy with predictive routing on.
        let ladder_cfg = sys.ladder.clone().unwrap_or_default();
        let router = (nt > 2
            && ladder_cfg.predictive_routing
            && matches!(settings.policy, Policy::DiffServe | Policy::DiffServeStatic))
        .then(|| {
            Mutex::new(OnlinePredictiveRouter::new(
                nt - 1,
                OnlineRouterConfig {
                    observation_noise: ladder_cfg.predictive_observation_noise,
                    learning_rate: ladder_cfg.predictive_learning_rate,
                    min_observations: ladder_cfg.predictive_min_observations,
                    margin: ladder_cfg.predictive_margin,
                },
            ))
        });

        let shared = Arc::new(Shared {
            plan: RwLock::new(plan),
            depths: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            arrivals_since_tick: AtomicU64::new(0),
            heavy_since_tick: AtomicU64::new(0),
            violations_light_since_tick: AtomicU64::new(0),
            violations_heavy_since_tick: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            scale: time_scale,
            failed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            busy: (0..n).map(|_| AtomicBool::new(false)).collect(),
            speed_bits: (0..n).map(|_| AtomicU64::new(1.0f64.to_bits())).collect(),
            threshold_track: Mutex::new(WindowedSeries::new(sys.metrics_window)),
            incident_log: Mutex::new(Vec::new()),
            difficulty_bits: AtomicU64::new(0.0f64.to_bits()),
            confidences: Mutex::new(Vec::new()),
            health_blind_routing: settings.knobs.health_blind_routing,
            resume_enabled: sys.resume_from_latents,
            resume_step_credit: sys.resume_step_credit,
            resume_quality_penalty: sys.resume_quality_penalty,
            addons: sys.addons.clone(),
            module_caches: match &sys.addons {
                Some(a) => (0..n)
                    .map(|_| Mutex::new(ModuleCache::new(a.cache_mem_mb)))
                    .collect(),
                None => Vec::new(),
            },
            addon_stats: Mutex::new(AddonStats::default()),
            affinity_blind_routing: settings.knobs.affinity_blind_routing,
            tier_unit_secs: (0..nt)
                .map(|t| stage_latency(runtime, t, 1, settings.policy.uses_cascade()))
                .collect(),
            num_tiers: nt,
            tier_escalations: (0..nt - 1).map(|_| AtomicU64::new(0)).collect(),
            deep_confidences: (0..nt.saturating_sub(2))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            tier_direct_since_tick: if router.is_some() {
                (0..nt).map(|_| AtomicU64::new(0)).collect()
            } else {
                Vec::new()
            },
            router,
        });

        let (job_txs, job_rxs): (Vec<Sender<Job>>, Vec<Receiver<Job>>) =
            (0..n).map(|_| unbounded()).unzip();
        let job_txs = Arc::new(job_txs);
        let (done_tx, done_rx) = unbounded::<Outcome>();

        // --- Worker threads -----------------------------------------------
        let mut worker_handles = Vec::new();
        for (wid, rx) in job_rxs.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let txs = Arc::clone(&job_txs);
            let done = done_tx.clone();
            let rt = runtime.clone();
            let uses_cascade = settings.policy.uses_cascade();
            let drop_misses = sys.drop_predicted_misses;
            let switch_delay = sys.model_switch_delay.as_secs_f64();
            worker_handles.push(thread::spawn(move || {
                worker_loop(
                    wid,
                    &shared,
                    &rx,
                    &txs,
                    &done,
                    &rt,
                    uses_cascade,
                    drop_misses,
                    switch_delay,
                );
            }));
        }
        drop(done_tx);

        // --- Controller thread --------------------------------------------
        let controller = {
            let shared = Arc::clone(&shared);
            let control = Arc::clone(&control);
            let sys = sys.clone();
            thread::spawn(move || controller_loop(&shared, &control, &sys))
        };

        // --- Scenario thread (worker churn, difficulty shifts) -------------
        let scenario_thread = {
            let shared = Arc::clone(&shared);
            let actions = spec
                .scenario
                .as_ref()
                .map(|s| s.timeline())
                .unwrap_or_default();
            thread::spawn(move || scenario_loop(&shared, &actions))
        };

        // --- Hazard thread (load-correlated fault engine) -------------------
        let hazard_thread = spec.scenario.as_ref().and_then(|s| s.hazard()).map(|h| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || hazard_loop(&shared, h))
        });

        let metrics_window = sys.metrics_window;
        let slo = SloTracker::new(sys.slo);
        Ok(ClusterBackend {
            shared,
            job_txs,
            done_rx,
            worker_handles,
            controller: Some(controller),
            scenario_thread: Some(scenario_thread),
            hazard_thread,
            route_rng: seeded_rng(derive_seed(sys.seed, 0x20C7)),
            demand_track: WindowedSeries::new(metrics_window),
            reference: runtime.reference.clone(),
            rolling_fid: session_rolling_fid(&runtime.reference),
            control,
            settings,
            sys,
            slo,
            responses: Vec::new(),
            completion_cursor: 0,
            drop_log: Vec::new(),
            submitted: 0,
            light_exec1: tier_model(runtime, 0)
                .latency()
                .exec_latency(1)
                .as_secs_f64(),
            heavy_exec1: tier_model(runtime, nt - 1)
                .latency()
                .exec_latency(1)
                .as_secs_f64(),
            runtime: runtime.clone(),
        })
    }

    /// Drains completed/dropped outcomes from the worker fleet into the
    /// local accounting.
    fn ingest(&mut self) {
        while let Ok(outcome) = self.done_rx.try_recv() {
            match outcome {
                Outcome::Completed(r) => {
                    self.slo.record_completion(r.arrival, r.completion);
                    self.rolling_fid.push(&r.features);
                    self.responses.push(r);
                }
                Outcome::Dropped { qid, arrival, at } => {
                    let arrival = SimTime::from_secs_f64(arrival);
                    let at = SimTime::from_secs_f64(at);
                    self.slo.record_drop(arrival, at);
                    self.drop_log.push((QueryId(qid), arrival, at));
                }
            }
        }
    }

    fn shutdown_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for h in self.worker_handles.drain(..) {
            h.join().expect("worker thread panicked");
        }
        if let Some(h) = self.controller.take() {
            h.join().expect("controller thread panicked");
        }
        if let Some(h) = self.scenario_thread.take() {
            h.join().expect("scenario thread panicked");
        }
        if let Some(h) = self.hazard_thread.take() {
            h.join().expect("hazard thread panicked");
        }
    }
}

impl Drop for ClusterBackend {
    fn drop(&mut self) {
        // A session abandoned without finish() must not leak live threads.
        self.shutdown_and_join();
    }
}

impl ServingBackend for ClusterBackend {
    fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.shared.sim_now().max(0.0))
    }

    fn submit(&mut self, spec: QuerySpec) -> QueryTicket {
        let now0 = self.shared.sim_now();
        let at = spec.at.map(|t| t.as_secs_f64()).unwrap_or(now0);
        if at > now0 {
            // Scheduled arrivals pace the caller: block until their instant.
            self.shared.sleep_sim(at - now0);
        }
        let now = self.shared.sim_now();
        self.demand_track
            .push(SimTime::from_secs_f64(at.max(0.0)), 1.0);
        self.shared
            .arrivals_since_tick
            .fetch_add(1, Ordering::Relaxed);
        let qid = self.submitted;
        let tier = match self.settings.policy {
            Policy::ClipperLight => 0,
            Policy::ClipperHeavy => self.shared.num_tiers - 1,
            Policy::Proteus => {
                // Proteus reuses the first threshold slot for its fraction.
                let frac = self.shared.plan.read().thresholds[0];
                if self.route_rng.gen_range(0.0..1.0) < frac {
                    self.shared.heavy_since_tick.fetch_add(1, Ordering::Relaxed);
                    self.shared.num_tiers - 1
                } else {
                    0
                }
            }
            _ => match &self.shared.router {
                // Predictive straight-to-tier routing: queries predicted to
                // escalate skip the cheap tiers. The prediction sees the
                // same (difficulty-shifted) prompt the tiers will serve.
                // Suspended while the controller is shedding (overload
                // fallback): bypassed traffic would be immune to the
                // floored thresholds.
                Some(r) if !self.shared.plan.read().bypass_suspended => {
                    let prompt = spec
                        .prompt
                        .unwrap_or_else(|| *self.runtime.dataset.prompt_cyclic(qid))
                        .harder(self.shared.difficulty_delta());
                    let t = r.lock().entry_tier(&prompt);
                    if t > 0 {
                        // A skipped-ahead query is demand the deeper pools
                        // must absorb — count it like an escalation.
                        self.shared.heavy_since_tick.fetch_add(1, Ordering::Relaxed);
                    }
                    t
                }
                _ => 0,
            },
        };
        if let Some(c) = self.shared.tier_direct_since_tick.get(tier) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        let w = self.shared.pick_worker_for(tier, spec.addon);
        self.shared.depths[w].fetch_add(1, Ordering::Relaxed);
        self.submitted += 1;
        let deadline = spec
            .deadline
            .map(|d| d.as_secs_f64())
            .unwrap_or(now + self.sys.slo.as_secs_f64());
        self.job_txs[w]
            .send(Job {
                qid,
                arrival: now,
                deadline,
                entry: tier,
                prompt: spec.prompt,
                resume: spec.resume_from,
                addon: spec.addon,
            })
            .expect("worker channels outlive the session");
        QueryTicket {
            id: QueryId(qid),
            arrival: SimTime::from_secs_f64(now),
            deadline: SimTime::from_secs_f64(deadline),
        }
    }

    fn tick(&mut self, until: SimTime) {
        let target = until.as_secs_f64();
        let now = self.shared.sim_now();
        if target > now {
            self.shared.sleep_sim(target - now);
        }
        self.ingest();
    }

    fn drain_completions(&mut self) -> Vec<QueryOutcome> {
        self.ingest();
        drain_outcomes(
            &self.responses,
            &mut self.completion_cursor,
            &mut self.drop_log,
        )
    }

    fn apply_perturbation(&mut self, event: ScenarioEvent) -> Result<(), ScenarioError> {
        let at = self.now();
        let failed = self.shared.failed_count();
        let total = self.shared.failed.len();
        // Shared state-independent checks first (zero counts, bad
        // slowdowns/deltas) — the rule lives in diffserve-trace so the two
        // backends cannot drift.
        event.validate()?;
        match event {
            ScenarioEvent::Capacity(CapacityEvent::Fail(n)) => {
                let alive = (total - failed).saturating_sub(n);
                if alive < 2 {
                    return Err(ScenarioError::PoolExhausted { at, alive });
                }
            }
            ScenarioEvent::Capacity(CapacityEvent::Recover(n)) => {
                if n > failed {
                    return Err(ScenarioError::RecoverWithoutFailure { at });
                }
            }
            ScenarioEvent::Capacity(CapacityEvent::Restore(n)) => {
                if n > self.shared.degraded_count() {
                    return Err(ScenarioError::RestoreWithoutDegrade { at });
                }
            }
            ScenarioEvent::Capacity(CapacityEvent::Degrade(..)) | ScenarioEvent::Difficulty(_) => {}
        }
        self.shared.apply_event(event);
        Ok(())
    }

    fn snapshot(&self) -> SessionSnapshot {
        let plan = self.shared.plan.read();
        let nt = self.shared.num_tiers;
        let mut failed_workers = 0;
        let mut degraded_workers = 0;
        let mut tier_workers = vec![0usize; nt];
        let mut tier_queues = vec![0usize; nt];
        let mut tier_busy = vec![0usize; nt];
        for (i, &t) in plan.tiers.iter().enumerate() {
            if self.shared.is_failed(i) {
                failed_workers += 1;
                continue;
            }
            if self.shared.is_degraded(i) {
                degraded_workers += 1;
            }
            let depth = self.shared.depths[i].load(Ordering::Relaxed);
            let busy = usize::from(self.shared.busy[i].load(Ordering::Relaxed));
            let t = t.min(nt - 1);
            tier_workers[t] += 1;
            tier_queues[t] += depth;
            tier_busy[t] += busy;
        }
        // Legacy two-bucket view: tier 0 is the light side, everything
        // deeper aggregates into the heavy side.
        let light_workers = tier_workers[0];
        let heavy_workers = tier_workers[1..].iter().sum();
        let light_queue = tier_queues[0];
        let heavy_queue = tier_queues[1..].iter().sum();
        let light_busy = tier_busy[0];
        let heavy_busy = tier_busy[1..].iter().sum();
        let heavy_done = self
            .responses
            .iter()
            .filter(|r| r.tier == ModelTier::Heavy)
            .count();
        SessionSnapshot {
            now: self.now(),
            threshold: plan.thresholds[0],
            light_workers,
            heavy_workers,
            failed_workers,
            degraded_workers,
            light_queue,
            heavy_queue,
            light_busy,
            heavy_busy,
            submitted: self.submitted,
            completed: self.slo.on_time() + self.slo.late(),
            dropped: self.slo.dropped(),
            heavy_fraction: if self.responses.is_empty() {
                0.0
            } else {
                heavy_done as f64 / self.responses.len() as f64
            },
            fid_estimate: self.rolling_fid.estimate(),
            deferral_gap: self.control.lock().deferral_gap(),
            light_stage_latency: StageLatencyBreakdown::of_latency(self.light_exec1),
            heavy_stage_latency: StageLatencyBreakdown::of_latency(self.heavy_exec1),
            resumed_completions: self.responses.iter().filter(|r| r.reused_steps > 0).count()
                as u64,
            addon_stats: *self.shared.addon_stats.lock(),
            tier_workers,
            tier_queues,
            tier_busy,
            tier_escalations: self
                .shared
                .tier_escalations
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            thresholds: plan.thresholds.clone(),
        }
    }

    fn finish(mut self: Box<Self>, horizon: SimTime) -> RunReport {
        self.shutdown_and_join();
        self.ingest();
        // Jobs stuck in closed channels at shutdown count as drops.
        let total = self.submitted;
        let accounted = self.slo.total();
        for _ in accounted..total {
            let end = self.shared.sim_now();
            self.slo
                .record_drop(SimTime::from_secs_f64(end), SimTime::from_secs_f64(end));
        }
        let h = horizon.as_secs_f64();
        RunReport::assemble(
            self.settings.policy,
            total,
            &self.slo,
            &self.responses,
            &self.reference,
            self.sys.metrics_window,
            self.demand_track
                .window_rates()
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64(), v))
                .collect(),
            // The controller thread pushed its threshold decision every
            // control tick; windows during the post-horizon drain are
            // artifacts and truncated, like the simulator's assembly.
            self.shared
                .threshold_track
                .lock()
                .window_means()
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64(), v))
                .filter(|&(t, _)| t < h)
                .collect(),
            self.control
                .lock()
                .take_deferral_error_series()
                .into_iter()
                .filter(|&(t, _)| t < h)
                .collect(),
            std::mem::take(&mut *self.shared.incident_log.lock()),
            *self.shared.addon_stats.lock(),
        )
    }
}

/// Builds a [`ServingSession`] backed by the thread-based testbed — the
/// cluster-side counterpart of
/// [`SessionBuilder::build`](diffserve_core::serve::SessionBuilder::build).
///
/// # Examples
///
/// ```no_run
/// use diffserve_cluster::ClusterSessionExt;
/// use diffserve_core::prelude::*;
/// use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
///
/// let runtime = CascadeRuntime::prepare(
///     cascade1(FeatureSpec::default()), 2000, 42, DiscriminatorConfig::default());
/// let session = ServingSession::builder()
///     .runtime(&runtime)
///     .policy(Policy::DiffServe)
///     .build_cluster(0.02)?;
/// # let _ = session;
/// # Ok::<(), diffserve_core::serve::BuildError>(())
/// ```
pub trait ClusterSessionExt<'a> {
    /// Validates the builder's configuration, launches the testbed fleet
    /// with the given wall-clock scale, and wraps it in a session.
    ///
    /// # Errors
    ///
    /// Everything [`SessionBuilder::build`] rejects, plus a non-positive or
    /// non-finite `time_scale`.
    fn build_cluster(self, time_scale: f64) -> Result<ServingSession<'a>, BuildError>;
}

impl<'a> ClusterSessionExt<'a> for SessionBuilder<'a> {
    fn build_cluster(self, time_scale: f64) -> Result<ServingSession<'a>, BuildError> {
        let spec = self.validate()?;
        let backend = ClusterBackend::launch(&spec, time_scale)?;
        Ok(ServingSession::from_backend(&spec, Box::new(backend)))
    }
}

/// Runs one policy on the thread-based cluster and reports the same
/// metrics as the simulator.
///
/// Supports every policy in Table 1. The run blocks the calling thread for
/// roughly `trace.duration × time_scale` wall-clock time plus a drain
/// period. Equivalent to [`run_cluster_scenario`] with a perturbation-free
/// scenario, and — like it — a thin wrapper over a testbed-backed
/// [`ServingSession`].
///
/// # Panics
///
/// Panics if the configuration is invalid or `time_scale` is not positive.
pub fn run_cluster(
    runtime: &CascadeRuntime,
    config: &ClusterConfig,
    settings: &RunSettings,
    trace: &Trace,
) -> RunReport {
    run_cluster_scenario(
        runtime,
        config,
        settings,
        &Scenario::new("trace", trace.clone()),
    )
}

/// Runs one policy on the thread-based cluster under a [`Scenario`] — the
/// parity path to `diffserve_core::run_scenario`, so one `Scenario` value
/// drives both the discrete-event simulator and this testbed.
///
/// Demand perturbations are baked into the replayed arrival stream;
/// worker churn and difficulty shifts are applied live by a scenario thread
/// (failed workers re-route their queues and idle until recovery, paying
/// the model load delay when they rejoin). One parity caveat: failure
/// granularity here is the batch boundary — a worker already executing a
/// batch delivers it before going down, while the simulator's fail-stop
/// kills in-flight work instantly and retries it elsewhere.
///
/// # Panics
///
/// Panics if the configuration is invalid, `time_scale` is not positive, or
/// the scenario fails [`Scenario::validate`] for this worker count.
pub fn run_cluster_scenario(
    runtime: &CascadeRuntime,
    config: &ClusterConfig,
    settings: &RunSettings,
    scenario: &Scenario,
) -> RunReport {
    let mut session = ServingSession::builder()
        .runtime(runtime)
        .config(config.system.clone())
        .settings(settings.clone())
        .scenario(scenario.clone())
        .build_cluster(config.time_scale)
        .expect("valid scenario and system config");
    let trace = scenario.effective_trace();
    session.replay_trace(&trace);
    // Drain period: a full 4 SLOs past the *later* of the trace end and the
    // actual clock — wall-clock overshoot during replay must never eat into
    // the drain, or in-flight work gets counted as shutdown drops.
    let drain_from = session.now().max(SimTime::ZERO + trace.duration());
    session.run_until(drain_from + config.system.slo * 4);
    session.finish()
}

/// The testbed's [`PlanActuator`]: lowers a control directive onto a
/// [`ServingPlan`], skipping fail-stopped workers so the tier reassignment
/// never lands on a dead slot. The caller swaps the updated plan in behind
/// the shared lock.
struct ClusterActuator<'a> {
    plan: &'a mut ServingPlan,
    excluded: &'a [bool],
}

impl PlanActuator for ClusterActuator<'_> {
    fn actuate(&mut self, directive: &ControlDirective) {
        let (alloc, threshold) = match directive {
            ControlDirective::Apply(alloc) => (alloc, alloc.threshold),
            // The heavy routing fraction rides in the plan's threshold slot.
            ControlDirective::ApplyProteus {
                allocation,
                heavy_fraction,
            } => (allocation, *heavy_fraction),
            ControlDirective::ApplyLadder(alloc) => {
                self.plan
                    .retarget_ladder_masked(&alloc.workers, self.excluded);
                self.plan.batches = alloc.batches.iter().map(|&b| b.max(1)).collect();
                self.plan.thresholds.clone_from(&alloc.thresholds);
                self.plan.bypass_suspended = !alloc.feasible;
                return;
            }
            ControlDirective::Hold => return,
        };
        self.plan
            .retarget_masked(alloc.light_workers, alloc.heavy_workers, self.excluded);
        let last = self.plan.batches.len() - 1;
        self.plan.batches[0] = alloc.light_batch;
        self.plan.batches[last] = alloc.heavy_batch;
        self.plan.thresholds[0] = threshold;
    }
}

/// Replays the scenario's timed actions against live shared state via
/// [`Shared::apply_event`]. Sleeps in short slices so shutdown (or a
/// perturbation scheduled past the trace end) never wedges the run at join
/// time.
fn scenario_loop(shared: &Shared, actions: &[(SimTime, ScenarioEvent)]) {
    for &(at, action) in actions {
        let at = at.as_secs_f64();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let now = shared.sim_now();
            if at <= now {
                break;
            }
            shared.sleep_sim((at - now).min(1.0));
        }
        shared.apply_event(action);
    }
}

/// The load-correlated fault engine's cluster half: evaluates the seeded
/// [`HazardProcess`] every check interval against the fleet's live busy
/// flags and applies (and logs) whatever it draws. The wall-clock testbed
/// cannot promise a bit-identical utilization trajectory across runs, so
/// hazard-drawn faults here are reproducible only through the incident log
/// — which is exactly what record/replay is for.
fn hazard_loop(shared: &Shared, spec: Hazard) {
    let mut process = HazardProcess::new(spec);
    let interval = spec.check_interval.as_secs_f64();
    // First check at half-phase, like the simulator — and like there, the
    // first evaluation covers only the half-interval that actually elapsed.
    let mut next = spec.first_check().as_secs_f64();
    let mut first = true;
    loop {
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let now = shared.sim_now();
            if next <= now {
                break;
            }
            shared.sleep_sim((next - now).min(1.0));
        }
        // A check that comes due exactly as the session tears down must not
        // stamp an incident the replay run can never re-fire.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let n = shared.failed.len();
        let alive = n - shared.failed_count();
        let busy = (0..n)
            .filter(|&i| !shared.is_failed(i) && shared.busy[i].load(Ordering::Relaxed))
            .count();
        let utilization = if alive == 0 {
            0.0
        } else {
            busy as f64 / alive as f64
        };
        let fleet = FleetHealth {
            alive,
            failed: n - alive,
            degraded: shared.degraded_count(),
        };
        let dt = if first {
            spec.first_dt()
        } else {
            spec.check_interval
        };
        first = false;
        for event in process.step(dt, utilization, fleet) {
            shared.apply_event(event);
        }
        next += interval;
    }
}

/// Drives the shared [`ControlLoop`] at the configured control cadence:
/// gathers what the fleet observed since the last tick (arrival counters,
/// live channel depths, the drained confidence stream), steps the pipeline,
/// and swaps the actuated plan in. Runs for every policy so the demand and
/// profile estimators stay live; static policies simply always `Hold`.
fn controller_loop(shared: &Shared, control: &Mutex<ControlLoop>, sys: &SystemConfig) {
    let interval = sys.control_interval.as_secs_f64();
    while !shared.shutdown.load(Ordering::SeqCst) {
        shared.sleep_sim(interval);
        let arrived = shared.arrivals_since_tick.swap(0, Ordering::Relaxed);
        let heavy = shared.heavy_since_tick.swap(0, Ordering::Relaxed);
        let violations_light = shared
            .violations_light_since_tick
            .swap(0, Ordering::Relaxed);
        let violations_heavy = shared
            .violations_heavy_since_tick
            .swap(0, Ordering::Relaxed);
        let confidences = std::mem::take(&mut *shared.confidences.lock());
        let deep_confidences: Vec<Vec<f64>> = shared
            .deep_confidences
            .iter()
            .map(|m| std::mem::take(&mut *m.lock()))
            .collect();

        // Little's-law queue estimates from live channel depths (alive
        // workers only — failed workers drain their queues elsewhere).
        let plan_snapshot = shared.plan.read().clone();
        let nt = shared.num_tiers;
        let excluded: Vec<bool> = (0..plan_snapshot.tiers.len())
            .map(|i| shared.is_failed(i))
            .collect();
        let mut tier_queues = vec![0usize; nt];
        for (i, &t) in plan_snapshot.tiers.iter().enumerate() {
            if excluded[i] {
                continue;
            }
            tier_queues[t.min(nt - 1)] += shared.depths[i].load(Ordering::Relaxed);
        }
        // Derive the pool size from the same snapshot as the mask so the
        // solver and retarget never disagree mid-churn.
        let alive = excluded.iter().filter(|&&e| !e).count();
        let now = SimTime::from_secs_f64(shared.sim_now().max(0.0));
        let obs = ControlObservation {
            now,
            arrivals: arrived,
            heavy_arrivals: heavy,
            violations_light,
            violations_heavy,
            light_queue: tier_queues[0],
            heavy_queue: tier_queues[1..].iter().sum(),
            alive_workers: alive,
            effective_capacity: shared.effective_capacity(),
            current_light_batch: plan_snapshot.batch_for(0),
            current_heavy_batch: plan_snapshot.batch_for(nt - 1),
            confidences,
            tier_queues,
            deep_confidences,
            tier_direct_arrivals: shared
                .tier_direct_since_tick
                .iter()
                .map(|c| c.swap(0, Ordering::Relaxed))
                .collect(),
        };
        let directive = control.lock().step(&obs);
        let active_threshold = if directive == ControlDirective::Hold {
            plan_snapshot.thresholds[0]
        } else {
            let mut plan = plan_snapshot;
            ClusterActuator {
                plan: &mut plan,
                excluded: &excluded,
            }
            .actuate(&directive);
            let threshold = plan.thresholds[0];
            *shared.plan.write() = plan;
            threshold
        };
        // Record the decision that is now in force — the series the
        // report's `threshold_series` is built from (mirroring the
        // simulator, which pushes its threshold on every tick).
        shared.threshold_track.lock().push(now, active_threshold);
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    wid: usize,
    shared: &Shared,
    rx: &Receiver<Job>,
    txs: &[Sender<Job>],
    done: &Sender<Outcome>,
    runtime: &CascadeRuntime,
    uses_cascade: bool,
    drop_misses: bool,
    switch_delay: f64,
) {
    let mut current_tier = shared.plan.read().tiers[wid];
    let mut was_failed = false;
    let poll = Duration::from_secs_f64((0.02 * shared.scale).max(0.0002));
    loop {
        // Scenario fail-stop: re-route anything queued here to surviving
        // workers and idle until recovery (or shutdown).
        if shared.failed[wid].load(Ordering::SeqCst) {
            was_failed = true;
            while let Ok(job) = rx.try_recv() {
                shared.depths[wid].fetch_sub(1, Ordering::Relaxed);
                let target = shared.pick_worker_for(current_tier, job.addon);
                shared.depths[target].fetch_add(1, Ordering::Relaxed);
                let _ = txs[target].send(job);
            }
            if shared.shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                return;
            }
            thread::sleep(poll);
            continue;
        }
        if was_failed {
            // Rejoining the pool: reload model weights before serving. The
            // restart also wiped device memory, so the add-on module cache
            // comes back cold (mirroring the simulator's fail handling).
            was_failed = false;
            if let Some(cache) = shared.module_caches.get(wid) {
                cache.lock().clear();
            }
            shared.busy[wid].store(true, Ordering::Relaxed);
            shared.sleep_sim(switch_delay);
            shared.busy[wid].store(false, Ordering::Relaxed);
            current_tier = shared.plan.read().tiers[wid];
        }

        // Follow the plan: switch models if reassigned.
        let desired = shared.plan.read().tiers[wid];
        if desired != current_tier {
            shared.busy[wid].store(true, Ordering::Relaxed);
            shared.sleep_sim(switch_delay);
            shared.busy[wid].store(false, Ordering::Relaxed);
            current_tier = desired;
        }
        let bmax = shared.plan.read().batch_for(current_tier).max(1);

        // Collect a batch: block briefly for the first job, then take
        // whatever else is queued (Clipper-style no-wait batching). The
        // poll must be fine relative to *simulated* time or idle polling
        // inflates queueing delays for sub-100ms models like SDXS.
        let first = match rx.recv_timeout(poll) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        shared.depths[wid].fetch_sub(1, Ordering::Relaxed);
        let mut batch = vec![first];
        while batch.len() < bmax {
            match rx.try_recv() {
                Ok(job) => {
                    shared.depths[wid].fetch_sub(1, Ordering::Relaxed);
                    batch.push(job);
                }
                Err(_) => break,
            }
        }

        // Drop-front policy. A degraded worker predicts with its *actual*
        // (slowed) execution time, not nameplate.
        let slowdown = shared.slowdown(wid);
        if drop_misses {
            let now = shared.sim_now();
            let exec = (stage_latency(runtime, current_tier, batch.len(), uses_cascade)
                - batch_resume_savings(shared, runtime, current_tier, &batch)
                + shared.batch_swap_secs(wid, &batch))
                * slowdown;
            batch.retain(|job| {
                if now + exec > job.deadline {
                    shared.record_violation(current_tier);
                    let _ = done.send(Outcome::Dropped {
                        qid: job.qid,
                        arrival: job.arrival,
                        at: now,
                    });
                    false
                } else {
                    true
                }
            });
            if batch.is_empty() {
                continue;
            }
        }

        // "Execute" the batch, sleep-scaled by the worker's health: a
        // degraded worker takes `slowdown`× its nameplate latency. Resumed
        // jobs' saved denoise steps come off *before* the health slowdown —
        // a degraded worker stretches only the residual steps it actually
        // runs, mirroring the simulator. Add-on module swaps (charged here,
        // once per dispatch) stretch with the slowdown like any other
        // device-side work.
        let exec = (stage_latency(runtime, current_tier, batch.len(), uses_cascade)
            - batch_resume_savings(shared, runtime, current_tier, &batch)
            + shared.charge_batch_swaps(wid, current_tier, &batch))
            * slowdown;
        shared.busy[wid].store(true, Ordering::Relaxed);
        shared.sleep_sim(exec);
        shared.busy[wid].store(false, Ordering::Relaxed);
        let now = shared.sim_now();
        let thresholds = shared.plan.read().thresholds.clone();

        // Late completions are violations attributed to the tier that
        // finished the query (escalated queries count against the heavy
        // side, mirroring the simulator's bookkeeping); escalations are not
        // completions and record nothing at the shallower stages.
        let complete = |job: &Job, tier: usize| {
            if now > job.deadline {
                shared.record_violation(tier);
            }
        };
        let last = shared.num_tiers - 1;
        for mut job in batch {
            let prompt = job
                .prompt
                .unwrap_or_else(|| *runtime.dataset.prompt_cyclic(job.qid))
                .harder(shared.difficulty_delta());
            // Resume from carried latents when possible: a restart (no
            // reuse) is bitwise `generate`; a lossless resume produces the
            // identical image at lower service time.
            let reused = shared.job_reused_steps(runtime, current_tier, &job);
            let model = tier_model(runtime, current_tier);
            let image = if reused > 0 {
                model.generate_with_quality_shift(&prompt, -shared.resume_quality_penalty)
            } else {
                model.generate(&prompt)
            };
            if current_tier < last && uses_cascade {
                let conf = tier_discriminator(runtime, current_tier).confidence(&image.features);
                if current_tier == 0 {
                    shared.confidences.lock().push(conf);
                } else {
                    shared.deep_confidences[current_tier - 1].lock().push(conf);
                }
                // With the deeper pools wiped out by churn, an escalation
                // would bounce between same-tier workers forever — degrade
                // gracefully by serving this output instead.
                let escalate = conf < thresholds[current_tier.min(thresholds.len() - 1)]
                    && shared.has_alive_deeper(current_tier);
                if let Some(r) = &shared.router {
                    // Every verdict trains the pre-execution router, kept
                    // or escalated alike.
                    r.lock().observe(current_tier, &prompt, escalate);
                }
                if !escalate {
                    complete(&job, current_tier);
                    let gpu = single_query_gpu_time(
                        runtime,
                        job.entry,
                        current_tier,
                        reused,
                        uses_cascade,
                    );
                    let _ = done.send(Outcome::Completed(make_response(
                        job,
                        image,
                        current_tier,
                        Some(conf),
                        now,
                        gpu,
                        reused,
                    )));
                } else {
                    // Escalation: hand this tier's denoise progress to the
                    // next tier's worker when resume is on.
                    if shared.resume_enabled {
                        job.resume = Some(StageState::completed(model.steps()));
                    }
                    shared.tier_escalations[current_tier].fetch_add(1, Ordering::Relaxed);
                    shared.heavy_since_tick.fetch_add(1, Ordering::Relaxed);
                    let target = shared.pick_worker_for(current_tier + 1, job.addon);
                    shared.depths[target].fetch_add(1, Ordering::Relaxed);
                    let _ = txs[target].send(job);
                }
            } else {
                complete(&job, current_tier);
                let gpu =
                    single_query_gpu_time(runtime, job.entry, current_tier, reused, uses_cascade);
                let _ = done.send(Outcome::Completed(make_response(
                    job,
                    image,
                    current_tier,
                    None,
                    now,
                    gpu,
                    reused,
                )));
            }
        }
    }
}

/// The model serving ladder tier `tier` — the legacy light/heavy pair when
/// no ladder artifacts are attached.
fn tier_model(runtime: &CascadeRuntime, tier: usize) -> &DiffusionModel {
    match &runtime.ladder {
        Some(l) => &l.models[tier],
        None if tier == 0 => &runtime.spec.light,
        None => &runtime.spec.heavy,
    }
}

/// The discriminator scoring boundary `tier → tier + 1`, if one exists
/// (the terminal tier has none).
fn tier_discriminator(runtime: &CascadeRuntime, tier: usize) -> &Discriminator {
    match &runtime.ladder {
        Some(l) => &l.discriminators[tier],
        None => &runtime.discriminator,
    }
}

fn stage_latency(runtime: &CascadeRuntime, tier: usize, batch: usize, uses_cascade: bool) -> f64 {
    let base = tier_model(runtime, tier)
        .latency()
        .exec_latency(batch)
        .as_secs_f64();
    let last = runtime.num_tiers() - 1;
    if uses_cascade && tier < last {
        base + tier_discriminator(runtime, tier).latency().as_secs_f64() * batch as f64
    } else {
        base
    }
}

/// Nameplate seconds a batch saves by resuming its escalated members from
/// the previous tier's latents — `0.0` exactly unless resume is on and the
/// batch sits past the entry tier, so restart-mode service times are
/// bitwise unchanged. Mirrors the simulator's `batch_resume_savings`.
fn batch_resume_savings(
    shared: &Shared,
    runtime: &CascadeRuntime,
    tier: usize,
    jobs: &[Job],
) -> f64 {
    if tier == 0 || !shared.resume_enabled {
        return 0.0;
    }
    let profile = tier_model(runtime, tier).latency();
    let steps = tier_model(runtime, tier).steps();
    jobs.iter()
        .map(|job| resume_savings(profile, shared.job_reused_steps(runtime, tier, job), steps))
        .sum()
}

/// Single-query nameplate GPU-seconds for a completion on `tier` — the
/// cross-tier sunk cost the report's `gpu_time_per_query` averages: the
/// finishing tier's own pass (net of resumed steps) plus every shallower
/// stage the query actually ran from its entry tier on. Identical
/// accounting to the simulator's `single_query_gpu_time`.
fn single_query_gpu_time(
    runtime: &CascadeRuntime,
    entry: usize,
    tier: usize,
    reused: u32,
    uses_cascade: bool,
) -> f64 {
    let profile = tier_model(runtime, tier).latency();
    let own = stage_latency(runtime, tier, 1, uses_cascade)
        - resume_savings(profile, reused, tier_model(runtime, tier).steps());
    if uses_cascade && tier > entry {
        (entry..tier)
            .map(|j| stage_latency(runtime, j, 1, uses_cascade))
            .sum::<f64>()
            + own
    } else {
        own
    }
}

fn make_response(
    job: Job,
    image: diffserve_imagegen::GeneratedImage,
    tier: usize,
    confidence: Option<f64>,
    now: f64,
    gpu_time: f64,
    reused_steps: u32,
) -> CompletedResponse {
    CompletedResponse {
        id: QueryId(job.qid),
        arrival: SimTime::from_secs_f64(job.arrival),
        completion: SimTime::from_secs_f64(now),
        features: image.features,
        quality: image.quality,
        tier: if tier == 0 {
            ModelTier::Light
        } else {
            ModelTier::Heavy
        },
        tier_index: tier,
        confidence,
        gpu_time,
        reused_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
    use diffserve_simkit::time::SimDuration;
    use std::sync::OnceLock;

    fn test_runtime() -> &'static CascadeRuntime {
        static RT: OnceLock<CascadeRuntime> = OnceLock::new();
        RT.get_or_init(|| {
            CascadeRuntime::prepare(
                cascade1(FeatureSpec::default()),
                1200,
                77,
                DiscriminatorConfig {
                    train_prompts: 400,
                    epochs: 8,
                    ..Default::default()
                },
            )
        })
    }

    fn quick_config() -> ClusterConfig {
        ClusterConfig {
            system: SystemConfig {
                num_workers: 8,
                metrics_window: SimDuration::from_secs(10),
                ..Default::default()
            },
            // Debug builds execute the (real) discriminator inference ~50x
            // slower, which eats into scaled wall-clock budgets; slow the
            // clock down accordingly so timing fidelity is preserved.
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        }
    }

    fn short_trace(qps: f64) -> Trace {
        Trace::constant(qps, SimDuration::from_secs(40)).unwrap()
    }

    #[test]
    fn cluster_serves_and_accounts_for_all_queries() {
        let cfg = quick_config();
        let report = run_cluster(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::DiffServe, 8.0),
            &short_trace(5.0),
        );
        assert!(report.total_queries > 100);
        assert_eq!(report.completed + report.dropped, report.total_queries);
        assert!(report.fid.is_finite());
        // At modest load the cluster should mostly meet the SLO.
        assert!(
            report.violation_ratio < 0.35,
            "viol {}",
            report.violation_ratio
        );
    }

    #[test]
    fn clipper_light_on_cluster_has_no_violations() {
        let cfg = quick_config();
        let report = run_cluster(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::ClipperLight, 8.0),
            &short_trace(5.0),
        );
        assert!(
            report.violation_ratio < 0.05,
            "viol {}",
            report.violation_ratio
        );
        assert_eq!(report.heavy_fraction, 0.0);
    }

    #[test]
    fn cluster_matches_simulator_shape() {
        // The fig6 validation in miniature: simulator and testbed should
        // agree on coarse metrics for the same workload.
        let cfg = quick_config();
        let settings = RunSettings::new(Policy::DiffServe, 8.0);
        let trace = short_trace(5.0);
        let cluster = run_cluster(test_runtime(), &cfg, &settings, &trace);
        let sim = diffserve_core::run_trace(test_runtime(), &cfg.system, &settings, &trace);
        let fid_gap = (cluster.fid - sim.fid).abs() / sim.fid;
        assert!(
            fid_gap < 0.25,
            "fid gap {fid_gap}: {} vs {}",
            cluster.fid,
            sim.fid
        );
        let viol_gap = (cluster.violation_ratio - sim.violation_ratio).abs();
        assert!(viol_gap < 0.3, "violation gap {viol_gap}");
    }

    #[test]
    fn cluster_session_streams_and_snapshots() {
        let cfg = quick_config();
        let mut session = ServingSession::builder()
            .runtime(test_runtime())
            .config(cfg.system.clone())
            .policy(Policy::DiffServe)
            .build_cluster(cfg.time_scale)
            .expect("valid cluster session");
        let trace = Trace::constant(4.0, SimDuration::from_secs(20)).unwrap();
        let n = session.replay_trace(&trace);
        assert!(n > 20, "replayed {n} queries");
        session.run_until(SimTime::from_secs(40));
        let outcomes = session.poll();
        assert!(!outcomes.is_empty(), "outcomes should stream before finish");
        let snap = session.snapshot();
        assert!(snap.completed + snap.dropped > 0);
        assert!(snap.light_workers + snap.heavy_workers == 8);
        let report = session.finish();
        assert_eq!(report.total_queries, n);
        assert_eq!(report.completed + report.dropped, report.total_queries);
    }

    #[test]
    fn cluster_inject_fails_workers_live() {
        let cfg = quick_config();
        let mut session = ServingSession::builder()
            .runtime(test_runtime())
            .config(cfg.system.clone())
            .policy(Policy::DiffServe)
            .build_cluster(cfg.time_scale)
            .expect("valid cluster session");
        session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Fail(3)))
            .expect("3 of 8 may fail");
        let snap = session.snapshot();
        assert_eq!(snap.failed_workers, 3);
        let err = session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Fail(5)))
            .unwrap_err();
        assert!(matches!(err, ScenarioError::PoolExhausted { .. }));
        session
            .inject(ScenarioEvent::Capacity(CapacityEvent::Recover(3)))
            .expect("recover the failed 3");
        assert_eq!(session.snapshot().failed_workers, 0);
        // Abandoning the session (drop without finish) must not hang.
    }

    #[test]
    fn build_cluster_rejects_bad_time_scale() {
        let err = ServingSession::builder()
            .runtime(test_runtime())
            .config(quick_config().system)
            .build_cluster(0.0)
            .unwrap_err();
        assert!(matches!(err, BuildError::Config(_)), "{err}");
    }

    #[test]
    fn aimd_ablation_runs_on_the_cluster() {
        // Workers attribute drops and late completions to their tier, so
        // the AIMD decrease signal actually reaches the shared control
        // loop; overload must not run away at maximum batch sizes.
        let cfg = quick_config();
        let mut settings = RunSettings::new(diffserve_core::Policy::DiffServe, 10.0);
        settings.knobs = diffserve_core::AblationKnobs::aimd();
        let report = run_cluster(
            test_runtime(),
            &cfg,
            &settings,
            &Trace::constant(10.0, SimDuration::from_secs(40)).unwrap(),
        );
        assert_eq!(report.completed + report.dropped, report.total_queries);
        assert!(report.total_queries > 200);
        // AIMD reacts a step behind (the Fig. 8 point) but must still keep
        // the system serving rather than collapsing.
        assert!(
            report.violation_ratio < 0.6,
            "AIMD ran away: viol {}",
            report.violation_ratio
        );
    }
}
